"""The compiling weblang backend: AST → closure chains, once per program.

The plain interpreter (:mod:`repro.lang.interp`) re-dispatches on node
type at every step and builds a Python generator frame for every AST
node it walks (the ``yield from`` chain).  At audit time the same few
programs re-execute thousands of times, so that per-node tax is pure
overhead.  This module compiles a :class:`~repro.lang.ast.Program` once
into a tree of pre-bound Python closures:

* **pure subtrees** — expressions and statements that can never perform
  a shared-object operation, a non-deterministic built-in, or an
  external call — compile to plain ``fn(env, state)`` closures: no
  generator frames at all, which is where most of the win comes from.
  Function-level purity comes from the static analyzer
  (:func:`repro.lang.analysis.analysis_for`), whose call-graph effect
  fixpoint handles mutual recursion precisely;
* **impure subtrees** compile to generator closures that ``yield`` the
  same :class:`~repro.lang.interp.StateOpIntent` /
  :class:`~repro.lang.interp.NondetIntent` /
  :class:`~repro.lang.interp.ExternalIntent` objects as the plain
  interpreter, so every existing driver (the executor, ``execute_one``,
  the re-exec backends) drives compiled code unchanged;
* **constant subtrees** (literal-only arithmetic/concat/comparison) fold
  at compile time, preserving the exact instruction count the folded
  nodes would have contributed;
* names resolve at compile time: built-ins are pre-bound to their
  closures, user functions to their compiled bodies, and scopes that
  never execute a ``global`` declaration use a plain dict frame instead
  of the :class:`~repro.lang.interp._Env` indirection.

**Bit-identity contract.**  Compiled execution must be observationally
identical to :class:`~repro.lang.interp.Interpreter` — same produced
bodies, same control-flow digests (same update sequence, nid for nid),
same ``steps`` instruction counts, same intent sequences, and same
error behaviour (a constant fold that would raise
:class:`~repro.common.errors.WeblangError` is *not* folded, so the
error still fires at run time, after the same side effects).  The
differential fuzz tests and the ``interp``-vs-``compinterp`` backend
equivalence tests enforce this.

**Compile cache.**  :func:`compiled_for` memoizes per ``(program,
dialect)`` keyed by object identity with a weakref guard, so every
chunk/group re-execution in a run — and every chunk a pool worker
process runs after unpickling the application once — reuses the same
compiled code.  The cache is per-process by construction, which is
exactly the compile-on-first-use worker-side behaviour the parallel
drivers need: the compiled closures never travel through a pickle.
"""

from __future__ import annotations

import weakref
from collections.abc import Callable

from repro.common.digest import FlowDigest
from repro.common.errors import WeblangError
from repro.lang.ast import (
    ArrayLit,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Echo,
    ExprStmt,
    Foreach,
    FuncDecl,
    GlobalDecl,
    If,
    Index,
    IndexAssign,
    Lit,
    Node,
    Program,
    Return,
    Ternary,
    UnOp,
    Var,
    While,
)
from repro.lang.analysis import analysis_for
from repro.lang.builtins import (
    EXTERNAL_BUILTINS,
    NONDET_BUILTINS,
    PURE_BUILTINS,
    STATE_BUILTINS,
)
from repro.lang.interp import (
    _MAX_CALL_DEPTH,
    ExternalIntent,
    Interpreter,
    NondetIntent,
    RunOutput,
    StateOpIntent,
    _BreakSignal,
    _ContinueSignal,
    _Env,
    _ReturnSignal,
    freeze_value,
    thaw_value,
)
from repro.lang.values import (
    PhpArray,
    arith,
    compare,
    loose_eq,
    strict_eq,
    to_int,
    to_str,
    truthy,
)
from repro.trace.events import Request

#: The request-input built-ins (resolved before everything else).
_REQUEST_INPUTS = {"param": "get", "post_param": "post", "cookie": "cookies"}


class _State:
    """Per-request mutable state of a compiled run (the compiled analog
    of :class:`repro.lang.interp._RunState`; ``funcs`` is gone — user
    calls are resolved at compile time — and ``globals`` is the
    top-level frame dict, which ``global``-using function frames link
    back to)."""

    __slots__ = ("request", "output", "digest", "in_tx", "steps", "depth",
                 "globals")

    def __init__(self, request: Request, digest: FlowDigest | None):
        self.request = request
        self.output: list[str] = []
        self.digest = digest
        self.in_tx = False
        self.steps = 0
        self.depth = 0
        self.globals: dict[str, object] = {}


class _CompiledFunc:
    """One compiled user function.  ``run`` is filled in after every
    function object exists, so mutually recursive call sites can bind
    the object eagerly and read ``.run`` at call time."""

    __slots__ = ("name", "params", "pure", "use_env", "run")

    def __init__(self, name: str, params: list[str], pure: bool,
                 use_env: bool):
        self.name = name
        self.params = params
        self.pure = pure
        self.use_env = use_env
        self.run: Callable | None = None


def _binop_combine(op: str) -> Callable[[object, object], object]:
    """The value function of a non-short-circuit binary operator —
    mirrors :meth:`Interpreter._binop_value` exactly (unknown operators
    fall through to :func:`arith`, which raises)."""
    if op == ".":
        return lambda left, right: to_str(left) + to_str(right)
    if op == "==":
        return loose_eq
    if op == "!=":
        return lambda left, right: not loose_eq(left, right)
    if op == "===":
        return strict_eq
    if op == "!==":
        return lambda left, right: not strict_eq(left, right)
    if op in ("<", "<=", ">", ">="):
        return lambda left, right, _op=op: compare(_op, left, right)
    return lambda left, right, _op=op: arith(_op, left, right)


def _apply_compound(op: str, current: object, value: object) -> object:
    if op == ".":
        return to_str(current) + to_str(value)
    return arith(op, current, value)


class _Compiler:
    """Compiles one program for one dialect (db/kv/session names)."""

    def __init__(self, program: Program, db_name: str, kv_name: str,
                 session_cookie: str):
        self.program = program
        self.db_name = db_name
        self.kv_name = kv_name
        self.session_cookie = session_cookie
        #: Whether the scope being compiled needs the _Env indirection
        #: (it executes a ``global`` declaration somewhere).
        self.use_env = False
        self.funcs: dict[str, _CompiledFunc] = {}
        #: Function-level effects come from the static analyzer — the
        #: single source of truth for purity (repro.lang.analysis); the
        #: report is cached per (program, dialect) like the compile cache.
        self.analysis = analysis_for(program, db_name, kv_name,
                                     session_cookie)

    # -- driver -------------------------------------------------------------

    def compile(self) -> CompiledProgram:
        program = self.program
        for name, decl in program.functions.items():
            self.funcs[name] = _CompiledFunc(
                name, decl.params,
                pure=self.analysis.function_pure(name),
                use_env=_scope_uses_global(decl.body),
            )
        for name, decl in program.functions.items():
            func = self.funcs[name]
            self.use_env = func.use_env
            pure, fn = self._compile_block(decl.body)
            # The analyzer's effect fixpoint and the compiled block agree
            # on purity; the compiled block stays authoritative for the
            # run closure.
            func.pure = pure
            func.run = fn
        self.use_env = False  # top level: vars *are* globals
        body_pure, body_fn = self._compile_block(program.body)
        return CompiledProgram(program.name, body_pure, body_fn)

    # -- blocks and statements ------------------------------------------------

    def _compile_block(self, stmts: list[Node]) -> tuple[bool, Callable]:
        compiled = [self._compile_stmt(stmt) for stmt in stmts]
        if all(pure for pure, _ in compiled):
            fns = [fn for _, fn in compiled]
            if len(fns) == 1:
                return True, fns[0]

            def run(env, state, _fns=fns):
                for fn in _fns:
                    fn(env, state)

            return True, run

        def run_gen(env, state, _items=compiled):
            for pure, fn in _items:
                if pure:
                    fn(env, state)
                else:
                    yield from fn(env, state)

        return False, run_gen

    def _compile_stmt(self, stmt: Node) -> tuple[bool, Callable]:
        kind = type(stmt)
        if kind is Assign:
            return self._compile_assign(stmt)
        if kind is ExprStmt:
            pure, fn, _ = self._compile_expr(stmt.expr)
            if pure:

                def run(env, state):
                    state.steps += 1
                    fn(env, state)

                return True, run

            def run_gen(env, state):
                state.steps += 1
                yield from fn(env, state)

            return False, run_gen
        if kind is Echo:
            return self._compile_echo(stmt)
        if kind is If:
            return self._compile_if(stmt)
        if kind is While:
            return self._compile_while(stmt)
        if kind is Foreach:
            return self._compile_foreach(stmt)
        if kind is IndexAssign:
            return self._compile_index_assign(stmt)
        if kind is Return:
            return self._compile_return(stmt)
        if kind is GlobalDecl:
            names = tuple(stmt.names)
            if self.use_env:

                def run(env, state):
                    state.steps += 1
                    env.global_names.update(names)

                return True, run

            # Dict-mode scopes only reach here at top level, where the
            # frame *is* the globals dict: the declaration is a no-op
            # beyond its instruction count.
            def run(env, state):
                state.steps += 1

            return True, run
        if kind is Break:

            def run(env, state):
                state.steps += 1
                raise _BreakSignal()

            return True, run
        if kind is Continue:

            def run(env, state):
                state.steps += 1
                raise _ContinueSignal()

            return True, run

        def run(env, state, _name=kind.__name__):
            state.steps += 1
            raise WeblangError(f"unknown statement {_name}")

        return True, run

    def _compile_assign(self, stmt: Assign) -> tuple[bool, Callable]:
        pure, fn = self._compile_expr_copy(stmt.expr)
        name = stmt.name
        op = stmt.op
        use_env = self.use_env
        if pure:
            if not op:
                if use_env:

                    def run(env, state):
                        state.steps += 1
                        env.store(name, fn(env, state))

                else:

                    def run(env, state):
                        state.steps += 1
                        env[name] = fn(env, state)

                return True, run
            if use_env:

                def run(env, state):
                    state.steps += 1
                    value = fn(env, state)
                    env.store(name,
                              _apply_compound(op, env.lookup(name), value))

            else:

                def run(env, state):
                    state.steps += 1
                    value = fn(env, state)
                    env[name] = _apply_compound(op, env.get(name), value)

            return True, run

        def run_gen(env, state):
            state.steps += 1
            value = yield from fn(env, state)
            if op:
                current = env.lookup(name) if use_env else env.get(name)
                value = _apply_compound(op, current, value)
            if use_env:
                env.store(name, value)
            else:
                env[name] = value

        return False, run_gen

    def _compile_echo(self, stmt: Echo) -> tuple[bool, Callable]:
        compiled = [self._compile_expr(expr) for expr in stmt.exprs]
        if all(pure for pure, _, _ in compiled):
            fns = [fn for _, fn, _ in compiled]

            def run(env, state):
                state.steps += 1
                append = state.output.append
                for fn in fns:
                    append(to_str(fn(env, state)))

            return True, run
        items = [(pure, fn) for pure, fn, _ in compiled]

        def run_gen(env, state):
            state.steps += 1
            append = state.output.append
            for pure, fn in items:
                value = (fn(env, state) if pure
                         else (yield from fn(env, state)))
                append(to_str(value))

        return False, run_gen

    def _compile_if(self, stmt: If) -> tuple[bool, Callable]:
        branches = [
            (self._compile_expr(cond), self._compile_block(body))
            for cond, body in stmt.branches
        ]
        else_c = (self._compile_block(stmt.else_body)
                  if stmt.else_body is not None else None)
        nid64 = stmt.nid * 64
        all_pure = all(
            cond[0] and body[0] for cond, body in branches
        ) and (else_c is None or else_c[0])
        if all_pure:
            plain = [(cond[1], body[1]) for cond, body in branches]
            else_fn = else_c[1] if else_c is not None else None

            def run(env, state):
                state.steps += 1
                taken = -1
                body_fn = else_fn
                for index, (cond_fn, branch_fn) in enumerate(plain):
                    if truthy(cond_fn(env, state)):
                        taken = index
                        body_fn = branch_fn
                        break
                digest = state.digest
                if digest is not None:
                    digest.update("if", nid64 + taken + 1)
                if body_fn is not None:
                    body_fn(env, state)

            return True, run

        def run_gen(env, state):
            state.steps += 1
            taken = -1
            body = else_c
            for index, (cond, branch_body) in enumerate(branches):
                cond_pure, cond_fn, _ = cond
                value = (cond_fn(env, state) if cond_pure
                         else (yield from cond_fn(env, state)))
                if truthy(value):
                    taken = index
                    body = branch_body
                    break
            digest = state.digest
            if digest is not None:
                digest.update("if", nid64 + taken + 1)
            if body is not None:
                body_pure, body_fn = body
                if body_pure:
                    body_fn(env, state)
                else:
                    yield from body_fn(env, state)

        return False, run_gen

    def _compile_while(self, stmt: While) -> tuple[bool, Callable]:
        cond_pure, cond_fn, _ = self._compile_expr(stmt.cond)
        body_pure, body_fn = self._compile_block(stmt.body)
        nid = stmt.nid
        if cond_pure and body_pure:

            def run(env, state):
                state.steps += 1
                while True:
                    if not truthy(cond_fn(env, state)):
                        break
                    digest = state.digest
                    if digest is not None:
                        digest.update("loop", nid)
                    try:
                        body_fn(env, state)
                    except _BreakSignal:
                        break
                    except _ContinueSignal:
                        continue
                digest = state.digest
                if digest is not None:
                    digest.update("loopx", nid)

            return True, run

        def run_gen(env, state):
            state.steps += 1
            while True:
                value = (cond_fn(env, state) if cond_pure
                         else (yield from cond_fn(env, state)))
                if not truthy(value):
                    break
                digest = state.digest
                if digest is not None:
                    digest.update("loop", nid)
                try:
                    if body_pure:
                        body_fn(env, state)
                    else:
                        yield from body_fn(env, state)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            digest = state.digest
            if digest is not None:
                digest.update("loopx", nid)

        return False, run_gen

    def _compile_foreach(self, stmt: Foreach) -> tuple[bool, Callable]:
        subj_pure, subj_fn, _ = self._compile_expr(stmt.subject)
        body_pure, body_fn = self._compile_block(stmt.body)
        key_var = stmt.key_var
        val_var = stmt.val_var
        nid = stmt.nid
        use_env = self.use_env

        def store(env, name, value):
            if use_env:
                env.store(name, value)
            else:
                env[name] = value

        if subj_pure and body_pure:

            def run(env, state):
                state.steps += 1
                subject = subj_fn(env, state)
                if not isinstance(subject, PhpArray):
                    raise WeblangError("foreach over a non-array")
                for key, value in subject.items():
                    digest = state.digest
                    if digest is not None:
                        digest.update("loop", nid)
                    if key_var is not None:
                        store(env, key_var, key)
                    if isinstance(value, PhpArray):
                        store(env, val_var, value.deep_copy())
                    else:
                        store(env, val_var, value)
                    try:
                        body_fn(env, state)
                    except _BreakSignal:
                        break
                    except _ContinueSignal:
                        continue
                digest = state.digest
                if digest is not None:
                    digest.update("loopx", nid)

            return True, run

        def run_gen(env, state):
            state.steps += 1
            subject = (subj_fn(env, state) if subj_pure
                       else (yield from subj_fn(env, state)))
            if not isinstance(subject, PhpArray):
                raise WeblangError("foreach over a non-array")
            for key, value in subject.items():
                digest = state.digest
                if digest is not None:
                    digest.update("loop", nid)
                if key_var is not None:
                    store(env, key_var, key)
                if isinstance(value, PhpArray):
                    store(env, val_var, value.deep_copy())
                else:
                    store(env, val_var, value)
                try:
                    if body_pure:
                        body_fn(env, state)
                    else:
                        yield from body_fn(env, state)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            digest = state.digest
            if digest is not None:
                digest.update("loopx", nid)

        return False, run_gen

    def _compile_index_assign(
        self, stmt: IndexAssign
    ) -> tuple[bool, Callable]:
        name = stmt.name
        op = stmt.op
        use_env = self.use_env
        walk = [
            (self._compile_expr(p) if p is not None else None)
            for p in stmt.path[:-1]
        ]
        last = stmt.path[-1]
        last_c = self._compile_expr(last) if last is not None else None
        value_pure, value_fn = self._compile_expr_copy(stmt.expr)
        all_pure = (
            value_pure
            and all(p is None or p[0] for p in walk)
            and (last_c is None or last_c[0])
        )

        def root(env, state):
            container = env.lookup(name) if use_env else env.get(name)
            if container is None:
                container = PhpArray()
                if use_env:
                    env.store(name, container)
                else:
                    env[name] = container
            if not isinstance(container, PhpArray):
                raise WeblangError(
                    f"cannot index non-array variable ${name}"
                )
            return container

        def descend(container, key):
            inner = container.get(key)
            if inner is None:
                inner = PhpArray()
                container.set(key, inner)
            if not isinstance(inner, PhpArray):
                raise WeblangError("cannot index into a scalar")
            return inner

        if all_pure:
            walk_fns = [p[1] if p is not None else None for p in walk]
            last_fn = last_c[1] if last_c is not None else None

            def run(env, state):
                state.steps += 1
                container = root(env, state)
                for path_fn in walk_fns:
                    if path_fn is None:
                        raise WeblangError(
                            "'[]' only allowed as the last index"
                        )
                    container = descend(container,
                                        path_fn(env, state))
                value = value_fn(env, state)
                if last_fn is None:
                    if op:
                        raise WeblangError(
                            "compound assignment to append slot"
                        )
                    container.append(value)
                else:
                    key = last_fn(env, state)
                    if op:
                        value = _apply_compound(op, container.get(key),
                                                value)
                    container.set(key, value)

            return True, run

        def run_gen(env, state):
            state.steps += 1
            container = root(env, state)
            for path_c in walk:
                if path_c is None:
                    raise WeblangError("'[]' only allowed as the last index")
                path_pure, path_fn, _ = path_c
                key = (path_fn(env, state) if path_pure
                       else (yield from path_fn(env, state)))
                container = descend(container, key)
            value = (value_fn(env, state) if value_pure
                     else (yield from value_fn(env, state)))
            if last_c is None:
                if op:
                    raise WeblangError("compound assignment to append slot")
                container.append(value)
            else:
                last_pure, last_fn, _ = last_c
                key = (last_fn(env, state) if last_pure
                       else (yield from last_fn(env, state)))
                if op:
                    value = _apply_compound(op, container.get(key), value)
                container.set(key, value)

        return False, run_gen

    def _compile_return(self, stmt: Return) -> tuple[bool, Callable]:
        if stmt.expr is None:

            def run(env, state):
                state.steps += 1
                raise _ReturnSignal(None)

            return True, run
        pure, fn = self._compile_expr_copy(stmt.expr)
        if pure:

            def run(env, state):
                state.steps += 1
                raise _ReturnSignal(fn(env, state))

            return True, run

        def run_gen(env, state):
            state.steps += 1
            value = yield from fn(env, state)
            raise _ReturnSignal(value)

        return False, run_gen

    # -- expressions ----------------------------------------------------------

    def _const(self, value: object,
               steps: int) -> tuple[bool, Callable, tuple]:
        def run(env, state):
            state.steps += steps
            return value

        return True, run, (value, steps)

    def _compile_expr(self, node: Node) -> tuple[bool, Callable, tuple | None]:
        """Compile one expression.

        Returns ``(pure, fn, const)``: ``fn(env, state)`` is a plain
        closure when pure, a generator closure otherwise; ``const`` is
        ``(value, steps)`` when the subtree folded to a compile-time
        constant (``fn`` then credits the folded nodes' instruction
        count in one add).
        """
        kind = type(node)
        if kind is Lit:
            return self._const(node.value, 1)
        if kind is Var:
            name = node.name
            if self.use_env:

                def run(env, state):
                    state.steps += 1
                    return env.lookup(name)

            else:

                def run(env, state):
                    state.steps += 1
                    return env.get(name)

            return True, run, None
        if kind is BinOp:
            return self._compile_binop(node)
        if kind is Index:
            return self._compile_index(node)
        if kind is Call:
            return self._compile_call(node)
        if kind is UnOp:
            return self._compile_unop(node)
        if kind is Ternary:
            return self._compile_ternary(node)
        if kind is ArrayLit:
            return self._compile_arraylit(node)

        def run(env, state, _name=kind.__name__):
            state.steps += 1
            raise WeblangError(f"unknown expression {_name}")

        return True, run, None

    def _compile_expr_copy(self, node: Node) -> tuple[bool, Callable]:
        """The :meth:`Interpreter._eval_copy` rule: a Var/Index read
        whose value is an array copies it into the new location."""
        pure, fn, _ = self._compile_expr(node)
        if type(node) not in (Var, Index):
            return pure, fn
        if pure:

            def run(env, state):
                value = fn(env, state)
                if isinstance(value, PhpArray):
                    return value.deep_copy()
                return value

            return True, run

        def run_gen(env, state):
            value = yield from fn(env, state)
            if isinstance(value, PhpArray):
                return value.deep_copy()
            return value

        return False, run_gen

    def _compile_binop(self, node: BinOp) -> tuple[bool, Callable, tuple | None]:
        op = node.op
        if op in ("&&", "||"):
            return self._compile_logic(node)
        left_pure, left_fn, left_const = self._compile_expr(node.left)
        right_pure, right_fn, right_const = self._compile_expr(node.right)
        combine = _binop_combine(op)
        if left_const is not None and right_const is not None:
            try:
                folded = combine(left_const[0], right_const[0])
            except WeblangError:
                pass  # fold would raise: keep it a runtime error
            else:
                return self._const(
                    folded, 1 + left_const[1] + right_const[1]
                )
        if left_pure and right_pure:

            def run(env, state):
                state.steps += 1
                return combine(left_fn(env, state), right_fn(env, state))

            return True, run, None

        def run_gen(env, state):
            state.steps += 1
            left = (left_fn(env, state) if left_pure
                    else (yield from left_fn(env, state)))
            right = (right_fn(env, state) if right_pure
                     else (yield from right_fn(env, state)))
            return combine(left, right)

        return False, run_gen, None

    def _compile_logic(self, node: BinOp) -> tuple[bool, Callable, None]:
        left_pure, left_fn, _ = self._compile_expr(node.left)
        right_pure, right_fn, _ = self._compile_expr(node.right)
        nid2 = node.nid * 2
        is_and = node.op == "&&"
        short_value = False if is_and else True
        if left_pure and right_pure:

            def run(env, state):
                state.steps += 1
                left = left_fn(env, state)
                take_right = truthy(left) if is_and else not truthy(left)
                digest = state.digest
                if digest is not None:
                    digest.update("sc", nid2 + int(take_right))
                if not take_right:
                    return short_value
                return truthy(right_fn(env, state))

            return True, run, None

        def run_gen(env, state):
            state.steps += 1
            left = (left_fn(env, state) if left_pure
                    else (yield from left_fn(env, state)))
            take_right = truthy(left) if is_and else not truthy(left)
            digest = state.digest
            if digest is not None:
                digest.update("sc", nid2 + int(take_right))
            if not take_right:
                return short_value
            right = (right_fn(env, state) if right_pure
                     else (yield from right_fn(env, state)))
            return truthy(right)

        return False, run_gen, None

    def _compile_unop(self, node: UnOp) -> tuple[bool, Callable, tuple | None]:
        op = node.op
        pure, fn, const = self._compile_expr(node.operand)
        if op == "!":
            if const is not None:
                return self._const(not truthy(const[0]), const[1] + 1)
            if pure:

                def run(env, state):
                    state.steps += 1
                    return not truthy(fn(env, state))

                return True, run, None

            def run_gen(env, state):
                state.steps += 1
                value = yield from fn(env, state)
                return not truthy(value)

            return False, run_gen, None
        if op == "-":
            if const is not None:
                try:
                    folded = arith("-", 0, const[0])
                except WeblangError:
                    pass
                else:
                    return self._const(folded, const[1] + 1)
            if pure:

                def run(env, state):
                    state.steps += 1
                    return arith("-", 0, fn(env, state))

                return True, run, None

            def run_gen(env, state):
                state.steps += 1
                value = yield from fn(env, state)
                return arith("-", 0, value)

            return False, run_gen, None

        # Unknown unary operator: the interpreter evaluates the operand,
        # then raises.
        if pure:

            def run(env, state):
                state.steps += 1
                fn(env, state)
                raise WeblangError(f"unknown unary operator {op!r}")

            return True, run, None

        def run_gen(env, state):
            state.steps += 1
            yield from fn(env, state)
            raise WeblangError(f"unknown unary operator {op!r}")

        return False, run_gen, None

    def _compile_ternary(self, node: Ternary) -> tuple[bool, Callable, None]:
        cond_pure, cond_fn, _ = self._compile_expr(node.cond)
        then_pure, then_fn, _ = self._compile_expr(node.then)
        other_pure, other_fn, _ = self._compile_expr(node.other)
        nid2 = node.nid * 2
        if cond_pure and then_pure and other_pure:

            def run(env, state):
                state.steps += 1
                taken = truthy(cond_fn(env, state))
                digest = state.digest
                if digest is not None:
                    digest.update("tern", nid2 + int(taken))
                if taken:
                    return then_fn(env, state)
                return other_fn(env, state)

            return True, run, None

        def run_gen(env, state):
            state.steps += 1
            cond = (cond_fn(env, state) if cond_pure
                    else (yield from cond_fn(env, state)))
            taken = truthy(cond)
            digest = state.digest
            if digest is not None:
                digest.update("tern", nid2 + int(taken))
            if taken:
                if then_pure:
                    return then_fn(env, state)
                return (yield from then_fn(env, state))
            if other_pure:
                return other_fn(env, state)
            return (yield from other_fn(env, state))

        return False, run_gen, None

    def _compile_index(self, node: Index) -> tuple[bool, Callable, None]:
        base_pure, base_fn, _ = self._compile_expr(node.base)
        index_pure, index_fn, _ = self._compile_expr(node.index)
        if base_pure and index_pure:

            def run(env, state):
                state.steps += 1
                base = base_fn(env, state)
                if isinstance(base, PhpArray):
                    return base.get(index_fn(env, state))
                if isinstance(base, str):
                    position = to_int(index_fn(env, state))
                    if 0 <= position < len(base):
                        return base[position]
                    return ""
                raise WeblangError("indexing a non-array value")

            return True, run, None

        def run_gen(env, state):
            state.steps += 1
            base = (base_fn(env, state) if base_pure
                    else (yield from base_fn(env, state)))
            if isinstance(base, PhpArray):
                index = (index_fn(env, state) if index_pure
                         else (yield from index_fn(env, state)))
                return base.get(index)
            if isinstance(base, str):
                index = (index_fn(env, state) if index_pure
                         else (yield from index_fn(env, state)))
                position = to_int(index)
                if 0 <= position < len(base):
                    return base[position]
                return ""
            raise WeblangError("indexing a non-array value")

        return False, run_gen, None

    def _compile_arraylit(self, node: ArrayLit) -> tuple[bool, Callable, None]:
        items = [
            (
                self._compile_expr(key) if key is not None else None,
                self._compile_expr_copy(value),
            )
            for key, value in node.items
        ]
        all_pure = all(
            (key is None or key[0]) and value[0] for key, value in items
        )
        if all_pure:
            pairs = [
                (key[1] if key is not None else None, value[1])
                for key, value in items
            ]

            def run(env, state):
                state.steps += 1
                array = PhpArray()
                for key_fn, value_fn in pairs:
                    value = value_fn(env, state)
                    if key_fn is None:
                        array.append(value)
                    else:
                        array.set(key_fn(env, state), value)
                return array

            return True, run, None

        def run_gen(env, state):
            state.steps += 1
            array = PhpArray()
            for key_c, (value_pure, value_fn) in items:
                value = (value_fn(env, state) if value_pure
                         else (yield from value_fn(env, state)))
                if key_c is None:
                    array.append(value)
                else:
                    key_pure, key_fn, _ = key_c
                    key = (key_fn(env, state) if key_pure
                           else (yield from key_fn(env, state)))
                    array.set(key, value)
            return array

        return False, run_gen, None

    # -- calls ------------------------------------------------------------

    def _compile_args(self, nodes: list[Node]) -> tuple[bool, Callable]:
        """Evaluate a call's arguments (with copy semantics) to a list."""
        compiled = [self._compile_expr_copy(arg) for arg in nodes]
        if all(pure for pure, _ in compiled):
            fns = [fn for _, fn in compiled]

            def run(env, state):
                return [fn(env, state) for fn in fns]

            return True, run

        def run_gen(env, state):
            values = []
            for pure, fn in compiled:
                values.append(fn(env, state) if pure
                              else (yield from fn(env, state)))
            return values

        return False, run_gen

    def _compile_call(self, node: Call) -> tuple[bool, Callable, None]:
        name = node.name
        args_pure, args_fn = self._compile_args(node.args)
        if name in _REQUEST_INPUTS:
            return self._compile_request_input(name, args_pure, args_fn)
        if name in STATE_BUILTINS:
            return self._compile_state_call(name, args_pure, args_fn)
        if name in EXTERNAL_BUILTINS:
            return self._compile_external(name, args_pure, args_fn)
        if name in NONDET_BUILTINS:

            def run_gen(env, state):
                state.steps += 1
                args = (args_fn(env, state) if args_pure
                        else (yield from args_fn(env, state)))
                result = yield NondetIntent(name, tuple(args))
                return result

            return False, run_gen, None
        func = self.funcs.get(name)
        if func is not None:
            return self._compile_user_call(func, args_pure, args_fn)
        builtin = PURE_BUILTINS.get(name)
        if builtin is not None:
            if args_pure:

                def run(env, state):
                    state.steps += 1
                    return builtin(*args_fn(env, state))

                return True, run, None

            def run_gen(env, state):
                state.steps += 1
                args = yield from args_fn(env, state)
                return builtin(*args)

            return False, run_gen, None

        # Undefined function: arguments evaluate first, like the
        # interpreter, then the call raises.
        if args_pure:

            def run(env, state):
                state.steps += 1
                args_fn(env, state)
                raise WeblangError(f"call to undefined function {name}()")

            return True, run, None

        def run_gen(env, state):
            state.steps += 1
            yield from args_fn(env, state)
            raise WeblangError(f"call to undefined function {name}()")

        return False, run_gen, None

    def _compile_request_input(
        self, name: str, args_pure: bool, args_fn: Callable
    ) -> tuple[bool, Callable, None]:
        attr = _REQUEST_INPUTS[name]

        def finish(args, state):
            if len(args) not in (1, 2):
                raise WeblangError(f"{name}() expects 1 or 2 arguments")
            key = to_str(args[0])
            default = args[1] if len(args) == 2 else None
            return getattr(state.request, attr).get(key, default)

        if args_pure:

            def run(env, state):
                state.steps += 1
                return finish(args_fn(env, state), state)

            return True, run, None

        def run_gen(env, state):
            state.steps += 1
            args = yield from args_fn(env, state)
            return finish(args, state)

        return False, run_gen, None

    def _compile_user_call(
        self, func: _CompiledFunc, args_pure: bool, args_fn: Callable
    ) -> tuple[bool, Callable, None]:
        params = tuple(func.params)
        use_env = func.use_env

        def make_frame(args, state):
            if state.depth >= _MAX_CALL_DEPTH:
                raise WeblangError("maximum call depth exceeded")
            if use_env:
                frame = _Env(state.globals)
                slots = frame.vars
            else:
                frame = slots = {}
            for index, param in enumerate(params):
                slots[param] = args[index] if index < len(args) else None
            return frame

        if func.pure and args_pure:

            def run(env, state):
                state.steps += 1
                frame = make_frame(args_fn(env, state), state)
                state.depth += 1
                try:
                    func.run(frame, state)
                    return None
                except _ReturnSignal as signal:
                    return signal.value
                finally:
                    state.depth -= 1

            return True, run, None

        def run_gen(env, state):
            state.steps += 1
            args = (args_fn(env, state) if args_pure
                    else (yield from args_fn(env, state)))
            frame = make_frame(args, state)
            state.depth += 1
            try:
                if func.pure:
                    func.run(frame, state)
                else:
                    yield from func.run(frame, state)
                return None
            except _ReturnSignal as signal:
                return signal.value
            finally:
                state.depth -= 1

        return False, run_gen, None

    # -- state / external built-ins ----------------------------------------

    def _compile_state_call(
        self, name: str, args_pure: bool, args_fn: Callable
    ) -> tuple[bool, Callable, None]:
        db_name = self.db_name
        kv_name = self.kv_name
        session_cookie = self.session_cookie
        convert = Interpreter._convert_db_result

        def check_args(args, expected):
            if len(args) != expected:
                raise WeblangError(
                    f"{name}() expects {expected} arguments, "
                    f"got {len(args)}"
                )

        def session_register(state):
            cookie = state.request.cookies.get(session_cookie)
            if cookie is None:
                raise WeblangError(
                    "session_get/session_put without a session cookie"
                )
            return f"reg:sess:{cookie}"

        if name in ("db_query", "db_exec"):

            def op(args, state):
                check_args(args, 1)
                sql = to_str(args[0])
                result = yield StateOpIntent("db_statement", db_name,
                                             (sql,))
                return convert(name, result)

        elif name == "db_begin":

            def op(args, state):
                check_args(args, 0)
                if state.in_tx:
                    raise WeblangError(
                        "nested transactions are not allowed"
                    )
                yield StateOpIntent("db_begin", db_name, ())
                state.in_tx = True
                return None

        elif name == "db_commit":

            def op(args, state):
                check_args(args, 0)
                if not state.in_tx:
                    raise WeblangError("db_commit() without a transaction")
                result = yield StateOpIntent("db_commit", db_name, ())
                state.in_tx = False
                return bool(result)

        elif name == "db_rollback":

            def op(args, state):
                check_args(args, 0)
                if not state.in_tx:
                    raise WeblangError(
                        "db_rollback() without a transaction"
                    )
                yield StateOpIntent("db_rollback", db_name, ())
                state.in_tx = False
                return None

        elif name == "kv_get":

            def op(args, state):
                if state.in_tx:
                    raise WeblangError(
                        f"{name}() inside a DB transaction violates the "
                        "object model"
                    )
                check_args(args, 1)
                key = to_str(args[0])
                result = yield StateOpIntent("kv_get", kv_name, (key,))
                return thaw_value(result)

        elif name == "kv_set":

            def op(args, state):
                if state.in_tx:
                    raise WeblangError(
                        f"{name}() inside a DB transaction violates the "
                        "object model"
                    )
                check_args(args, 2)
                key = to_str(args[0])
                value = freeze_value(args[1])
                yield StateOpIntent("kv_set", kv_name, (key, value))
                return None

        elif name == "reg_read":

            def op(args, state):
                if state.in_tx:
                    raise WeblangError(
                        f"{name}() inside a DB transaction violates the "
                        "object model"
                    )
                check_args(args, 1)
                register = f"reg:g:{to_str(args[0])}"
                result = yield StateOpIntent("register_read", register, ())
                return thaw_value(result)

        elif name == "reg_write":

            def op(args, state):
                if state.in_tx:
                    raise WeblangError(
                        f"{name}() inside a DB transaction violates the "
                        "object model"
                    )
                check_args(args, 2)
                register = f"reg:g:{to_str(args[0])}"
                value = freeze_value(args[1])
                yield StateOpIntent("register_write", register, (value,))
                return None

        elif name == "session_get":

            def op(args, state):
                if state.in_tx:
                    raise WeblangError(
                        f"{name}() inside a DB transaction violates the "
                        "object model"
                    )
                check_args(args, 0)
                register = session_register(state)
                result = yield StateOpIntent("register_read", register, ())
                return thaw_value(result)

        elif name == "session_put":

            def op(args, state):
                if state.in_tx:
                    raise WeblangError(
                        f"{name}() inside a DB transaction violates the "
                        "object model"
                    )
                check_args(args, 1)
                register = session_register(state)
                value = freeze_value(args[0])
                yield StateOpIntent("register_write", register, (value,))
                return None

        else:  # pragma: no cover - STATE_BUILTINS is a fixed set

            def op(args, state):
                raise WeblangError(f"unknown state builtin {name}")
                yield  # unreachable; keeps this a generator

        def run_gen(env, state):
            state.steps += 1
            args = (args_fn(env, state) if args_pure
                    else (yield from args_fn(env, state)))
            return (yield from op(args, state))

        return False, run_gen, None

    def _compile_external(
        self, name: str, args_pure: bool, args_fn: Callable
    ) -> tuple[bool, Callable, None]:
        is_email = name == "send_email"

        def run_gen(env, state):
            state.steps += 1
            args = (args_fn(env, state) if args_pure
                    else (yield from args_fn(env, state)))
            if state.in_tx:
                raise WeblangError(
                    f"{name}() inside a DB transaction violates the "
                    "object model"
                )
            service = "email" if is_email else to_str(args[0])
            payload = args if is_email else args[1:]
            content = tuple(freeze_value(value) for value in payload)
            yield ExternalIntent(service, content)
            return True

        return False, run_gen, None


def _scope_uses_global(stmts: list[Node]) -> bool:
    """True when the scope executes a ``global`` declaration anywhere
    (so its frame needs the :class:`_Env` indirection)."""
    for stmt in stmts:
        kind = type(stmt)
        if kind is GlobalDecl:
            return True
        if kind is If:
            for _, body in stmt.branches:
                if _scope_uses_global(body):
                    return True
            if stmt.else_body is not None and _scope_uses_global(
                stmt.else_body
            ):
                return True
        elif kind in (While, Foreach):
            if _scope_uses_global(stmt.body):
                return True
    return False


class CompiledProgram:
    """One compiled script.  :meth:`run` has the exact generator
    contract of :meth:`repro.lang.interp.Interpreter.run`."""

    __slots__ = ("name", "_body_pure", "_body_fn")

    def __init__(self, name: str, body_pure: bool, body_fn: Callable):
        self.name = name
        self._body_pure = body_pure
        self._body_fn = body_fn

    def run(self, request: Request, record_flow: bool = True):
        digest = FlowDigest() if record_flow else None
        if digest is not None:
            digest.update_str(self.name)
        state = _State(request, digest)
        env = state.globals  # the top-level frame is the globals dict
        try:
            if self._body_pure:
                self._body_fn(env, state)
            else:
                yield from self._body_fn(env, state)
        except _ReturnSignal:
            pass  # top-level return ends the script, like PHP
        except (_BreakSignal, _ContinueSignal):
            raise WeblangError("break/continue outside loop") from None
        if state.in_tx:
            raise WeblangError("script ended with an open transaction")
        flow_tag = digest.hexdigest() if digest is not None else None
        return RunOutput("".join(state.output), flow_tag, state.steps)


def compile_program(
    program: Program,
    db_name: str = "db:main",
    kv_name: str = "kv:apc",
    session_cookie: str = "sess",
) -> CompiledProgram:
    """Compile ``program`` (uncached); see :func:`compiled_for`."""
    return _Compiler(program, db_name, kv_name, session_cookie).compile()


#: (id(program), dialect) -> (weakref-to-program, CompiledProgram).  The
#: weakref guards against id() reuse after a program is collected.
_CACHE: dict[tuple, tuple[Callable, CompiledProgram]] = {}

#: Programs compiled by this process (cache misses), for benchmarks and
#: the cache tests.
_cache_misses = 0


def compiled_for(
    program: Program,
    db_name: str = "db:main",
    kv_name: str = "kv:apc",
    session_cookie: str = "sess",
) -> CompiledProgram:
    """The compiled form of ``program``, compiled on first use.

    Keyed by program identity plus dialect: every later call in this
    process — including from pool worker processes after they unpickle
    the application once — reuses the compiled closures.  Nothing is
    stored on the program object itself, so programs still pickle
    cleanly across spawn pools.
    """
    global _cache_misses
    key = (id(program), db_name, kv_name, session_cookie)
    entry = _CACHE.get(key)
    if entry is not None and entry[0]() is program:
        return entry[1]
    compiled = compile_program(program, db_name, kv_name, session_cookie)
    _cache_misses += 1
    try:
        ref = weakref.ref(program,
                          lambda _ref, _key=key: _CACHE.pop(_key, None))
    except TypeError:  # pragma: no cover - Program is weakref-able
        ref = (lambda _program=program: _program)
    _CACHE[key] = (ref, compiled)
    return compiled


def clear_cache() -> None:
    """Drop all compiled programs (benchmarks use this to measure the
    compile-time split)."""
    global _cache_misses
    _CACHE.clear()
    _cache_misses = 0


def cache_info() -> dict[str, int]:
    return {"entries": len(_CACHE), "misses": _cache_misses}


class CompInterpreter:
    """Drop-in replacement for :class:`~repro.lang.interp.Interpreter`
    that runs compiled programs (compiling on first use, cached)."""

    def __init__(
        self,
        db_name: str = "db:main",
        kv_name: str = "kv:apc",
        session_cookie: str = "sess",
        record_flow: bool = True,
    ):
        self.db_name = db_name
        self.kv_name = kv_name
        self.session_cookie = session_cookie
        self.record_flow = record_flow

    def run(self, program: Program, request: Request):
        compiled = compiled_for(program, self.db_name, self.kv_name,
                                self.session_cookie)
        return compiled.run(request, self.record_flow)
