"""Static analysis over weblang ASTs: effects, footprints, lints.

Three cooperating analyses run in one pass per program, producing an
:class:`EffectReport`:

* **Effect inference** — every node gets a set drawn from the lattice
  ``{state-read, state-write, nondet, external}`` (pure = empty set),
  computed over the call graph with an iterative fixpoint so mutual
  recursion is handled precisely.  Builtins are classified once, in
  :data:`repro.lang.builtins.BUILTIN_EFFECTS`.  The compiling backend
  (:mod:`repro.lang.compile`) sources its purity decisions here.

* **State-key footprints** — an over-approximation of the shared-object
  keys a program or function can read or write.  Constant keys are
  tracked exactly (including constant-foldable concatenations and pure
  builtin applications such as ``sql_quote``); computed keys widen the
  per-object key set to ⊤ with a taint trail explaining why.  Constant
  SQL statements are parsed and contribute exact table names; register
  names widen only to their ``reg:g:`` / ``reg:sess:`` prefix.  This is
  the artifact a sharded-store dispatcher needs to ship only the state
  slices a script can touch.

* **Audit-soundness lint** — diagnostics with stable codes flagging
  determinism risks and SIMD-grouping divergence hazards:

  ========  ========  ====================================================
  code      severity  meaning
  ========  ========  ====================================================
  ``W001``  warning   nondet-in-branch-condition (if/while/foreach/
                      ternary/short-circuit control flow may diverge)
  ``W002``  warning   external-result-flows-to-state-key
  ``W003``  warning   state-write-under-divergent-branch
  ``W004``  error     unknown-builtin (call to an undefined function)
  ``W005``  info      computed-state-key (footprint widened; the message
                      carries the taint trail)
  ========  ========  ====================================================

The soundness contract — every intent and state-op key observed at run
time falls inside the static over-approximation — is enforced by
``tests/lang/test_analysis_soundness.py`` on the bundled apps plus
randomized programs.  ``repro lint <app>`` surfaces the report.
"""

from __future__ import annotations

import weakref
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.lang.ast import (
    ArrayLit,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Echo,
    ExprStmt,
    Foreach,
    FuncDecl,
    GlobalDecl,
    If,
    Index,
    IndexAssign,
    Lit,
    Node,
    Program,
    Return,
    Ternary,
    UnOp,
    Var,
    While,
)
from repro.lang.builtins import (
    BUILTIN_EFFECTS,
    EFFECT_EXTERNAL,
    EFFECT_NONDET,
    EFFECT_STATE_READ,
    EFFECT_STATE_WRITE,
    EFFECTS_NONE,
    EXTERNAL_BUILTINS,
    MUTATING_BUILTINS,
    NONDET_BUILTINS,
    PURE_BUILTINS,
    REQUEST_INPUT_BUILTINS,
    STATE_BUILTINS,
)
from repro.lang.values import to_str
from repro.sql.ast import is_write as _sql_is_write
from repro.sql.ast import tables_touched as _sql_tables_touched
from repro.sql.parser import parse_sql

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (server -> lang)
    from repro.server.app import Application

__all__ = [
    "ALL_EFFECTS",
    "REGISTERS",
    "SEVERITIES",
    "Diagnostic",
    "EffectReport",
    "Footprint",
    "KeySet",
    "analysis_for",
    "analyze_app",
    "analyze_program",
    "divergence_hazards",
    "iter_children",
    "sql_key_footprint",
]

#: All effect atoms, in canonical display order.
ALL_EFFECTS: tuple[str, ...] = (
    EFFECT_STATE_READ,
    EFFECT_STATE_WRITE,
    EFFECT_NONDET,
    EFFECT_EXTERNAL,
)

#: Footprint object class covering every register object (``reg:g:*``
#: globals and ``reg:sess:*`` sessions); keys are full register names.
REGISTERS = "registers"

#: Diagnostic severities, weakest first.
SEVERITIES: tuple[str, ...] = ("info", "warning", "error")

_SEVERITY_ORDER: dict[str, int] = {name: i for i, name in enumerate(SEVERITIES)}

#: Effect atoms that make a value a divergence/determinism taint.
_TAINT_EFFECTS: frozenset = frozenset({EFFECT_NONDET, EFFECT_EXTERNAL})


def iter_children(node: Node) -> tuple:
    """The direct AST children of ``node`` (the analysis walk order)."""
    kind = type(node)
    if kind in (Lit, Var, Break, Continue, GlobalDecl):
        return ()
    if kind is ArrayLit:
        out: list[Node] = []
        for key, value in node.items:
            if key is not None:
                out.append(key)
            out.append(value)
        return tuple(out)
    if kind is Index:
        return (node.base, node.index)
    if kind is BinOp:
        return (node.left, node.right)
    if kind is UnOp:
        return (node.operand,)
    if kind is Ternary:
        return (node.cond, node.then, node.other)
    if kind is Call:
        return tuple(node.args)
    if kind is ExprStmt:
        return (node.expr,)
    if kind is Assign:
        return (node.expr,)
    if kind is IndexAssign:
        return tuple(p for p in node.path if p is not None) + (node.expr,)
    if kind is Echo:
        return tuple(node.exprs)
    if kind is If:
        out = []
        for cond, body in node.branches:
            out.append(cond)
            out.extend(body)
        if node.else_body is not None:
            out.extend(node.else_body)
        return tuple(out)
    if kind is While:
        return (node.cond,) + tuple(node.body)
    if kind is Foreach:
        return (node.subject,) + tuple(node.body)
    if kind is Return:
        return (node.expr,) if node.expr is not None else ()
    if kind is FuncDecl:
        return tuple(node.body)
    return ()


def sql_key_footprint(sql: str) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """``(read_tables, write_tables)`` of one SQL statement text.

    The single source of truth shared by the static side (constant SQL
    arguments) and the dynamic soundness harness (executed statements),
    so containment holds by construction.  Write statements report their
    tables on both sides (UPDATE/DELETE read the rows they match).
    Raises on unparseable text.
    """
    stmt = parse_sql(sql)
    tables = _sql_tables_touched(stmt)
    if _sql_is_write(stmt):
        return tables, tables
    return tables, ()


# --------------------------------------------------------------------------
# Report data types
# --------------------------------------------------------------------------


@dataclass
class KeySet:
    """Over-approximate set of keys touched on one shared object.

    ``keys`` are exact, ``prefixes`` cover key families whose tail is
    runtime data (register names), and ``top`` means any key (⊤).  Every
    widening appends a human-readable reason to ``taints``.
    """

    keys: set[str] = field(default_factory=set)
    prefixes: set[str] = field(default_factory=set)
    top: bool = False
    taints: list[str] = field(default_factory=list)

    def add_key(self, key: str) -> None:
        self.keys.add(key)

    def add_prefix(self, prefix: str, reason: str | None = None) -> None:
        self.prefixes.add(prefix)
        if reason is not None:
            self._taint(reason)

    def widen(self, reason: str) -> None:
        self.top = True
        self._taint(reason)

    def _taint(self, reason: str) -> None:
        if reason not in self.taints:
            self.taints.append(reason)

    def merge(self, other: KeySet) -> None:
        self.keys |= other.keys
        self.prefixes |= other.prefixes
        self.top = self.top or other.top
        for reason in other.taints:
            self._taint(reason)

    def covers(self, key: str) -> bool:
        if self.top or key in self.keys:
            return True
        return any(key.startswith(prefix) for prefix in self.prefixes)

    def snapshot(self) -> tuple:
        return (frozenset(self.keys), frozenset(self.prefixes), self.top)

    def to_json(self) -> dict:
        return {
            "keys": sorted(self.keys),
            "prefixes": sorted(self.prefixes),
            "top": self.top,
            "taints": list(self.taints),
        }


@dataclass
class Footprint:
    """Per-object read/write key sets for one program or function."""

    reads: dict[str, KeySet] = field(default_factory=dict)
    writes: dict[str, KeySet] = field(default_factory=dict)

    def read_set(self, obj: str) -> KeySet:
        return self.reads.setdefault(obj, KeySet())

    def write_set(self, obj: str) -> KeySet:
        return self.writes.setdefault(obj, KeySet())

    def merge(self, other: Footprint) -> None:
        for obj, keyset in other.reads.items():
            self.read_set(obj).merge(keyset)
        for obj, keyset in other.writes.items():
            self.write_set(obj).merge(keyset)

    @staticmethod
    def class_of(obj: str) -> str:
        """The footprint object class of a runtime object name."""
        return REGISTERS if obj.startswith("reg:") else obj

    def covers_read(self, obj: str, key: str) -> bool:
        keyset = self.reads.get(self.class_of(obj))
        return keyset is not None and keyset.covers(key)

    def covers_write(self, obj: str, key: str) -> bool:
        keyset = self.writes.get(self.class_of(obj))
        return keyset is not None and keyset.covers(key)

    def snapshot(self) -> tuple:
        return (
            tuple(sorted((obj, ks.snapshot()) for obj, ks in self.reads.items())),
            tuple(sorted((obj, ks.snapshot()) for obj, ks in self.writes.items())),
        )

    def to_json(self) -> dict:
        return {
            "reads": {obj: ks.to_json() for obj, ks in sorted(self.reads.items())},
            "writes": {obj: ks.to_json() for obj, ks in sorted(self.writes.items())},
        }


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding with a stable code and severity."""

    code: str
    severity: str
    message: str
    script: str
    function: str | None
    nid: int

    def format(self) -> str:
        where = self.script
        if self.function is not None:
            where += f":{self.function}()"
        return f"{self.code} {self.severity}: {self.message} [{where} nid {self.nid}]"

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "function": self.function,
            "nid": self.nid,
        }


class EffectReport:
    """The result of analyzing one weblang program.

    The program is referenced weakly (like the compile cache) so a
    cached report never keeps a collected program alive; per-node effect
    lookups are keyed by node identity and are only meaningful while the
    caller holds the program.
    """

    __slots__ = (
        "_program_ref",
        "script",
        "effects",
        "function_effects",
        "footprint",
        "function_footprints",
        "diagnostics",
        "_node_effects",
    )

    def __init__(
        self,
        program: Program,
        effects: frozenset,
        function_effects: dict[str, frozenset],
        footprint: Footprint,
        function_footprints: dict[str, Footprint],
        diagnostics: list[Diagnostic],
        node_effects: dict[int, frozenset],
    ):
        try:
            self._program_ref: Callable = weakref.ref(program)
        except TypeError:  # pragma: no cover - Program is weakref-able
            self._program_ref = (lambda _program=program: _program)
        self.script = program.name
        self.effects = effects
        self.function_effects = function_effects
        self.footprint = footprint
        self.function_footprints = function_footprints
        self.diagnostics = diagnostics
        self._node_effects = node_effects

    @property
    def program(self) -> Program | None:
        """The analyzed program, or None once it has been collected."""
        return self._program_ref()

    def effects_of(self, node: Node) -> frozenset:
        """The effect set of one AST node of the analyzed program."""
        try:
            return self._node_effects[id(node)]
        except KeyError:
            raise KeyError(
                f"node {type(node).__name__} (nid {getattr(node, 'nid', '?')}) "
                f"is not part of program {self.script!r}"
            ) from None

    def function_pure(self, name: str) -> bool:
        """True when function ``name`` can never yield an intent."""
        return not self.function_effects[name]

    @property
    def divergence_hazard(self) -> bool:
        """True when grouped (SIMD) re-execution of this script risks
        divergence: some control flow or state write depends on
        nondeterminism (W001/W003)."""
        return any(d.code in ("W001", "W003") for d in self.diagnostics)

    def severity_counts(self) -> dict[str, int]:
        counts = {name: 0 for name in SEVERITIES}
        for diag in self.diagnostics:
            counts[diag.severity] += 1
        return counts

    def max_severity(self) -> str | None:
        worst: str | None = None
        for diag in self.diagnostics:
            if worst is None or _SEVERITY_ORDER[diag.severity] > _SEVERITY_ORDER[worst]:
                worst = diag.severity
        return worst

    def to_json(self) -> dict:
        return {
            "script": self.script,
            "effects": sorted(self.effects),
            "functions": {
                name: sorted(eff)
                for name, eff in sorted(self.function_effects.items())
            },
            "footprint": self.footprint.to_json(),
            "divergence_hazard": self.divergence_hazard,
            "diagnostics": [
                d.to_json()
                for d in sorted(self.diagnostics, key=lambda d: (d.nid, d.code))
            ],
        }


# --------------------------------------------------------------------------
# The analyzer
# --------------------------------------------------------------------------


class _Scope:
    """One variable scope: the top level (``fn`` None, whose variables
    *are* the globals) or one function body."""

    __slots__ = ("fn", "stmts", "global_names", "vars")

    def __init__(self, fn: str | None, stmts: list, global_names: frozenset):
        self.fn = fn
        self.stmts = stmts
        self.global_names = global_names
        self.vars: dict[str, set] = {}


def _collect_global_names(stmts: list) -> frozenset:
    names: set[str] = set()
    stack = list(stmts)
    while stack:
        node = stack.pop()
        if type(node) is GlobalDecl:
            names.update(node.names)
        stack.extend(iter_children(node))
    return frozenset(names)


class _Analyzer:
    """Analyzes one program for one dialect (db/kv/session names)."""

    def __init__(self, program: Program, db_name: str, kv_name: str,
                 session_cookie: str):
        self.program = program
        self.db_name = db_name
        self.kv_name = kv_name
        self.session_cookie = session_cookie
        self.functions: dict[str, FuncDecl] = dict(program.functions)
        self.func_effects: dict[str, frozenset] = {}
        self.func_footprints: dict[str, Footprint] = {
            name: Footprint() for name in self.functions
        }
        self.top_footprint = Footprint()
        self.node_effects: dict[int, frozenset] = {}
        self.diagnostics: list[Diagnostic] = []
        self._diag_seen: set[tuple] = set()
        self._callees: dict[str | None, set[str]] = {}
        self.scopes: list[_Scope] = [
            _Scope(None, program.body, frozenset())
        ] + [
            _Scope(name, decl.body, _collect_global_names(decl.body))
            for name, decl in self.functions.items()
        ]
        #: Top-level variables are the globals; alias the main scope's
        #: taint map so function scopes see (and update) it directly.
        self.global_taints: dict[str, set] = self.scopes[0].vars

    # -- call resolution (mirrors Interpreter._eval_call dispatch) --------

    def _resolve(self, name: str) -> tuple[str, frozenset]:
        """``(kind, effects)`` where kind is one of ``input``,
        ``builtin``, ``user``, ``pure``, ``unknown`` — in the exact
        dispatch order of the runtimes (user functions shadow pure
        builtins but not intent-yielding ones)."""
        if name in REQUEST_INPUT_BUILTINS:
            return "input", EFFECTS_NONE
        if (
            name in STATE_BUILTINS
            or name in EXTERNAL_BUILTINS
            or name in NONDET_BUILTINS
        ):
            return "builtin", BUILTIN_EFFECTS[name]
        if name in self.functions:
            return "user", self.func_effects.get(name, EFFECTS_NONE)
        if name in PURE_BUILTINS:
            return "pure", EFFECTS_NONE
        return "unknown", EFFECTS_NONE

    # -- pass 1: function effect fixpoint over the call graph -------------

    def _local_scan(self, scope: _Scope) -> tuple[frozenset, set]:
        effects: set = set()
        callees: set = set()
        stack = list(scope.stmts)
        while stack:
            node = stack.pop()
            if type(node) is Call:
                kind, eff = self._resolve(node.name)
                if kind == "builtin":
                    effects |= eff
                elif kind == "user":
                    callees.add(node.name)
                elif kind == "unknown":
                    self._diag(
                        "W004", "error",
                        f"call to unknown function {node.name}()",
                        scope, node.nid,
                    )
            stack.extend(iter_children(node))
        return frozenset(effects), callees

    def _compute_function_effects(self) -> None:
        local: dict[str | None, frozenset] = {}
        for scope in self.scopes:
            local[scope.fn], self._callees[scope.fn] = self._local_scan(scope)
        self.func_effects = {
            name: local[name] for name in self.functions
        }
        changed = True
        while changed:
            changed = False
            for name in self.functions:
                merged = set(local[name])
                for callee in self._callees[name]:
                    merged |= self.func_effects[callee]
                new = frozenset(merged)
                if new != self.func_effects[name]:
                    self.func_effects[name] = new
                    changed = True

    # -- per-node effect sets ----------------------------------------------

    def _effects_of(self, node: Node) -> frozenset:
        memo = self.node_effects
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        eff: set = set()
        if type(node) is Call:
            kind, resolved = self._resolve(node.name)
            if kind in ("builtin", "user"):
                eff |= resolved
        for child in iter_children(node):
            eff |= self._effects_of(child)
        result = frozenset(eff)
        memo[id(node)] = result
        return result

    # -- pass 2: flow-insensitive variable taints -------------------------

    def _var_taint(self, scope: _Scope, name: str) -> frozenset:
        if scope.fn is None or name in scope.global_names:
            return frozenset(self.global_taints.get(name, EFFECTS_NONE))
        return frozenset(scope.vars.get(name, EFFECTS_NONE))

    def _add_var_taint(self, scope: _Scope, name: str, add: frozenset) -> bool:
        if not add:
            return False
        target = (
            self.global_taints
            if scope.fn is None or name in scope.global_names
            else scope.vars
        )
        current = target.setdefault(name, set())
        before = len(current)
        current |= add
        return len(current) != before

    def _expr_taint(self, node: Node, scope: _Scope) -> frozenset:
        taint: set = set()
        stack = [node]
        while stack:
            current = stack.pop()
            kind = type(current)
            if kind is Var:
                taint |= self._var_taint(scope, current.name)
            elif kind is Call:
                what, eff = self._resolve(current.name)
                if what in ("builtin", "user"):
                    taint |= eff & _TAINT_EFFECTS
            stack.extend(iter_children(current))
        return frozenset(taint)

    def _compute_taints(self) -> None:
        changed = True
        while changed:
            changed = False
            for scope in self.scopes:
                stack = list(scope.stmts)
                while stack:
                    node = stack.pop()
                    kind = type(node)
                    if kind is Assign or kind is IndexAssign:
                        add = self._expr_taint(node.expr, scope)
                        changed |= self._add_var_taint(scope, node.name, add)
                    elif kind is Foreach:
                        add = self._expr_taint(node.subject, scope)
                        changed |= self._add_var_taint(scope, node.val_var, add)
                        if node.key_var is not None:
                            changed |= self._add_var_taint(
                                scope, node.key_var, add
                            )
                    stack.extend(iter_children(node))

    # -- pass 3: diagnostics + local footprints ----------------------------

    def _diag(self, code: str, severity: str, message: str, scope: _Scope,
              nid: int) -> None:
        key = (code, scope.fn, nid)
        if key in self._diag_seen:
            return
        self._diag_seen.add(key)
        self.diagnostics.append(Diagnostic(
            code=code,
            severity=severity,
            message=message,
            script=self.program.name,
            function=scope.fn,
            nid=nid,
        ))

    def _scope_footprint(self, scope: _Scope) -> Footprint:
        if scope.fn is None:
            return self.top_footprint
        return self.func_footprints[scope.fn]

    def _hazard(self, cond: Node, scope: _Scope) -> bool:
        """True when ``cond`` may evaluate differently across requests
        that share a control-flow group (nondet reaches it directly or
        through a variable)."""
        taints = (self._effects_of(cond) | self._expr_taint(cond, scope))
        return EFFECT_NONDET in taints

    def _walk_block(self, stmts: list, scope: _Scope, divergent: bool) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, scope, divergent)

    def _walk_stmt(self, node: Node, scope: _Scope, divergent: bool) -> None:
        kind = type(node)
        if kind is If:
            any_hazard = False
            for cond, body in node.branches:
                if self._hazard(cond, scope):
                    any_hazard = True
                    self._diag(
                        "W001", "warning",
                        "branch condition may depend on nondeterminism; "
                        "grouped re-execution can diverge here",
                        scope, cond.nid,
                    )
                self._walk_expr(cond, scope, divergent)
                self._walk_block(body, scope, divergent or any_hazard)
            if node.else_body is not None:
                self._walk_block(node.else_body, scope, divergent or any_hazard)
        elif kind is While:
            hazard = self._hazard(node.cond, scope)
            if hazard:
                self._diag(
                    "W001", "warning",
                    "loop condition may depend on nondeterminism; "
                    "grouped re-execution can diverge here",
                    scope, node.cond.nid,
                )
            self._walk_expr(node.cond, scope, divergent)
            self._walk_block(node.body, scope, divergent or hazard)
        elif kind is Foreach:
            hazard = EFFECT_NONDET in (
                self._effects_of(node.subject)
                | self._expr_taint(node.subject, scope)
            )
            if hazard:
                self._diag(
                    "W001", "warning",
                    "foreach subject may depend on nondeterminism; "
                    "iteration count can diverge across a group",
                    scope, node.subject.nid,
                )
            self._walk_expr(node.subject, scope, divergent)
            self._walk_block(node.body, scope, divergent or hazard)
        else:
            for child in iter_children(node):
                self._walk_expr(child, scope, divergent)

    def _walk_expr(self, node: Node, scope: _Scope, divergent: bool) -> None:
        kind = type(node)
        if kind is Ternary:
            hazard = self._hazard(node.cond, scope)
            if hazard:
                self._diag(
                    "W001", "warning",
                    "ternary condition may depend on nondeterminism; "
                    "grouped re-execution can diverge here",
                    scope, node.cond.nid,
                )
            self._walk_expr(node.cond, scope, divergent)
            self._walk_expr(node.then, scope, divergent or hazard)
            self._walk_expr(node.other, scope, divergent or hazard)
            return
        if kind is BinOp and node.op in ("&&", "||"):
            hazard = self._hazard(node.left, scope)
            if hazard:
                self._diag(
                    "W001", "warning",
                    f"short-circuit '{node.op}' left operand may depend on "
                    "nondeterminism; evaluation of the right operand can "
                    "diverge across a group",
                    scope, node.left.nid,
                )
            self._walk_expr(node.left, scope, divergent)
            self._walk_expr(node.right, scope, divergent or hazard)
            return
        if kind is Call:
            self._visit_call(node, scope, divergent)
        for child in iter_children(node):
            self._walk_expr(child, scope, divergent)

    def _visit_call(self, node: Call, scope: _Scope, divergent: bool) -> None:
        name = node.name
        what, eff = self._resolve(name)
        if what == "user":
            if divergent and EFFECT_STATE_WRITE in eff:
                self._diag(
                    "W003", "warning",
                    f"call to {name}() writes shared state under a branch "
                    "that may diverge across a group",
                    scope, node.nid,
                )
            return
        if what != "builtin" or name not in STATE_BUILTINS:
            return
        may_write = self._record_state_call(node, scope)
        if divergent and may_write:
            self._diag(
                "W003", "warning",
                f"{name}() writes shared state under a branch that may "
                "diverge across a group",
                scope, node.nid,
            )

    # -- footprint extraction ----------------------------------------------

    def _const_value(self, node: Node | None) -> tuple[bool, object]:
        """Constant-fold ``node``: literals, ``.`` concatenation, unary
        minus, and pure builtins applied to constants."""
        if node is None:
            return False, None
        kind = type(node)
        if kind is Lit:
            return True, node.value
        if kind is BinOp and node.op == ".":
            ok_left, left = self._const_value(node.left)
            if not ok_left:
                return False, None
            ok_right, right = self._const_value(node.right)
            if not ok_right:
                return False, None
            try:
                return True, to_str(left) + to_str(right)
            except Exception:
                return False, None
        if kind is UnOp and node.op == "-":
            ok, value = self._const_value(node.operand)
            if (
                ok
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            ):
                return True, -value
            return False, None
        if (
            kind is Call
            and node.name in PURE_BUILTINS
            and node.name not in MUTATING_BUILTINS
            and node.name not in self.functions  # user functions shadow pure
        ):
            values = []
            for arg in node.args:
                ok, value = self._const_value(arg)
                if not ok:
                    return False, None
                values.append(value)
            try:
                return True, PURE_BUILTINS[node.name](*values)
            except Exception:
                return False, None
        return False, None

    def _key_taint_reason(self, node: Call, arg: Node | None,
                          scope: _Scope) -> str:
        taints = self._expr_taint(arg, scope) if arg is not None else frozenset()
        trail = ", ".join(sorted(taints)) if taints else "request/derived data"
        return f"{node.name}() at nid {node.nid} (taints: {trail})"

    def _check_key_arg(self, node: Call, arg: Node | None,
                       scope: _Scope) -> None:
        if arg is None:
            return
        if EFFECT_EXTERNAL in self._expr_taint(arg, scope):
            self._diag(
                "W002", "warning",
                f"{node.name}() state key derives from an external-call "
                "result; the audited key may not be reproducible",
                scope, node.nid,
            )

    def _record_state_call(self, node: Call, scope: _Scope) -> bool:
        """Record ``node``'s footprint contribution; returns whether the
        call may write shared state (refined for constant SQL)."""
        footprint = self._scope_footprint(scope)
        name = node.name
        args = node.args
        if name in ("db_query", "db_exec"):
            arg = args[0] if args else None
            self._check_key_arg(node, arg, scope)
            is_const, value = self._const_value(arg)
            if is_const:
                try:
                    reads, writes = sql_key_footprint(to_str(value))
                except Exception:
                    reason = (
                        f"{name}() at nid {node.nid} "
                        "(constant SQL failed to parse)"
                    )
                    footprint.read_set(self.db_name).widen(reason)
                    footprint.write_set(self.db_name).widen(reason)
                    return True
                for table in reads:
                    footprint.read_set(self.db_name).add_key(table)
                for table in writes:
                    footprint.write_set(self.db_name).add_key(table)
                return bool(writes)
            reason = self._key_taint_reason(node, arg, scope)
            footprint.read_set(self.db_name).widen(reason)
            footprint.write_set(self.db_name).widen(reason)
            self._diag(
                "W005", "info",
                f"{name}() statement text is computed at runtime; db "
                f"footprint widened to all tables ({reason})",
                scope, node.nid,
            )
            return True
        if name in ("db_begin", "db_commit", "db_rollback"):
            # Transaction control: touches the db object, no keys.
            footprint.write_set(self.db_name)
            return True
        if name in ("kv_get", "kv_set"):
            arg = args[0] if args else None
            self._check_key_arg(node, arg, scope)
            keyset = (
                footprint.read_set(self.kv_name)
                if name == "kv_get"
                else footprint.write_set(self.kv_name)
            )
            is_const, value = self._const_value(arg)
            if is_const:
                try:
                    keyset.add_key(to_str(value))
                except Exception:
                    keyset.widen(f"{name}() at nid {node.nid} (unfoldable key)")
            else:
                reason = self._key_taint_reason(node, arg, scope)
                keyset.widen(reason)
                self._diag(
                    "W005", "info",
                    f"{name}() key is computed at runtime; kv footprint "
                    f"widened ({reason})",
                    scope, node.nid,
                )
            return name == "kv_set"
        if name in ("reg_read", "reg_write"):
            arg = args[0] if args else None
            self._check_key_arg(node, arg, scope)
            keyset = (
                footprint.read_set(REGISTERS)
                if name == "reg_read"
                else footprint.write_set(REGISTERS)
            )
            is_const, value = self._const_value(arg)
            if is_const:
                try:
                    keyset.add_key(f"reg:g:{to_str(value)}")
                except Exception:
                    keyset.add_prefix(
                        "reg:g:",
                        f"{name}() at nid {node.nid} (unfoldable register)",
                    )
            else:
                reason = self._key_taint_reason(node, arg, scope)
                keyset.add_prefix("reg:g:", reason)
                self._diag(
                    "W005", "info",
                    f"{name}() register name is computed at runtime; "
                    f"footprint widened to the reg:g: family ({reason})",
                    scope, node.nid,
                )
            return name == "reg_write"
        if name in ("session_get", "session_put"):
            # The register name carries the request's session cookie —
            # per-request data by design, so the prefix is the exact
            # static answer, not a widening worth a diagnostic.
            keyset = (
                footprint.read_set(REGISTERS)
                if name == "session_get"
                else footprint.write_set(REGISTERS)
            )
            keyset.add_prefix("reg:sess:")
            return name == "session_put"
        return EFFECT_STATE_WRITE in BUILTIN_EFFECTS.get(name, EFFECTS_NONE)

    # -- driver ------------------------------------------------------------

    def analyze(self) -> EffectReport:
        self._compute_function_effects()
        self._compute_taints()
        for scope in self.scopes:
            self._walk_block(scope.stmts, scope, divergent=False)
        # Propagate callee footprints transitively into callers.
        changed = True
        while changed:
            changed = False
            for name in self.functions:
                footprint = self.func_footprints[name]
                before = footprint.snapshot()
                for callee in self._callees[name]:
                    footprint.merge(self.func_footprints[callee])
                changed = changed or footprint.snapshot() != before
        for callee in self._callees[None]:
            self.top_footprint.merge(self.func_footprints[callee])
        # Per-node effect sets for every node, function decls included.
        program_effects: set = set()
        for stmt in self.program.body:
            program_effects |= self._effects_of(stmt)
        for name, decl in self.functions.items():
            for stmt in decl.body:
                self._effects_of(stmt)
            self.node_effects[id(decl)] = self.func_effects[name]
        self.diagnostics.sort(key=lambda d: (d.nid, d.code))
        return EffectReport(
            program=self.program,
            effects=frozenset(program_effects),
            function_effects=dict(self.func_effects),
            footprint=self.top_footprint,
            function_footprints=dict(self.func_footprints),
            diagnostics=self.diagnostics,
            node_effects=self.node_effects,
        )


# --------------------------------------------------------------------------
# Entry points and cache
# --------------------------------------------------------------------------


def analyze_program(
    program: Program,
    db_name: str = "db:main",
    kv_name: str = "kv:apc",
    session_cookie: str = "sess",
) -> EffectReport:
    """Analyze ``program`` (uncached); see :func:`analysis_for`."""
    return _Analyzer(program, db_name, kv_name, session_cookie).analyze()


#: (id(program), dialect) -> (weakref-to-program, EffectReport), the same
#: identity-plus-dialect scheme as the compile cache.
_CACHE: dict[tuple, tuple[Callable, EffectReport]] = {}


def analysis_for(
    program: Program,
    db_name: str = "db:main",
    kv_name: str = "kv:apc",
    session_cookie: str = "sess",
) -> EffectReport:
    """The :class:`EffectReport` of ``program``, analyzed on first use
    and cached per process (keyed by program identity plus dialect)."""
    key = (id(program), db_name, kv_name, session_cookie)
    entry = _CACHE.get(key)
    if entry is not None and entry[0]() is program:
        return entry[1]
    report = analyze_program(program, db_name, kv_name, session_cookie)
    try:
        # The dict object is bound as a default so eviction still works
        # during interpreter shutdown (module globals may be cleared).
        ref: Callable = weakref.ref(
            program,
            lambda _ref, _key=key, _cache=_CACHE: _cache.pop(_key, None),
        )
    except TypeError:  # pragma: no cover - Program is weakref-able
        ref = (lambda _program=program: _program)
    _CACHE[key] = (ref, report)
    return report


def clear_cache() -> None:
    """Drop all cached reports (tests use this)."""
    _CACHE.clear()


def analyze_app(app: Application) -> dict[str, EffectReport]:
    """Analyze every script of an application with its dialect names."""
    return {
        name: analysis_for(
            app.script(name), app.db_name, app.kv_name, app.session_cookie
        )
        for name in sorted(app.scripts)
    }


def divergence_hazards(app: Application) -> frozenset:
    """Script names whose grouped re-execution risks divergence — the
    hint :func:`repro.core.reexec.plan_chunks` consults when
    ``plan_hints`` is enabled."""
    return frozenset(
        name
        for name, report in analyze_app(app).items()
        if report.divergence_hazard
    )
