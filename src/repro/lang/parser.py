"""Recursive-descent parser for weblang.

Produces a :class:`~repro.lang.ast.Program`.  Node ids are assigned in parse
order, so identical source always yields identical nids — which makes the
control-flow digest (§4.3) deterministic across server and verifier.
"""

from __future__ import annotations


from repro.common.errors import WeblangError
from repro.lang.ast import (
    ArrayLit,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Echo,
    ExprStmt,
    Foreach,
    FuncDecl,
    GlobalDecl,
    If,
    Index,
    IndexAssign,
    Lit,
    Node,
    Program,
    Return,
    Ternary,
    UnOp,
    Var,
    While,
)
from repro.lang.lexer import Token, tokenize

_COMPOUND_OPS = {"+=": "+", "-=": "-", ".=": ".", "*=": "*", "/=": "/"}


class _Parser:
    def __init__(self, tokens: list[Token], script_name: str):
        self.tokens = tokens
        self.script_name = script_name
        self.pos = 0
        self.next_nid = 1

    def nid(self) -> int:
        value = self.next_nid
        self.next_nid += 1
        return value

    # -- token helpers ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check_punct(self, symbol: str) -> bool:
        tok = self.peek()
        return tok.kind == "punct" and tok.value == symbol

    def accept_punct(self, symbol: str) -> bool:
        if self.check_punct(symbol):
            self.advance()
            return True
        return False

    def expect_punct(self, symbol: str) -> None:
        if not self.accept_punct(symbol):
            tok = self.peek()
            raise WeblangError(
                f"{self.script_name}: expected {symbol!r} at line {tok.line}, "
                f"got {tok.value!r}"
            )

    def check_kw(self, word: str) -> bool:
        tok = self.peek()
        return tok.kind == "kw" and tok.value == word

    def accept_kw(self, word: str) -> bool:
        if self.check_kw(word):
            self.advance()
            return True
        return False

    def expect_kw(self, word: str) -> None:
        if not self.accept_kw(word):
            tok = self.peek()
            raise WeblangError(
                f"{self.script_name}: expected {word!r} at line {tok.line}"
            )

    def expect_var(self) -> str:
        tok = self.peek()
        if tok.kind != "var":
            raise WeblangError(
                f"{self.script_name}: expected variable at line {tok.line}"
            )
        self.advance()
        return tok.value

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind != "ident":
            raise WeblangError(
                f"{self.script_name}: expected identifier at line {tok.line}"
            )
        self.advance()
        return tok.value

    # -- program ------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program(self.script_name)
        while self.peek().kind != "eof":
            if self.check_kw("function"):
                decl = self.parse_function()
                if decl.name in program.functions:
                    raise WeblangError(
                        f"{self.script_name}: duplicate function {decl.name}"
                    )
                program.functions[decl.name] = decl
            else:
                program.body.append(self.parse_statement())
        program.node_count = self.next_nid
        return program

    def parse_function(self) -> FuncDecl:
        node_id = self.nid()
        self.expect_kw("function")
        name = self.expect_ident()
        self.expect_punct("(")
        params: list[str] = []
        if not self.check_punct(")"):
            params.append(self.expect_var())
            while self.accept_punct(","):
                params.append(self.expect_var())
        self.expect_punct(")")
        body = self.parse_block()
        return FuncDecl(name, params, body, node_id)

    def parse_block(self) -> list[Node]:
        self.expect_punct("{")
        body: list[Node] = []
        while not self.check_punct("}"):
            if self.peek().kind == "eof":
                raise WeblangError(f"{self.script_name}: unterminated block")
            body.append(self.parse_statement())
        self.expect_punct("}")
        return body

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> Node:
        tok = self.peek()
        if tok.kind == "kw":
            if tok.value == "if":
                return self.parse_if()
            if tok.value == "while":
                return self.parse_while()
            if tok.value == "foreach":
                return self.parse_foreach()
            if tok.value == "echo":
                return self.parse_echo()
            if tok.value == "return":
                node_id = self.nid()
                self.advance()
                expr = None
                if not self.check_punct(";"):
                    expr = self.parse_expr()
                self.expect_punct(";")
                return Return(expr, node_id)
            if tok.value == "global":
                node_id = self.nid()
                self.advance()
                names = [self.expect_var()]
                while self.accept_punct(","):
                    names.append(self.expect_var())
                self.expect_punct(";")
                return GlobalDecl(names, node_id)
            if tok.value == "break":
                node_id = self.nid()
                self.advance()
                self.expect_punct(";")
                return Break(node_id)
            if tok.value == "continue":
                node_id = self.nid()
                self.advance()
                self.expect_punct(";")
                return Continue(node_id)
        if tok.kind == "var":
            return self.parse_assign_or_expr()
        # Bare expression statement (e.g. a call).
        node_id = self.nid()
        expr = self.parse_expr()
        self.expect_punct(";")
        return ExprStmt(expr, node_id)

    def parse_assign_or_expr(self) -> Node:
        node_id = self.nid()
        name_tok = self.advance()
        name = name_tok.value
        # Collect index path: $x['a']['b'] or $x[] (append, assignment only).
        path: list[Node | None] = []
        while self.check_punct("["):
            self.advance()
            if self.accept_punct("]"):
                path.append(None)
                break
            path.append(self.parse_expr())
            self.expect_punct("]")
        tok = self.peek()
        if tok.kind == "punct" and tok.value in ("++", "--"):
            # Sugar: $x++; === $x = $x + 1;
            self.advance()
            self.expect_punct(";")
            op = "+" if tok.value == "++" else "-"
            if path:
                base: Node = Var(name, self.nid())
                for index_expr in path:
                    if index_expr is None:
                        raise WeblangError(
                            f"{self.script_name}: cannot ++ an append slot"
                        )
                    base = Index(base, index_expr, self.nid())
                incremented = BinOp(op, base, Lit(1, self.nid()), self.nid())
                return IndexAssign(name, path, incremented, "", node_id)
            incremented = BinOp(
                op, Var(name, self.nid()), Lit(1, self.nid()), self.nid()
            )
            return Assign(name, incremented, "", node_id)
        if tok.kind == "punct" and (
            tok.value == "=" or tok.value in _COMPOUND_OPS
        ):
            self.advance()
            op = "" if tok.value == "=" else _COMPOUND_OPS[tok.value]
            expr = self.parse_expr()
            self.expect_punct(";")
            if path:
                return IndexAssign(name, path, expr, op, node_id)
            return Assign(name, expr, op, node_id)
        # Not an assignment: re-parse as expression statement.  Rebuild the
        # expression from what we consumed (variable + index path).
        expr2: Node = Var(name, self.nid())
        for index_expr in path:
            if index_expr is None:
                raise WeblangError(
                    f"{self.script_name}: '[]' outside assignment at line "
                    f"{tok.line}"
                )
            expr2 = Index(expr2, index_expr, self.nid())
        expr2 = self.parse_expr_continued(expr2)
        self.expect_punct(";")
        return ExprStmt(expr2, node_id)

    def parse_if(self) -> If:
        node_id = self.nid()
        self.expect_kw("if")
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        branches: list[tuple[Node, list[Node]]] = [(cond, self.parse_block())]
        else_body: list[Node] | None = None
        while True:
            if self.accept_kw("elseif"):
                self.expect_punct("(")
                branch_cond = self.parse_expr()
                self.expect_punct(")")
                branches.append((branch_cond, self.parse_block()))
                continue
            if self.accept_kw("else"):
                if self.check_kw("if"):
                    self.advance()
                    self.expect_punct("(")
                    branch_cond = self.parse_expr()
                    self.expect_punct(")")
                    branches.append((branch_cond, self.parse_block()))
                    continue
                else_body = self.parse_block()
            break
        return If(branches, else_body, node_id)

    def parse_while(self) -> While:
        node_id = self.nid()
        self.expect_kw("while")
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        return While(cond, self.parse_block(), node_id)

    def parse_foreach(self) -> Foreach:
        node_id = self.nid()
        self.expect_kw("foreach")
        self.expect_punct("(")
        subject = self.parse_expr()
        self.expect_kw("as")
        first = self.expect_var()
        key_var: str | None = None
        val_var = first
        if self.accept_punct("=>"):
            key_var = first
            val_var = self.expect_var()
        self.expect_punct(")")
        return Foreach(subject, key_var, val_var, self.parse_block(), node_id)

    def parse_echo(self) -> Echo:
        node_id = self.nid()
        self.expect_kw("echo")
        exprs = [self.parse_expr()]
        while self.accept_punct(","):
            exprs.append(self.parse_expr())
        self.expect_punct(";")
        return Echo(exprs, node_id)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> Node:
        return self.parse_ternary()

    def parse_expr_continued(self, left: Node) -> Node:
        """Continue parsing an expression whose leftmost primary was already
        consumed (used by parse_assign_or_expr)."""
        left = self.parse_postfix_continued(left)
        left = self.parse_binary_continued(left)
        return self.parse_ternary_continued(left)

    def parse_ternary(self) -> Node:
        cond = self.parse_or()
        return self.parse_ternary_continued(cond)

    def parse_ternary_continued(self, cond: Node) -> Node:
        if self.accept_punct("?"):
            node_id = self.nid()
            then = self.parse_expr()
            self.expect_punct(":")
            other = self.parse_expr()
            return Ternary(cond, then, other, node_id)
        return cond

    _BIN_LEVELS = (
        ("||",),
        ("&&",),
        ("==", "!=", "===", "!=="),
        ("<", "<=", ">", ">="),
        ("+", "-", "."),
        ("*", "/", "%"),
    )

    def parse_or(self) -> Node:
        return self.parse_binary(0)

    def parse_binary(self, level: int) -> Node:
        if level >= len(self._BIN_LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = self._BIN_LEVELS[level]
        while True:
            tok = self.peek()
            if tok.kind == "punct" and tok.value in ops:
                self.advance()
                right = self.parse_binary(level + 1)
                left = BinOp(tok.value, left, right, self.nid())
            else:
                return left

    def parse_binary_continued(self, left: Node) -> Node:
        """Binary-operator climb with ``left`` already parsed (any level)."""
        while True:
            tok = self.peek()
            matched = False
            for level, ops in enumerate(self._BIN_LEVELS):
                if tok.kind == "punct" and tok.value in ops:
                    self.advance()
                    right = self.parse_binary(level + 1)
                    left = BinOp(tok.value, left, right, self.nid())
                    matched = True
                    break
            if not matched:
                return left

    def parse_unary(self) -> Node:
        tok = self.peek()
        if tok.kind == "punct" and tok.value == "!":
            self.advance()
            return UnOp("!", self.parse_unary(), self.nid())
        if tok.kind == "punct" and tok.value == "-":
            self.advance()
            return UnOp("-", self.parse_unary(), self.nid())
        return self.parse_postfix()

    def parse_postfix(self) -> Node:
        return self.parse_postfix_continued(self.parse_primary())

    def parse_postfix_continued(self, base: Node) -> Node:
        while self.check_punct("["):
            self.advance()
            index = self.parse_expr()
            self.expect_punct("]")
            base = Index(base, index, self.nid())
        return base

    def parse_primary(self) -> Node:
        tok = self.peek()
        if tok.kind in ("int", "float", "str"):
            self.advance()
            return Lit(tok.value, self.nid())
        if tok.kind == "kw" and tok.value in ("true", "false", "null"):
            self.advance()
            value = {"true": True, "false": False, "null": None}[tok.value]
            return Lit(value, self.nid())
        if tok.kind == "var":
            self.advance()
            return Var(tok.value, self.nid())
        if tok.kind == "ident":
            name = tok.value
            self.advance()
            self.expect_punct("(")
            args: list[Node] = []
            if not self.check_punct(")"):
                args.append(self.parse_expr())
                while self.accept_punct(","):
                    args.append(self.parse_expr())
            self.expect_punct(")")
            return Call(name, args, self.nid())
        if self.accept_punct("("):
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if self.accept_punct("["):
            node_id = self.nid()
            items: list[tuple[Node | None, Node]] = []
            if not self.check_punct("]"):
                items.append(self.parse_array_item())
                while self.accept_punct(","):
                    if self.check_punct("]"):
                        break
                    items.append(self.parse_array_item())
            self.expect_punct("]")
            return ArrayLit(items, node_id)
        raise WeblangError(
            f"{self.script_name}: unexpected token {tok.value!r} at line "
            f"{tok.line}"
        )

    def parse_array_item(self) -> tuple[Node | None, Node]:
        first = self.parse_expr()
        if self.accept_punct("=>"):
            return (first, self.parse_expr())
        return (None, first)


def parse_program(source: str, script_name: str = "<script>") -> Program:
    """Compile weblang source text into a :class:`Program`."""
    return _Parser(tokenize(source), script_name).parse_program()
