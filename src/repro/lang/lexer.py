"""Tokenizer for weblang.

PHP-flavored: variables start with ``$``; statements end with ``;``; both
``//`` and ``#`` line comments and ``/* */`` block comments are accepted.
String literals use single or double quotes with backslash escapes; there
is no variable interpolation (applications use the ``.`` concat operator).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import WeblangError

KEYWORDS = {
    "if", "elseif", "else", "while", "foreach", "as", "echo", "function",
    "return", "global", "break", "continue", "true", "false", "null",
}

# Order matters: longest first.
_PUNCT3 = ("===", "!==")
_PUNCT2 = ("==", "!=", "<=", ">=", "&&", "||", "=>", "+=", "-=", ".=", "++",
           "--", "*=", "/=")
_PUNCT1 = ("=", "<", ">", "+", "-", "*", "/", "%", ".", "(", ")", "[", "]",
           "{", "}", ",", ";", "?", ":", "!", "$")

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'",
            '"': '"', "0": "\0"}


@dataclass(frozen=True)
class Token:
    kind: str  # "var" | "ident" | "kw" | "int" | "float" | "str" | "punct" | "eof"
    value: object
    line: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i) or ch == "#":
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise WeblangError(f"unterminated block comment at line {line}")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch == "$":
            j = i + 1
            if j >= n or not (source[j].isalpha() or source[j] == "_"):
                raise WeblangError(f"bad variable name at line {line}")
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token("var", source[i + 1 : j], line))
            i = j
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            parts: list[str] = []
            while j < n and source[j] != quote:
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    parts.append(_ESCAPES.get(esc, "\\" + esc))
                    j += 2
                    continue
                if source[j] == "\n":
                    line += 1
                parts.append(source[j])
                j += 1
            if j >= n:
                raise WeblangError(f"unterminated string at line {line}")
            tokens.append(Token("str", "".join(parts), line))
            i = j + 1
            continue
        digits = "0123456789"
        if ch in digits or (ch == "." and i + 1 < n and source[i + 1] in digits):
            j = i
            is_float = False
            while j < n and (source[j] in digits or source[j] == "."):
                if source[j] == ".":
                    # ".." would be concat after int; only one dot in number,
                    # and only when followed by a digit.
                    if is_float or j + 1 >= n or source[j + 1] not in digits:
                        break
                    is_float = True
                j += 1
            lexeme = source[i:j]
            if is_float:
                tokens.append(Token("float", float(lexeme), line))
            else:
                tokens.append(Token("int", int(lexeme), line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            if word in KEYWORDS:
                tokens.append(Token("kw", word, line))
            else:
                tokens.append(Token("ident", word, line))
            i = j
            continue
        matched = False
        for group in (_PUNCT3, _PUNCT2):
            for punct in group:
                if source.startswith(punct, i):
                    tokens.append(Token("punct", punct, line))
                    i += len(punct)
                    matched = True
                    break
            if matched:
                break
        if matched:
            continue
        if ch in _PUNCT1:
            tokens.append(Token("punct", ch, line))
            i += 1
            continue
        raise WeblangError(f"unexpected character {ch!r} at line {line}")
    tokens.append(Token("eof", None, line))
    return tokens
