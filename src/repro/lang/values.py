"""Runtime values and coercions shared by both interpreters.

Value universe: ``None``, ``bool``, ``int``, ``float``, ``str``, and
:class:`PhpArray` (PHP's single ordered-map array type, serving as both
list and dict).  Coercion rules follow PHP closely enough for web-app code
while staying deterministic and identical between the plain and accelerated
interpreters — that identity is what Lemma 8 / "difference (ii)" of the
paper's proof requires of an implementation.

Arrays follow PHP's value semantics: both interpreters copy an array when
it flows out of a variable or cell into a new storage location (assignment,
argument passing, return, foreach binding, array-literal cells).  Aliasing
across variables is therefore impossible, which is also what makes per-slot
multivalue expansion sound in the accelerated interpreter.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.common.errors import WeblangError

Key = int | str


class PhpArray:
    """PHP-style array: one insertion-ordered map with int/str keys.

    ``append`` uses the next-integer-index rule: the key is one more than
    the largest integer key ever inserted (PHP semantics).
    """

    __slots__ = ("data", "_next_index")

    def __init__(self) -> None:
        self.data: dict[Key, object] = {}
        self._next_index = 0

    # -- construction -------------------------------------------------------

    @staticmethod
    def from_list(items: list[object]) -> PhpArray:
        array = PhpArray()
        for item in items:
            array.append(item)
        return array

    @staticmethod
    def from_dict(mapping: dict[Key, object]) -> PhpArray:
        array = PhpArray()
        for key, value in mapping.items():
            array.set(key, value)
        return array

    # -- mutation --------------------------------------------------------------

    @staticmethod
    def _norm_key(key: object) -> Key:
        """PHP normalizes bool/float/numeric-string keys to int."""
        if isinstance(key, bool):
            return int(key)
        if isinstance(key, int):
            return key
        if isinstance(key, float):
            return int(key)
        if isinstance(key, str):
            # Canonical integer strings become int keys, as in PHP.
            body = key[1:] if key.startswith("-") else key
            if body and all(ch in "0123456789" for ch in body):
                as_int = int(key)
                if str(as_int) == key:
                    return as_int
            return key
        if key is None:
            return ""
        raise WeblangError(f"illegal array key {key!r}")

    def set(self, key: object, value: object) -> None:
        norm = self._norm_key(key)
        self.data[norm] = value
        if isinstance(norm, int) and norm >= self._next_index:
            self._next_index = norm + 1

    def append(self, value: object) -> None:
        self.data[self._next_index] = value
        self._next_index += 1

    def get(self, key: object) -> object:
        return self.data.get(self._norm_key(key))

    def has(self, key: object) -> bool:
        return self._norm_key(key) in self.data

    def remove(self, key: object) -> None:
        self.data.pop(self._norm_key(key), None)

    # -- views -------------------------------------------------------------

    def keys(self) -> list[Key]:
        return list(self.data.keys())

    def values(self) -> list[object]:
        return list(self.data.values())

    def items(self) -> list[tuple[Key, object]]:
        return list(self.data.items())

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[Key]:
        return iter(self.data)

    def copy(self) -> PhpArray:
        twin = PhpArray()
        twin.data = dict(self.data)
        twin._next_index = self._next_index
        return twin

    def deep_copy(self) -> PhpArray:
        twin = PhpArray()
        twin._next_index = self._next_index
        for key, value in self.data.items():
            if isinstance(value, PhpArray):
                twin.data[key] = value.deep_copy()
            else:
                twin.data[key] = value
        return twin

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhpArray):
            return NotImplemented
        return self.data == other.data

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("PhpArray is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.data.items())
        return f"PhpArray({{{inner}}})"


# --------------------------------------------------------------------------
# Coercions
# --------------------------------------------------------------------------


def truthy(value: object) -> bool:
    """PHP truthiness: "", "0", 0, 0.0, null, [] are false."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    if isinstance(value, float):
        return value != 0.0
    if isinstance(value, str):
        return value not in ("", "0")
    if isinstance(value, PhpArray):
        return len(value) > 0
    raise WeblangError(f"cannot test truthiness of {type(value).__name__}")


def to_str(value: object) -> str:
    """String conversion, used by echo and the ``.`` operator."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "1" if value else ""
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, str):
        return value
    if isinstance(value, PhpArray):
        return "Array"
    raise WeblangError(f"cannot convert {type(value).__name__} to string")


def to_int(value: object) -> int:
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    if isinstance(value, str):
        stripped = value.strip()
        sign = 1
        if stripped.startswith(("-", "+")):
            sign = -1 if stripped[0] == "-" else 1
            stripped = stripped[1:]
        digits = ""
        for ch in stripped:
            if ch in "0123456789":
                digits += ch
            else:
                break
        return sign * int(digits) if digits else 0
    if isinstance(value, PhpArray):
        return 1 if len(value) else 0
    raise WeblangError(f"cannot convert {type(value).__name__} to int")


def to_float(value: object) -> float:
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        stripped = value.strip()
        out = ""
        seen_dot = False
        for index, ch in enumerate(stripped):
            if ch in "0123456789":
                out += ch
            elif ch == "." and not seen_dot:
                seen_dot = True
                out += ch
            elif ch in "+-" and index == 0:
                out += ch
            else:
                break
        try:
            return float(out) if out not in ("", "+", "-", ".") else 0.0
        except ValueError:  # pragma: no cover - filtered above
            return 0.0
    return float(to_int(value))


def _numeric(value: object) -> int | float | None:
    """Return the numeric interpretation if the value is number-like."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    return None


def _numeric_string(value: object) -> int | float | None:
    """The numeric value of a fully-numeric string, else None."""
    if not isinstance(value, str):
        return None
    stripped = value.strip()
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        return None


def arith(op: str, left: object, right: object) -> object:
    """Arithmetic with PHP-ish coercion (strings coerce to numbers)."""
    lnum = _numeric(left)
    rnum = _numeric(right)
    if lnum is None:
        lnum = to_float(left) if _looks_float(left) else to_int(left)
    if rnum is None:
        rnum = to_float(right) if _looks_float(right) else to_int(right)
    if op == "+":
        return lnum + rnum
    if op == "-":
        return lnum - rnum
    if op == "*":
        return lnum * rnum
    if op == "/":
        if rnum == 0:
            raise WeblangError("division by zero")
        result = lnum / rnum
        if isinstance(lnum, int) and isinstance(rnum, int) and lnum % rnum == 0:
            return lnum // rnum
        return result
    if op == "%":
        if to_int(rnum) == 0:
            raise WeblangError("modulo by zero")
        return to_int(lnum) % to_int(rnum)
    raise WeblangError(f"unknown arithmetic operator {op!r}")


def _looks_float(value: object) -> bool:
    return isinstance(value, str) and "." in value


def loose_eq(left: object, right: object) -> bool:
    """The ``==`` operator.

    Simplified PHP juggling: numbers compare numerically (int vs float ok);
    bools compare by truthiness against anything; otherwise same-type value
    equality.  Deterministic, and identical across both interpreters.
    """
    if isinstance(left, bool) or isinstance(right, bool):
        return truthy(left) == truthy(right)
    lnum = _numeric(left)
    rnum = _numeric(right)
    if lnum is not None and rnum is not None:
        return lnum == rnum
    # PHP juggling: a number against a numeric string compares numerically
    # ("5" == 5 is true; "5a" == 5 is not — PHP 8 semantics).
    if lnum is not None and rnum is None:
        rstr = _numeric_string(right)
        return rstr is not None and lnum == rstr
    if rnum is not None and lnum is None:
        lstr = _numeric_string(left)
        return lstr is not None and lstr == rnum
    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, PhpArray) and isinstance(right, PhpArray):
        return left == right
    if type(left) is type(right):
        return left == right
    return False


def strict_eq(left: object, right: object) -> bool:
    """The ``===`` operator: same type and same value (no juggling)."""
    if type(left) is not type(right):
        return False
    if isinstance(left, PhpArray):
        return left == right
    return left == right


def compare(op: str, left: object, right: object) -> bool:
    """Relational comparison (< <= > >=)."""
    lnum = _numeric(left)
    rnum = _numeric(right)
    if lnum is not None and rnum is not None:
        pair = (lnum, rnum)
    elif isinstance(left, str) and isinstance(right, str):
        pair = (left, right)
    else:
        pair = (to_float(left), to_float(right))
    lval, rval = pair
    if op == "<":
        return lval < rval
    if op == "<=":
        return lval <= rval
    if op == ">":
        return lval > rval
    if op == ">=":
        return lval >= rval
    raise WeblangError(f"unknown comparison {op!r}")
