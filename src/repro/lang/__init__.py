"""Weblang: the PHP-analog web application language (Section 4.2 substrate).

The paper's server is a PHP application; its audit system instruments the
PHP runtime.  Weblang is a small PHP-flavored language with exactly the
features the paper's machinery exercises:

* scripts invoked per request, with request inputs materialized as
  ``param()`` / ``post_param()`` / ``cookie()`` (the ``$_GET``/``$_POST``/
  ``$_COOKIE`` analogs);
* PHP-style arrays (one ordered map serving as both list and dict);
* state-operation built-ins — ``db_query``, ``db_begin``/``db_commit``/
  ``db_rollback``, ``kv_get``/``kv_set``, ``session_get``/``session_put`` —
  which the interpreter *yields* to its driver (the online executor, or the
  audit-time re-execution engines) rather than performing itself;
* non-deterministic built-ins (``time``, ``rand``, ``uniqid``) which are
  likewise yielded, so the server can record them and the verifier can
  replay them (§4.6);
* an incremental control-flow digest updated at every branch (§4.3).

The plain interpreter here is the analog of unmodified PHP plus the
server-side recording hooks; the SIMD-on-demand interpreter (acc-PHP) lives
in :mod:`repro.accel`.
"""

from repro.lang.parser import parse_program
from repro.lang.interp import Interpreter, StateOpIntent, NondetIntent
from repro.lang.values import PhpArray

__all__ = [
    "Interpreter",
    "NondetIntent",
    "PhpArray",
    "StateOpIntent",
    "parse_program",
]
