"""AST node types for weblang.

Every node carries a small integer ``nid`` assigned by the parser; branch
nodes feed their nid into the control-flow digest (§4.3), so nids must be
stable for a given source text — the parser numbers nodes in parse order.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Node:
    __slots__ = ()


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Lit(Node):
    value: object
    nid: int = 0


@dataclass
class Var(Node):
    name: str
    nid: int = 0


@dataclass
class ArrayLit(Node):
    """``[v1, 'k' => v2, ...]``; key None means auto-index append."""

    items: list[tuple[Node | None, Node]]
    nid: int = 0


@dataclass
class Index(Node):
    """``base[index]`` read access."""

    base: Node
    index: Node
    nid: int = 0


@dataclass
class BinOp(Node):
    """Arithmetic (+ - * / %), concat (.), comparisons (== != < <= > >=),
    and short-circuit logicals (&& ||)."""

    op: str
    left: Node
    right: Node
    nid: int = 0


@dataclass
class UnOp(Node):
    op: str  # "!" | "-"
    operand: Node
    nid: int = 0


@dataclass
class Ternary(Node):
    cond: Node
    then: Node
    other: Node
    nid: int = 0


@dataclass
class Call(Node):
    """Built-in or user-defined function call."""

    name: str
    args: list[Node]
    nid: int = 0


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class ExprStmt(Node):
    expr: Node
    nid: int = 0


@dataclass
class Assign(Node):
    """``$name = expr`` or compound (``op`` is "", "+", "-", ".")."""

    name: str
    expr: Node
    op: str = ""
    nid: int = 0


@dataclass
class IndexAssign(Node):
    """``$base[...][idx] = expr``; ``index`` None means append (``$a[]``).

    ``path`` is the chain of index expressions applied to the variable, the
    last of which may be None.
    """

    name: str
    path: list[Node | None]
    expr: Node
    op: str = ""
    nid: int = 0


@dataclass
class Echo(Node):
    exprs: list[Node]
    nid: int = 0


@dataclass
class If(Node):
    """``if/elseif*/else``: list of (condition, body) plus optional else."""

    branches: list[tuple[Node, list[Node]]]
    else_body: list[Node] | None
    nid: int = 0


@dataclass
class While(Node):
    cond: Node
    body: list[Node]
    nid: int = 0


@dataclass
class Foreach(Node):
    subject: Node
    key_var: str | None
    val_var: str
    body: list[Node]
    nid: int = 0


@dataclass
class FuncDecl(Node):
    name: str
    params: list[str]
    body: list[Node]
    nid: int = 0


@dataclass
class Return(Node):
    expr: Node | None
    nid: int = 0


@dataclass
class GlobalDecl(Node):
    names: list[str]
    nid: int = 0


@dataclass
class Break(Node):
    nid: int = 0


@dataclass
class Continue(Node):
    nid: int = 0


@dataclass
class Program(Node):
    """One script: function declarations plus top-level statements."""

    name: str
    functions: dict = field(default_factory=dict)  # name -> FuncDecl
    body: list[Node] = field(default_factory=list)
    nid: int = 0
    node_count: int = 0
