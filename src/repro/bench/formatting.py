"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    rows: Sequence[dict[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[str(col) for col in columns]]
    for row in rows:
        table.append([_fmt(row.get(col)) for col in columns])
    widths = [
        max(len(line[index]) for line in table)
        for index in range(len(columns))
    ]
    out: list[str] = []
    header = "  ".join(
        cell.ljust(width) for cell, width in zip(table[0], widths)
    )
    out.append(header)
    out.append("  ".join("-" * width for width in widths))
    for line in table[1:]:
        out.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
    return "\n".join(out)
