"""Benchmark harness: online phase + audit phase with phase accounting.

Used by every ``benchmarks/bench_*.py`` target and by the examples.  The
harness runs a workload through the honest executor twice (with and
without recording, to price the server's overhead), runs the SSCO audit
and the simple-re-execution baseline, and assembles the rows the paper's
tables and figures report.
"""

from repro.bench.harness import (
    BenchRun,
    run_audit_phase,
    run_online_phase,
    run_workload_pipeline,
)
from repro.bench.metrics import figure8_row, figure9_decomposition
from repro.bench.formatting import render_table

__all__ = [
    "BenchRun",
    "figure8_row",
    "figure9_decomposition",
    "render_table",
    "run_audit_phase",
    "run_online_phase",
    "run_workload_pipeline",
]
