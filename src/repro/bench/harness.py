"""Online + audit pipeline used by the benchmark targets."""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.auditor import Auditor
from repro.core.config import AuditConfig
from repro.core.ooo import OooResult, simple_audit
from repro.core.reexec import DEFAULT_MAX_GROUP, default_backend
from repro.core.verifier import AuditResult
from repro.server.executor import ExecutionResult, Executor
from repro.server.nondet import NondetSource
from repro.server.scheduler import RandomScheduler
from repro.workloads.wiki import Workload


@dataclass
class BenchRun:
    """Everything one workload pipeline produced."""

    label: str
    execution: ExecutionResult
    legacy_seconds: float  # serving without recording (the baseline server)
    audit: AuditResult
    baseline_audit: OooResult | None = None
    extras: dict[str, object] = field(default_factory=dict)


def run_online_phase(
    workload: Workload,
    seed: int = 1,
    concurrency: int = 8,
    record: bool = True,
    epoch_size: int = 0,
) -> ExecutionResult:
    """Serve the workload with a seeded-random scheduler."""
    executor = Executor(
        workload.app,
        scheduler=RandomScheduler(seed),
        max_concurrency=concurrency,
        nondet=NondetSource(seed=seed),
        record=record,
        epoch_size=epoch_size,
    )
    return executor.serve(workload.requests)


def measure_legacy_seconds(
    workload: Workload, seed: int = 1, concurrency: int = 8
) -> float:
    """CPU seconds to serve the workload *without* recording: the paper's
    legacy-server baseline (§5.1)."""
    started = _time.perf_counter()
    run_online_phase(workload, seed=seed, concurrency=concurrency,
                     record=False)
    return _time.perf_counter() - started


def measure_serve_seconds(
    workload: Workload,
    seed: int = 1,
    concurrency: int = 8,
    repeats: int = 2,
) -> tuple[float, float]:
    """(legacy_seconds, recorded_seconds), measured fairly.

    Serving the same workload back to back warms allocator and parser
    caches, so a naive "legacy first, recorded second" comparison inverts
    the overhead.  We warm up once, then interleave the two modes and
    take each mode's best time.
    """
    sample = Workload(workload.app, workload.requests[: max(
        1, len(workload.requests) // 10)], workload.label)
    run_online_phase(sample, seed=seed, concurrency=concurrency,
                     record=False)  # warmup
    legacy = recorded = float("inf")
    for _ in range(repeats):
        started = _time.perf_counter()
        run_online_phase(workload, seed=seed, concurrency=concurrency,
                         record=False)
        legacy = min(legacy, _time.perf_counter() - started)
        started = _time.perf_counter()
        run_online_phase(workload, seed=seed, concurrency=concurrency,
                         record=True)
        recorded = min(recorded, _time.perf_counter() - started)
    return legacy, recorded


def run_audit_phase(
    workload: Workload,
    execution: ExecutionResult,
    dedup: bool = True,
    collapse: bool = True,
    strict: bool = True,
    run_baseline: bool = True,
    strict_registers: bool = False,
    max_group_size: int = DEFAULT_MAX_GROUP,
    workers: int = 1,
    epoch_size: int = 0,
    epoch_cuts: Sequence[int] | None = None,
    backend: str | None = None,
    config: AuditConfig | None = None,
) -> BenchRun:
    """Audit ``execution`` and package the outcome for the benchmarks.

    A validated :class:`AuditConfig` supersedes the individual keyword
    knobs when given (the CLI path); either way the audit itself is the
    one-shot :class:`Auditor` service call.
    """
    if config is None:
        config = AuditConfig(
            strict=strict,
            dedup=dedup,
            collapse=collapse,
            strict_registers=strict_registers,
            max_group_size=max_group_size,
            workers=max(1, workers),
            epoch_size=epoch_size,
            epoch_cuts=tuple(epoch_cuts) if epoch_cuts else None,
            backend=backend if backend is not None else default_backend(),
        )
    audit = Auditor(workload.app, config).audit(
        execution.trace, execution.reports, execution.initial_state
    )
    baseline = None
    if run_baseline:
        baseline = simple_audit(
            workload.app,
            execution.trace,
            execution.reports,
            execution.initial_state,
        )
    run = BenchRun(
        label=workload.label,
        execution=execution,
        legacy_seconds=0.0,
        audit=audit,
        baseline_audit=baseline,
    )
    if "shards" in audit.stats:
        run.extras["shards"] = audit.stats["shards"]
    return run


def run_workload_pipeline(
    workload: Workload,
    seed: int = 1,
    concurrency: int = 8,
    dedup: bool = True,
    collapse: bool = True,
    run_baseline: bool = True,
    measure_legacy: bool = True,
    workers: int = 1,
    epoch_size: int = 0,
) -> BenchRun:
    """Full pipeline: legacy serve, recorded serve, audit, baseline audit."""
    legacy_seconds = (
        measure_legacy_seconds(workload, seed=seed, concurrency=concurrency)
        if measure_legacy
        else 0.0
    )
    execution = run_online_phase(workload, seed=seed,
                                 concurrency=concurrency,
                                 epoch_size=epoch_size)
    run = run_audit_phase(
        workload, execution,
        dedup=dedup, collapse=collapse, run_baseline=run_baseline,
        workers=workers,
        epoch_cuts=execution.epoch_marks or None,
    )
    run.legacy_seconds = legacy_seconds
    return run
