"""Metric extraction: the rows of Figure 8 and the bars of Figure 9."""

from __future__ import annotations


from repro.bench.harness import BenchRun


def figure8_row(run: BenchRun) -> dict[str, object]:
    """One row of Figure 8's left table.

    * **audit speedup**: baseline audit seconds / SSCO audit seconds.  The
      paper's baseline is the legacy serving cost (pessimistic for
      OROCHI); we report both that ratio and the measured simple-re-exec
      audit ratio.
    * **server CPU overhead**: (recorded serve − legacy serve) / legacy.
    * **report sizes**: per-request bytes, OROCHI vs the nondet-only
      baseline, plus the ratio of (trace+reports) sizes.
    * **DB overhead**: versioned store bytes / plain final-DB bytes
      ("temp"), and 1× permanent (only the latest state is kept, §5.1).
    """
    execution = run.execution
    audit = run.audit
    requests = max(1, len(execution.trace.request_ids()))
    trace_bytes = execution.trace.size_bytes()
    report_bytes = execution.reports.total_size_bytes()
    baseline_report_bytes = execution.reports.baseline_size_bytes()

    audit_seconds = max(1e-9, audit.phases.get("total", 0.0))
    baseline_seconds = (
        run.baseline_audit.seconds if run.baseline_audit else 0.0
    )
    legacy = run.legacy_seconds
    recorded = run.extras.get("recorded_seconds", execution.server_seconds)

    versioned_bytes = audit.stats.get("versioned_db_bytes", 0)
    final_db_bytes = 0
    if execution.final_state is not None:
        final_db_bytes = execution.final_state.db_engine.size_bytes()

    return {
        "app": run.label,
        "requests": requests,
        "audit_speedup_vs_simple_reexec": baseline_seconds / audit_seconds
        if baseline_seconds
        else float("nan"),
        "audit_speedup_vs_legacy_serve": legacy / audit_seconds
        if legacy
        else float("nan"),
        "server_cpu_overhead_pct": 100.0 * (recorded - legacy) / legacy
        if legacy
        else float("nan"),
        "avg_request_bytes": trace_bytes / requests,
        "baseline_report_bytes_per_req": baseline_report_bytes / requests,
        "orochi_report_bytes_per_req": report_bytes / requests,
        "report_overhead_pct": 100.0
        * (trace_bytes + report_bytes)
        / max(1, trace_bytes + baseline_report_bytes)
        - 100.0,
        "db_temp_overhead_x": versioned_bytes / final_db_bytes
        if final_db_bytes
        else float("nan"),
        "db_permanent_overhead_x": 1.0,
        "accepted": audit.accepted,
    }


def figure9_decomposition(run: BenchRun) -> dict[str, float]:
    """Figure 9's bars: audit-time CPU decomposition (seconds).

    * ``php`` — SIMD-on-demand execution + simulate-and-check;
    * ``db_query`` — versioned-DB SELECTs during re-execution;
    * ``proc_op_reports`` — Figures 5/6;
    * ``db_redo`` — versioned-store construction;
    * ``other`` — balance/nondet checks, output comparison, bookkeeping.
    """
    phases = run.audit.phases
    total = phases.get("total", 0.0)
    db_query = phases.get("db_query", 0.0)
    reexec = phases.get("reexec", 0.0)
    php = max(0.0, reexec - db_query)
    proc = phases.get("proc_op_reports", 0.0)
    redo = phases.get("db_redo", 0.0)
    other = max(0.0, total - php - db_query - proc - redo)
    return {
        "php": php,
        "db_query": db_query,
        "proc_op_reports": proc,
        "db_redo": redo,
        "other": other,
        "total": total,
        "baseline_total": run.baseline_audit.seconds
        if run.baseline_audit
        else float("nan"),
    }
