"""Serialization of audit inputs (traces, reports, initial state).

In the paper's deployment the collector and the executor ship the trace
and reports to the verifier, and the verifier keeps object state between
audits (§4.1, §5.3).  This module gives those artifacts a stable JSON
encoding:

* :func:`trace_to_json` / :func:`trace_from_json`
* :func:`reports_to_json` / :func:`reports_from_json`
* :func:`state_to_json` / :func:`state_from_json`
* :func:`save_audit_bundle` / :func:`load_audit_bundle` — one file with
  all three.

Two bundle encodings exist:

* the legacy **JSON blob** (:func:`save_audit_bundle`): one JSON
  document holding trace + reports + initial state;
* the streaming **JSONL** format (:func:`save_audit_bundle_jsonl`): one
  record per line — header, initial state, trace events interleaved
  with ``epoch_mark`` records at the executor's quiescent cuts, then
  the reports in bounded-size chunks.  Producers can append as they go
  and consumers never hold more than one line in memory before
  dispatch; the epoch marks let the auditor shard the bundle without
  rescanning the trace (see :mod:`repro.core.partition`).

:func:`load_audit_bundle` auto-detects the encoding.

Weblang values inside op logs / registers / KV are already *frozen*
(hashable tuples, see :func:`repro.lang.interp.freeze_value`); JSON
round-tripping preserves them exactly via a small tagged encoding
(JSON has no tuples or int-keyed maps).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.objects.base import OpRecord, OpType
from repro.server.app import InitialState
from repro.server.reports import NondetRecord, Reports
from repro.sql.engine import Engine, Table
from repro.trace.events import (
    Event,
    EventKind,
    ExternalRequest,
    Request,
    Response,
)
from repro.trace.trace import Trace

FORMAT_VERSION = 1


# -- value encoding -------------------------------------------------------------
#
# Frozen weblang values are built from None/bool/int/float/str and tuples.
# JSON lacks tuples, so tuples are encoded as {"t": [...]}; everything else
# passes through.  (Dict payloads — request params — have string keys and
# scalar values and need no tagging.)


def _enc(value: object) -> object:
    if isinstance(value, tuple):
        return {"t": [_enc(item) for item in value]}
    if isinstance(value, list):  # defensive: lists inside request params
        return {"l": [_enc(item) for item in value]}
    if isinstance(value, dict):
        return {"d": {str(k): _enc(v) for k, v in value.items()}}
    return value


def _dec(value: object) -> object:
    if isinstance(value, dict):
        if set(value) == {"t"}:
            return tuple(_dec(item) for item in value["t"])
        if set(value) == {"l"}:
            return [_dec(item) for item in value["l"]]
        if set(value) == {"d"}:
            return {k: _dec(v) for k, v in value["d"].items()}
    return value


# -- trace ------------------------------------------------------------------------


def _event_to_json(event: Event) -> Dict:
    entry: Dict = {"kind": event.kind.value, "time": event.time}
    payload = event.payload
    if event.is_request:
        entry["request"] = {
            "rid": payload.rid,
            "script": payload.script,
            "get": _enc(dict(payload.get)),
            "post": _enc(dict(payload.post)),
            "cookies": _enc(dict(payload.cookies)),
        }
    elif event.is_response:
        entry["response"] = {
            "rid": payload.rid,
            "body": payload.body,
            "status": payload.status,
            "abort_info": payload.abort_info,
        }
    else:
        entry["external"] = {
            "rid": payload.rid,
            "service": payload.service,
            "content": _enc(payload.content),
        }
    return entry


def _event_from_json(entry: Dict) -> Event:
    kind = EventKind(entry["kind"])
    time = entry.get("time", 0.0)
    if kind is EventKind.REQUEST:
        raw = entry["request"]
        return Event.request(
            Request(raw["rid"], raw["script"], _dec(raw["get"]),
                    _dec(raw["post"]), _dec(raw["cookies"])),
            time,
        )
    if kind is EventKind.RESPONSE:
        raw = entry["response"]
        return Event.response(
            Response(raw["rid"], raw["body"], raw["status"],
                     raw["abort_info"]),
            time,
        )
    raw = entry["external"]
    return Event.external(
        ExternalRequest(raw["rid"], raw["service"], _dec(raw["content"])),
        time,
    )


def trace_to_json(trace: Trace) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "events": [_event_to_json(event) for event in trace],
    }


def trace_from_json(data: Dict) -> Trace:
    _check_version(data)
    trace = Trace()
    for entry in data["events"]:
        trace.append(_event_from_json(entry))
    return trace


# -- reports ------------------------------------------------------------------------


def reports_to_json(reports: Reports) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "groups": {tag: list(rids) for tag, rids in reports.groups.items()},
        "op_logs": {
            obj: [
                {
                    "rid": rec.rid,
                    "opnum": rec.opnum,
                    "optype": rec.optype.value,
                    "opcontents": _enc(rec.opcontents),
                }
                for rec in log
            ]
            for obj, log in reports.op_logs.items()
        },
        "op_counts": dict(reports.op_counts),
        "nondet": {
            rid: [
                {
                    "func": rec.func,
                    "args": _enc(rec.args),
                    "value": _enc(rec.value),
                }
                for rec in records
            ]
            for rid, records in reports.nondet.items()
        },
    }


def reports_from_json(data: Dict) -> Reports:
    _check_version(data)
    return Reports(
        groups={tag: list(rids) for tag, rids in data["groups"].items()},
        op_logs={
            obj: [
                OpRecord(
                    rec["rid"],
                    rec["opnum"],
                    OpType(rec["optype"]),
                    _dec(rec["opcontents"]),
                )
                for rec in log
            ]
            for obj, log in data["op_logs"].items()
        },
        op_counts=dict(data["op_counts"]),
        nondet={
            rid: [
                NondetRecord(rec["func"], _dec(rec["args"]),
                             _dec(rec["value"]))
                for rec in records
            ]
            for rid, records in data["nondet"].items()
        },
    )


# -- initial state ---------------------------------------------------------------


def state_to_json(state: InitialState) -> Dict:
    tables = {}
    for name, table in state.db_engine.tables.items():
        tables[name] = {
            "columns": list(table.columns),
            "types": dict(table.types),
            "primary_key": table.primary_key,
            "auto_column": table.auto_column,
            "auto_counter": table.auto_counter,
            "rows": [
                {col: row.get(col) for col in table.columns}
                for row in table.rows
            ],
        }
    return {
        "version": FORMAT_VERSION,
        "tables": tables,
        "kv": {key: _enc(value) for key, value in state.kv.items()},
        "registers": {
            name: _enc(value) for name, value in state.registers.items()
        },
    }


def state_from_json(data: Dict) -> InitialState:
    _check_version(data)
    engine = Engine()
    for name, raw in data["tables"].items():
        engine.tables[name] = Table(
            name,
            list(raw["columns"]),
            dict(raw["types"]),
            raw.get("primary_key"),
            raw.get("auto_column"),
            raw.get("auto_counter", 0),
            [dict(row) for row in raw["rows"]],
        )
    return InitialState(
        engine,
        {key: _dec(value) for key, value in data["kv"].items()},
        {name: _dec(value)
         for name, value in data["registers"].items()},
    )


# -- bundles ------------------------------------------------------------------------


#: First-line marker of the streaming format.
JSONL_FORMAT = "ssco-jsonl"

#: Op-log records per JSONL line (bounds the working set of a consumer).
_JSONL_LOG_CHUNK = 1000


def save_audit_bundle(
    path: str,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    epoch_marks: Sequence[int] = (),
    format: str = "json",
) -> None:
    """Write everything the verifier needs into one file.

    ``format`` selects the legacy JSON blob (``"json"``) or the
    streaming epoch-segmented JSONL encoding (``"jsonl"``).
    """
    if format == "jsonl":
        save_audit_bundle_jsonl(path, trace, reports, initial_state,
                                epoch_marks)
        return
    if format != "json":
        raise ValueError(f"unknown bundle format {format!r}")
    bundle = {
        "version": FORMAT_VERSION,
        "trace": trace_to_json(trace),
        "reports": reports_to_json(reports),
        "initial_state": state_to_json(initial_state),
    }
    if epoch_marks:
        bundle["epoch_marks"] = list(epoch_marks)
    with open(path, "w") as fh:
        json.dump(bundle, fh)


def save_audit_bundle_jsonl(
    path: str,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    epoch_marks: Sequence[int] = (),
) -> None:
    """Write the streaming epoch-segmented bundle: one record per line.

    Layout: header, initial state, trace events in order (with
    ``epoch_mark`` records interleaved at the executor's quiescent
    cuts), then the reports in bounded-size chunks.
    """
    marks = set(epoch_marks)
    with open(path, "w") as fh:
        def emit(record: Dict) -> None:
            fh.write(json.dumps(record))
            fh.write("\n")

        emit({"format": JSONL_FORMAT, "version": FORMAT_VERSION})
        emit({"kind": "state", "state": state_to_json(initial_state)})
        for position, event in enumerate(trace):
            if position in marks and position > 0:
                emit({"kind": "epoch_mark", "events": position})
            emit({"kind": "event", "event": _event_to_json(event)})
        for tag in reports.groups:
            emit({"kind": "group", "tag": tag,
                  "rids": list(reports.groups[tag])})
        for obj, log in reports.op_logs.items():
            for start in range(0, len(log), _JSONL_LOG_CHUNK):
                emit({"kind": "op_log", "obj": obj, "records": [
                    {
                        "rid": rec.rid,
                        "opnum": rec.opnum,
                        "optype": rec.optype.value,
                        "opcontents": _enc(rec.opcontents),
                    }
                    for rec in log[start:start + _JSONL_LOG_CHUNK]
                ]})
        emit({"kind": "op_counts", "counts": dict(reports.op_counts)})
        for rid, records in reports.nondet.items():
            emit({"kind": "nondet", "rid": rid, "records": [
                {
                    "func": rec.func,
                    "args": _enc(rec.args),
                    "value": _enc(rec.value),
                }
                for rec in records
            ]})


def load_audit_bundle_jsonl(path: str):
    """Returns (trace, reports, initial_state, epoch_marks)."""
    trace = Trace()
    reports = Reports()
    initial_state = None
    epoch_marks: List[int] = []
    with open(path) as fh:
        header = json.loads(next(fh))
        if header.get("format") != JSONL_FORMAT:
            raise ValueError(f"not a {JSONL_FORMAT} bundle: {path}")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported audit-bundle format version "
                f"{header.get('version')!r} (expected {FORMAT_VERSION})"
            )
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record["kind"]
            if kind == "state":
                initial_state = state_from_json(record["state"])
            elif kind == "event":
                trace.append(_event_from_json(record["event"]))
            elif kind == "epoch_mark":
                epoch_marks.append(int(record["events"]))
            elif kind == "group":
                reports.groups.setdefault(record["tag"], []).extend(
                    record["rids"]
                )
            elif kind == "op_log":
                log = reports.op_logs.setdefault(record["obj"], [])
                for rec in record["records"]:
                    log.append(OpRecord(
                        rec["rid"], rec["opnum"], OpType(rec["optype"]),
                        _dec(rec["opcontents"]),
                    ))
            elif kind == "op_counts":
                reports.op_counts.update(record["counts"])
            elif kind == "nondet":
                reports.nondet.setdefault(record["rid"], []).extend(
                    NondetRecord(rec["func"], _dec(rec["args"]),
                                 _dec(rec["value"]))
                    for rec in record["records"]
                )
            else:
                raise ValueError(f"unknown bundle record kind {kind!r}")
    if initial_state is None:
        raise ValueError(f"bundle {path} has no initial state record")
    return trace, reports, initial_state, epoch_marks


def load_audit_bundle_ex(path: str):
    """Load either bundle encoding; returns
    (trace, reports, initial_state, epoch_marks).

    Format sniffing reads a bounded prefix: the JSONL header is a short
    first line, while the legacy blob is one huge line — so only the
    prefix up to the first newline is ever parsed twice.
    """
    with open(path) as fh:
        prefix = fh.read(256)
    header = None
    if "\n" in prefix:
        try:
            header = json.loads(prefix[:prefix.index("\n")])
        except ValueError:
            header = None
    if isinstance(header, dict) and header.get("format") == JSONL_FORMAT:
        return load_audit_bundle_jsonl(path)
    with open(path) as fh:
        bundle = json.load(fh)
    _check_version(bundle)
    return (
        trace_from_json(bundle["trace"]),
        reports_from_json(bundle["reports"]),
        state_from_json(bundle["initial_state"]),
        list(bundle.get("epoch_marks", [])),
    )


def load_audit_bundle(path: str):
    """Returns (trace, reports, initial_state); auto-detects the format."""
    trace, reports, initial_state, _ = load_audit_bundle_ex(path)
    return trace, reports, initial_state


def _check_version(data: Dict) -> None:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported audit-bundle format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
