"""Serialization of audit inputs (traces, reports, initial state).

In the paper's deployment the collector and the executor ship the trace
and reports to the verifier, and the verifier keeps object state between
audits (§4.1, §5.3).  This module gives those artifacts a stable JSON
encoding:

* :func:`trace_to_json` / :func:`trace_from_json`
* :func:`reports_to_json` / :func:`reports_from_json`
* :func:`state_to_json` / :func:`state_from_json`
* :func:`save_audit_bundle` / :func:`load_audit_bundle` — one file with
  all three.

Weblang values inside op logs / registers / KV are already *frozen*
(hashable tuples, see :func:`repro.lang.interp.freeze_value`); JSON
round-tripping preserves them exactly via a small tagged encoding
(JSON has no tuples or int-keyed maps).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.objects.base import OpRecord, OpType
from repro.server.app import InitialState
from repro.server.reports import NondetRecord, Reports
from repro.sql.engine import Engine, Table
from repro.trace.events import (
    Event,
    EventKind,
    ExternalRequest,
    Request,
    Response,
)
from repro.trace.trace import Trace

FORMAT_VERSION = 1


# -- value encoding -------------------------------------------------------------
#
# Frozen weblang values are built from None/bool/int/float/str and tuples.
# JSON lacks tuples, so tuples are encoded as {"t": [...]}; everything else
# passes through.  (Dict payloads — request params — have string keys and
# scalar values and need no tagging.)


def _enc(value: object) -> object:
    if isinstance(value, tuple):
        return {"t": [_enc(item) for item in value]}
    if isinstance(value, list):  # defensive: lists inside request params
        return {"l": [_enc(item) for item in value]}
    if isinstance(value, dict):
        return {"d": {str(k): _enc(v) for k, v in value.items()}}
    return value


def _dec(value: object) -> object:
    if isinstance(value, dict):
        if set(value) == {"t"}:
            return tuple(_dec(item) for item in value["t"])
        if set(value) == {"l"}:
            return [_dec(item) for item in value["l"]]
        if set(value) == {"d"}:
            return {k: _dec(v) for k, v in value["d"].items()}
    return value


# -- trace ------------------------------------------------------------------------


def trace_to_json(trace: Trace) -> Dict:
    events: List[Dict] = []
    for event in trace:
        entry: Dict = {"kind": event.kind.value, "time": event.time}
        payload = event.payload
        if event.is_request:
            entry["request"] = {
                "rid": payload.rid,
                "script": payload.script,
                "get": _enc(dict(payload.get)),
                "post": _enc(dict(payload.post)),
                "cookies": _enc(dict(payload.cookies)),
            }
        elif event.is_response:
            entry["response"] = {
                "rid": payload.rid,
                "body": payload.body,
                "status": payload.status,
                "abort_info": payload.abort_info,
            }
        else:
            entry["external"] = {
                "rid": payload.rid,
                "service": payload.service,
                "content": _enc(payload.content),
            }
        events.append(entry)
    return {"version": FORMAT_VERSION, "events": events}


def trace_from_json(data: Dict) -> Trace:
    _check_version(data)
    trace = Trace()
    for entry in data["events"]:
        kind = EventKind(entry["kind"])
        time = entry.get("time", 0.0)
        if kind is EventKind.REQUEST:
            raw = entry["request"]
            trace.append(Event.request(
                Request(raw["rid"], raw["script"], _dec(raw["get"]),
                        _dec(raw["post"]), _dec(raw["cookies"])),
                time,
            ))
        elif kind is EventKind.RESPONSE:
            raw = entry["response"]
            trace.append(Event.response(
                Response(raw["rid"], raw["body"], raw["status"],
                         raw["abort_info"]),
                time,
            ))
        else:
            raw = entry["external"]
            trace.append(Event.external(
                ExternalRequest(raw["rid"], raw["service"],
                                _dec(raw["content"])),
                time,
            ))
    return trace


# -- reports ------------------------------------------------------------------------


def reports_to_json(reports: Reports) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "groups": {tag: list(rids) for tag, rids in reports.groups.items()},
        "op_logs": {
            obj: [
                {
                    "rid": rec.rid,
                    "opnum": rec.opnum,
                    "optype": rec.optype.value,
                    "opcontents": _enc(rec.opcontents),
                }
                for rec in log
            ]
            for obj, log in reports.op_logs.items()
        },
        "op_counts": dict(reports.op_counts),
        "nondet": {
            rid: [
                {
                    "func": rec.func,
                    "args": _enc(rec.args),
                    "value": _enc(rec.value),
                }
                for rec in records
            ]
            for rid, records in reports.nondet.items()
        },
    }


def reports_from_json(data: Dict) -> Reports:
    _check_version(data)
    return Reports(
        groups={tag: list(rids) for tag, rids in data["groups"].items()},
        op_logs={
            obj: [
                OpRecord(
                    rec["rid"],
                    rec["opnum"],
                    OpType(rec["optype"]),
                    _dec(rec["opcontents"]),
                )
                for rec in log
            ]
            for obj, log in data["op_logs"].items()
        },
        op_counts=dict(data["op_counts"]),
        nondet={
            rid: [
                NondetRecord(rec["func"], _dec(rec["args"]),
                             _dec(rec["value"]))
                for rec in records
            ]
            for rid, records in data["nondet"].items()
        },
    )


# -- initial state ---------------------------------------------------------------


def state_to_json(state: InitialState) -> Dict:
    tables = {}
    for name, table in state.db_engine.tables.items():
        tables[name] = {
            "columns": list(table.columns),
            "types": dict(table.types),
            "primary_key": table.primary_key,
            "auto_column": table.auto_column,
            "auto_counter": table.auto_counter,
            "rows": [
                {col: row.get(col) for col in table.columns}
                for row in table.rows
            ],
        }
    return {
        "version": FORMAT_VERSION,
        "tables": tables,
        "kv": {key: _enc(value) for key, value in state.kv.items()},
        "registers": {
            name: _enc(value) for name, value in state.registers.items()
        },
    }


def state_from_json(data: Dict) -> InitialState:
    _check_version(data)
    engine = Engine()
    for name, raw in data["tables"].items():
        engine.tables[name] = Table(
            name,
            list(raw["columns"]),
            dict(raw["types"]),
            raw.get("primary_key"),
            raw.get("auto_column"),
            raw.get("auto_counter", 0),
            [dict(row) for row in raw["rows"]],
        )
    return InitialState(
        engine,
        {key: _dec(value) for key, value in data["kv"].items()},
        {name: _dec(value)
         for name, value in data["registers"].items()},
    )


# -- bundles ------------------------------------------------------------------------


def save_audit_bundle(
    path: str, trace: Trace, reports: Reports, initial_state: InitialState
) -> None:
    """Write everything the verifier needs into one JSON file."""
    bundle = {
        "version": FORMAT_VERSION,
        "trace": trace_to_json(trace),
        "reports": reports_to_json(reports),
        "initial_state": state_to_json(initial_state),
    }
    with open(path, "w") as fh:
        json.dump(bundle, fh)


def load_audit_bundle(path: str):
    """Returns (trace, reports, initial_state)."""
    with open(path) as fh:
        bundle = json.load(fh)
    _check_version(bundle)
    return (
        trace_from_json(bundle["trace"]),
        reports_from_json(bundle["reports"]),
        state_from_json(bundle["initial_state"]),
    )


def _check_version(data: Dict) -> None:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported audit-bundle format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
