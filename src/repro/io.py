"""Serialization of audit inputs (traces, reports, initial state).

In the paper's deployment the collector and the executor ship the trace
and reports to the verifier, and the verifier keeps object state between
audits (§4.1, §5.3).  This module gives those artifacts a stable JSON
encoding:

* :func:`trace_to_json` / :func:`trace_from_json`
* :func:`reports_to_json` / :func:`reports_from_json`
* :func:`state_to_json` / :func:`state_from_json`
* :func:`save_audit_bundle` / :func:`load_audit_bundle` — one file with
  all three.

Two bundle encodings exist:

* the legacy **JSON blob** (:func:`save_audit_bundle`): one JSON
  document holding trace + reports + initial state;
* the streaming **JSONL** format: one record per line — header, initial
  state, trace events interleaved with ``epoch_mark`` records at the
  executor's quiescent cuts, and the reports in bounded-size chunks.
  Producers can append as they go and consumers never hold more than
  one line in memory before dispatch; the epoch marks let the auditor
  shard the bundle without rescanning the trace (see
  :mod:`repro.core.partition`).

The JSONL side is built from two streaming objects:

* :class:`BundleWriter` appends records incrementally.  Its
  **segmented** layout (``segmented=True``) writes each epoch as a
  self-contained run — the epoch's events followed by the epoch's
  report records, with the ``epoch_mark`` opening the next run — so a
  consumer can audit epoch N the moment the mark (or the final ``end``
  record) arrives.  The default layout reproduces the original
  all-events-then-all-reports stream.
* :class:`BundleReader` parses either layout.  :meth:`BundleReader.read_all`
  loads the whole bundle; :meth:`BundleReader.epochs` *yields* epoch
  slices ``(trace, reports)`` incrementally — record-by-record on
  segmented bundles, via the quiescent-cut partitioner otherwise — and
  with ``follow=True`` it tails a bundle that is still being written
  (the paper's continuous deployment: audit epoch N while the server
  records epoch N+1), feeding a live
  :class:`~repro.core.auditor.AuditSession`.

:func:`save_audit_bundle_jsonl` / :func:`load_audit_bundle_jsonl` (and
the auto-detecting :func:`load_audit_bundle`) remain as thin wrappers
over the two objects.

Weblang values inside op logs / registers / KV are already *frozen*
(hashable tuples, see :func:`repro.lang.interp.freeze_value`); JSON
round-tripping preserves them exactly via a small tagged encoding
(JSON has no tuples or int-keyed maps).
"""

from __future__ import annotations

import io as _stdio
import json
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

from repro.common.clock import Deadline
from repro.objects.base import OpRecord, OpType
from repro.server.app import InitialState
from repro.server.reports import NondetRecord, Reports
from repro.sql.engine import Engine, Table
from repro.trace.events import (
    Event,
    EventKind,
    ExternalRequest,
    Request,
    Response,
)
from repro.trace.trace import Trace

FORMAT_VERSION = 1


# -- value encoding -------------------------------------------------------------
#
# Frozen weblang values are built from None/bool/int/float/str and tuples.
# JSON lacks tuples, so tuples are encoded as {"t": [...]}; everything else
# passes through.  (Dict payloads — request params — have string keys and
# scalar values and need no tagging.)


def _enc(value: object) -> object:
    if isinstance(value, tuple):
        return {"t": [_enc(item) for item in value]}
    if isinstance(value, list):  # defensive: lists inside request params
        return {"l": [_enc(item) for item in value]}
    if isinstance(value, dict):
        return {"d": {str(k): _enc(v) for k, v in value.items()}}
    return value


def _dec(value: object) -> object:
    if isinstance(value, dict):
        if set(value) == {"t"}:
            return tuple(_dec(item) for item in value["t"])
        if set(value) == {"l"}:
            return [_dec(item) for item in value["l"]]
        if set(value) == {"d"}:
            return {k: _dec(v) for k, v in value["d"].items()}
    return value


# -- trace ------------------------------------------------------------------------


def _event_to_json(event: Event) -> dict:
    entry: dict = {"kind": event.kind.value, "time": event.time}
    payload = event.payload
    if event.is_request:
        entry["request"] = {
            "rid": payload.rid,
            "script": payload.script,
            "get": _enc(dict(payload.get)),
            "post": _enc(dict(payload.post)),
            "cookies": _enc(dict(payload.cookies)),
        }
    elif event.is_response:
        entry["response"] = {
            "rid": payload.rid,
            "body": payload.body,
            "status": payload.status,
            "abort_info": payload.abort_info,
        }
    else:
        entry["external"] = {
            "rid": payload.rid,
            "service": payload.service,
            "content": _enc(payload.content),
        }
    return entry


def _event_from_json(entry: dict) -> Event:
    kind = EventKind(entry["kind"])
    time = entry.get("time", 0.0)
    if kind is EventKind.REQUEST:
        raw = entry["request"]
        return Event.request(
            Request(raw["rid"], raw["script"], _dec(raw["get"]),
                    _dec(raw["post"]), _dec(raw["cookies"])),
            time,
        )
    if kind is EventKind.RESPONSE:
        raw = entry["response"]
        return Event.response(
            Response(raw["rid"], raw["body"], raw["status"],
                     raw["abort_info"]),
            time,
        )
    raw = entry["external"]
    return Event.external(
        ExternalRequest(raw["rid"], raw["service"], _dec(raw["content"])),
        time,
    )


def trace_to_json(trace: Trace) -> dict:
    return {
        "version": FORMAT_VERSION,
        "events": [_event_to_json(event) for event in trace],
    }


def trace_from_json(data: dict) -> Trace:
    _check_version(data)
    trace = Trace()
    for entry in data["events"]:
        trace.append(_event_from_json(entry))
    return trace


# -- reports ------------------------------------------------------------------------


def reports_to_json(reports: Reports) -> dict:
    return {
        "version": FORMAT_VERSION,
        "groups": {tag: list(rids) for tag, rids in reports.groups.items()},
        "op_logs": {
            obj: [
                {
                    "rid": rec.rid,
                    "opnum": rec.opnum,
                    "optype": rec.optype.value,
                    "opcontents": _enc(rec.opcontents),
                }
                for rec in log
            ]
            for obj, log in reports.op_logs.items()
        },
        "op_counts": dict(reports.op_counts),
        "nondet": {
            rid: [
                {
                    "func": rec.func,
                    "args": _enc(rec.args),
                    "value": _enc(rec.value),
                }
                for rec in records
            ]
            for rid, records in reports.nondet.items()
        },
    }


def reports_from_json(data: dict) -> Reports:
    _check_version(data)
    return Reports(
        groups={tag: list(rids) for tag, rids in data["groups"].items()},
        op_logs={
            obj: [
                OpRecord(
                    rec["rid"],
                    rec["opnum"],
                    OpType(rec["optype"]),
                    _dec(rec["opcontents"]),
                )
                for rec in log
            ]
            for obj, log in data["op_logs"].items()
        },
        op_counts=dict(data["op_counts"]),
        nondet={
            rid: [
                NondetRecord(rec["func"], _dec(rec["args"]),
                             _dec(rec["value"]))
                for rec in records
            ]
            for rid, records in data["nondet"].items()
        },
    )


# -- initial state ---------------------------------------------------------------


def state_to_json(state: InitialState) -> dict:
    tables = {}
    for name, table in state.db_engine.tables.items():
        tables[name] = {
            "columns": list(table.columns),
            "types": dict(table.types),
            "primary_key": table.primary_key,
            "auto_column": table.auto_column,
            "auto_counter": table.auto_counter,
            "rows": [
                {col: row.get(col) for col in table.columns}
                for row in table.rows
            ],
        }
    return {
        "version": FORMAT_VERSION,
        "tables": tables,
        "kv": {key: _enc(value) for key, value in state.kv.items()},
        "registers": {
            name: _enc(value) for name, value in state.registers.items()
        },
    }


def state_from_json(data: dict) -> InitialState:
    _check_version(data)
    engine = Engine()
    for name, raw in data["tables"].items():
        engine.tables[name] = Table(
            name,
            list(raw["columns"]),
            dict(raw["types"]),
            raw.get("primary_key"),
            raw.get("auto_column"),
            raw.get("auto_counter", 0),
            [dict(row) for row in raw["rows"]],
        )
    return InitialState(
        engine,
        {key: _dec(value) for key, value in data["kv"].items()},
        {name: _dec(value)
         for name, value in data["registers"].items()},
    )


# -- bundles ------------------------------------------------------------------------


#: First-line marker of the streaming format.
JSONL_FORMAT = "ssco-jsonl"

#: Header value marking the per-epoch segmented record layout.
SEGMENTED_LAYOUT = "segmented"

#: Op-log records per JSONL line (bounds the working set of a consumer).
_JSONL_LOG_CHUNK = 1000


# -- record builders ------------------------------------------------------------
#
# The streaming record kinds, as plain dicts.  BundleWriter serializes
# them to JSONL lines; repro.net's BundlePublisher frames the very same
# dicts over a socket — one encoding, two transports.


def state_record(initial_state: InitialState) -> dict:
    return {"kind": "state", "state": state_to_json(initial_state)}


def event_record(event: Event) -> dict:
    return {"kind": "event", "event": _event_to_json(event)}


def epoch_mark_record(position: int) -> dict:
    return {"kind": "epoch_mark", "events": position}


def end_record(position: int) -> dict:
    return {"kind": "end", "events": position}


#: Every record dict above leads with its ``"kind"`` key, and
#: ``json.dumps`` preserves insertion order — so an encoded record's
#: kind is readable from its first bytes, in both the writer's spelling
#: (default separators) and the wire's (compact separators).
_KIND_PREFIXES = (b'{"kind": "', b'{"kind":"')


def record_kind(line: bytes) -> str | None:
    """The kind of one encoded record line, without parsing it.

    This is what lets :meth:`repro.net.BundlePublisher.
    write_record_payload` splice a recorder's on-disk bundle straight
    onto the wire: a prefix sniff instead of a full JSON round-trip per
    record.  Falls back to a real parse for encodings this module did
    not produce; returns ``None`` for the bundle header line (the only
    bundle line without a kind).
    """
    for prefix in _KIND_PREFIXES:
        if line.startswith(prefix):
            end = line.index(b'"', len(prefix))
            return line[len(prefix):end].decode("ascii")
    try:
        record = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    kind = record.get("kind") if isinstance(record, dict) else None
    return kind if isinstance(kind, str) else None


def iter_report_records(reports: Reports) -> Iterator[dict]:
    """All four report types, op logs chunked at a bounded size."""
    for tag in reports.groups:
        yield {"kind": "group", "tag": tag,
               "rids": list(reports.groups[tag])}
    for obj, log in reports.op_logs.items():
        for start in range(0, len(log), _JSONL_LOG_CHUNK):
            yield {"kind": "op_log", "obj": obj, "records": [
                {
                    "rid": rec.rid,
                    "opnum": rec.opnum,
                    "optype": rec.optype.value,
                    "opcontents": _enc(rec.opcontents),
                }
                for rec in log[start:start + _JSONL_LOG_CHUNK]
            ]}
    yield {"kind": "op_counts", "counts": dict(reports.op_counts)}
    for rid, records in reports.nondet.items():
        yield {"kind": "nondet", "rid": rid, "records": [
            {
                "func": rec.func,
                "args": _enc(rec.args),
                "value": _enc(rec.value),
            }
            for rec in records
        ]}


class BundleWriter:
    """Incremental writer of the streaming JSONL bundle.

    The writer is deliberately low-level — one method per record kind —
    so a recording server can append as it goes.  Two layouts:

    * default: the original stream (state, all events with interleaved
      epoch marks, then all reports);
    * ``segmented=True``: per-epoch runs (the epoch's events, then the
      epoch's report records), each non-first run opened by its
      ``epoch_mark``; finished bundles end with an ``end`` record so a
      tailing reader knows the stream is complete.
      :meth:`write_epoch` emits one whole run.

    Both layouts are read by :class:`BundleReader` and the legacy
    loaders (record kinds are identical; only their order differs).
    With ``autoflush`` (the default) every record is flushed, so a
    concurrently tailing reader never sees a torn line become
    permanent; batch savers turn it off and use ordinary buffering.
    """

    def __init__(self, path: str, segmented: bool = False,
                 autoflush: bool = True):
        self.path = path
        self.segmented = segmented
        #: Flush after every record so a concurrently tailing reader
        #: sees it immediately (the live-writer default).  Batch savers
        #: pass ``autoflush=False`` and rely on ordinary buffering —
        #: nobody tails a file that is written and closed in one go.
        self.autoflush = autoflush
        #: Events written so far == the next event's trace index.
        self.position = 0
        #: Epoch-mark positions written so far.
        self.epoch_marks: list[int] = []
        self._fh = open(path, "w")
        self._closed = False
        header: dict[str, object] = {
            "format": JSONL_FORMAT, "version": FORMAT_VERSION,
        }
        if segmented:
            header["layout"] = SEGMENTED_LAYOUT
        self._emit(header)

    def _emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record) + "\n")
        if self.autoflush:
            self._fh.flush()

    def write_state(self, initial_state: InitialState) -> None:
        self._emit(state_record(initial_state))

    def write_event(self, event: Event) -> None:
        self._emit(event_record(event))
        self.position += 1

    def write_epoch_mark(self, position: int | None = None) -> None:
        """Record a quiescent cut; defaults to the current position."""
        position = self.position if position is None else position
        self._emit(epoch_mark_record(position))
        self.epoch_marks.append(position)

    def write_reports(self, reports: Reports) -> None:
        """All four report types, op logs chunked at a bounded size."""
        for record in iter_report_records(reports):
            self._emit(record)

    def write_epoch(self, trace: Trace, reports: Reports) -> None:
        """One self-contained epoch run (segmented layout): the opening
        mark (for every epoch after the first), the slice's events, then
        the slice's reports."""
        if self.position > 0:
            self.write_epoch_mark()
        for event in trace:
            self.write_event(event)
        self.write_reports(reports)

    def write_end(self) -> None:
        """Mark the stream complete (stops ``follow`` readers)."""
        self._emit(end_record(self.position))

    def write_payload_line(self, payload: bytes,
                           kind: str | None = None) -> None:
        """Append one **already-encoded** record line verbatim.

        The zero re-encode path's mirror half: the publisher encodes
        each record exactly once (the wire's compact encoding) and the
        ``--out`` mirror writes those same bytes as a bundle line —
        ``record_kind`` and every reader accept both JSON spellings.
        ``kind`` skips the prefix sniff when the caller already knows
        it.  Position/epoch-mark bookkeeping matches the record-level
        methods (the rare mark/end records are parsed for it).
        """
        payload = payload.rstrip(b"\r\n")
        if kind is None:
            kind = record_kind(payload)
        if kind is None:
            raise ValueError(
                "record payload has no kind (bundle header lines are "
                "emitted by the constructor, not appended)"
            )
        self._fh.write(payload.decode() + "\n")
        if self.autoflush:
            self._fh.flush()
        if kind == "event":
            self.position += 1
        elif kind == "epoch_mark":
            events = json.loads(payload).get("events")
            if isinstance(events, int):
                self.epoch_marks.append(events)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()

    def __enter__(self) -> BundleWriter:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def dispatch_meta_record(kind: str, record: dict,
                         reports: Reports) -> InitialState | None:
    """Accumulate one non-event record into ``reports``; a ``state``
    record instead returns the decoded initial state.  Shared by the
    file reader and :class:`repro.net.client.RemoteBundleReader` — the
    wire transport carries the very same record dicts."""
    if kind == "state":
        return state_from_json(record["state"])
    if kind == "group":
        reports.groups.setdefault(record["tag"], []).extend(
            record["rids"]
        )
    elif kind == "op_log":
        log = reports.op_logs.setdefault(record["obj"], [])
        for rec in record["records"]:
            log.append(OpRecord(
                rec["rid"], rec["opnum"], OpType(rec["optype"]),
                _dec(rec["opcontents"]),
            ))
    elif kind == "op_counts":
        reports.op_counts.update(record["counts"])
    elif kind == "nondet":
        reports.nondet.setdefault(record["rid"], []).extend(
            NondetRecord(rec["func"], _dec(rec["args"]),
                         _dec(rec["value"]))
            for rec in record["records"]
        )
    else:
        raise ValueError(f"unknown bundle record kind {kind!r}")
    return None


@dataclass
class EpochSlice:
    """One epoch's worth of audit inputs, as yielded by
    :meth:`BundleReader.epochs` (shape-compatible with
    :class:`~repro.core.partition.Shard`)."""

    index: int
    trace: Trace
    reports: Reports

    @property
    def request_count(self) -> int:
        return len(self.trace.request_ids())


class EpochAccumulator:
    """The segmented-stream state machine shared by the file reader and
    the net client: feed bundle records in order, get
    :class:`EpochSlice` objects out at each ``epoch_mark``.

    Keeping one copy of this loop is what guarantees the two transports
    cannot drift: a record stream produces the same slices whether it
    came off a disk or a socket.
    """

    def __init__(self, index: int = 0):
        self.index = index
        self.trace = Trace()
        self.reports = Reports()
        #: set when a ``state`` record passes through.
        self.initial_state: InitialState | None = None

    def reset(self, index: int) -> None:
        """Discard the partial epoch being accumulated (the net
        client's resume: the publisher replays it from the start)."""
        self.index = index
        self.trace = Trace()
        self.reports = Reports()

    def _cut(self) -> EpochSlice:
        slice_ = EpochSlice(self.index, self.trace, self.reports)
        self.index += 1
        self.trace = Trace()
        self.reports = Reports()
        return slice_

    def feed(self, record: dict) -> EpochSlice | None:
        """Consume one record; returns the finished slice when the
        record is an ``epoch_mark`` closing a non-empty epoch."""
        kind = record["kind"]
        if kind == "event":
            self.trace.append(_event_from_json(record["event"]))
            return None
        if kind == "epoch_mark":
            return self._cut() if len(self.trace) else None
        state = dispatch_meta_record(kind, record, self.reports)
        if state is not None:
            self.initial_state = state
        return None

    def flush(self) -> EpochSlice | None:
        """The trailing slice at stream end — including a *torn* one
        (stream stopped mid-epoch): yielding it makes truncation loud
        (the audit rejects an unbalanced slice) instead of silently
        passing a shortened stream."""
        return self._cut() if len(self.trace) else None


@dataclass
class EpochIndex:
    """Byte-offset index over a segmented bundle's epoch runs.

    Built by one cheap binary scan (:meth:`BundleReader.epoch_index`)
    that sniffs each line's record kind without parsing event payloads;
    ``offsets[n]`` is where epoch ``n``'s run begins, so
    :meth:`BundleReader.seek_epoch` can jump straight to epoch N
    instead of replaying the whole JSONL stream.
    """

    #: Byte offset of each epoch run's first record.
    offsets: list[int] = field(default_factory=list)
    #: The ``events`` counter of each ``epoch_mark`` record, in order
    #: (same values :func:`load_audit_bundle_ex` returns as marks).
    marks: list[int] = field(default_factory=list)
    #: Byte offset of the ``state`` record, if present.
    state_offset: int | None = None
    #: True when the writer's ``end`` record was found (a bundle still
    #: being written — or torn — scans as incomplete).
    complete: bool = False

    @property
    def epoch_count(self) -> int:
        return len(self.offsets)


class BundleReader:
    """Streaming reader of the JSONL bundle format.

    * :meth:`read_all` — the whole bundle at once:
      ``(trace, reports, initial_state, epoch_marks)``;
    * :meth:`epochs` — an iterator of :class:`EpochSlice`, produced
      incrementally on segmented bundles (each slice is emitted as soon
      as its closing ``epoch_mark`` / ``end`` arrives) and via the
      quiescent-cut partitioner on default-layout bundles (which hold
      all reports at the tail, so epochs only become separable once the
      file is complete);
    * ``follow=True`` tails a bundle that is still being written,
      sleeping ``poll_interval`` between attempts and giving up after
      ``idle_timeout`` seconds without new data (``None`` waits until
      the writer's ``end`` record).

    The header is parsed eagerly, so constructing a reader on a
    non-JSONL file raises :class:`ValueError` immediately.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path)
        self._partial = ""
        self._pushback: list[dict] = []
        self._initial_state: InitialState | None = None
        self._ended = False
        self._closed = False
        #: Epoch number of the next run the cursor will read (advanced
        #: by :meth:`seek_epoch`; the accumulator numbers slices from it).
        self._epoch_base = 0
        self._epoch_index: EpochIndex | None = None
        header = None
        first = self._fh.readline()
        if first.endswith("\n"):
            try:
                header = json.loads(first)
            except ValueError:
                header = None
        if not isinstance(header, dict) or header.get(
            "format"
        ) != JSONL_FORMAT:
            self._fh.close()
            raise ValueError(f"not a {JSONL_FORMAT} bundle: {path}")
        if header.get("version") != FORMAT_VERSION:
            self._fh.close()
            raise ValueError(
                f"unsupported audit-bundle format version "
                f"{header.get('version')!r} (expected {FORMAT_VERSION})"
            )
        self.header = header
        self.segmented = header.get("layout") == SEGMENTED_LAYOUT

    @classmethod
    def open(
        cls,
        path: str,
        follow: bool = False,
        poll_interval: float = 0.05,
        idle_timeout: float | None = None,
    ) -> BundleReader:
        """Construct a reader; with ``follow=True``, wait for the file
        and its header line to appear first.

        The continuous deployment has a startup race: the auditor may
        be launched before the recording server opens its
        :class:`BundleWriter` (or within one flush of it).  A plain
        constructor call would fail on the missing/torn header; this
        waits up to ``idle_timeout`` seconds for a complete first line.
        A header that is complete but wrong (a legacy blob, a foreign
        file) still raises :class:`ValueError` immediately.
        """
        if not follow:
            return cls(path)
        # A real-clock deadline: accumulating assumed sleep intervals
        # would overshoot the timeout whenever the open/read itself is
        # slow (network filesystems, a loaded host).
        deadline = Deadline(idle_timeout)
        while True:
            prefix = None
            try:
                with open(path) as fh:
                    prefix = fh.read(4096)
            except OSError:
                pass
            if prefix is not None and (
                "\n" in prefix or len(prefix) >= 4096
            ):
                # Header line complete — or provably not a short JSONL
                # header; either way the constructor has its answer.
                return cls(path)
            if deadline.expired():
                return cls(path)  # surfaces the real open/parse error
            deadline.sleep(poll_interval)

    # -- record stream ----------------------------------------------------

    def _records(
        self,
        follow: bool = False,
        poll_interval: float = 0.05,
        idle_timeout: float | None = None,
    ) -> Iterator[dict]:
        """Parsed records, replaying any pushed-back prefix first.

        In follow mode, EOF means "wait for the writer": poll until new
        complete lines appear, the writer's ``end`` record arrives, or
        ``idle_timeout`` seconds pass without progress.
        """
        while self._pushback:
            yield self._pushback.pop(0)
        if self._ended:
            return
        # The idle timeout is measured on the monotonic clock
        # (repro.common.clock.Deadline, shared with the net transport),
        # not by summing assumed ``poll_interval`` sleeps — slow reads
        # must count against the timeout too.
        deadline = Deadline(idle_timeout)
        while True:
            line = self._fh.readline()
            if not line:
                if not follow or self._ended:
                    return
                if deadline.expired():
                    return
                deadline.sleep(poll_interval)
                continue
            if not line.endswith("\n"):
                # A torn line: the writer is mid-record.  Stash it; the
                # next readline continues from the same byte offset.
                self._partial += line
                if not follow:
                    # Finished file whose last record lacks the trailing
                    # newline (writer died between its two writes).  If
                    # the JSON is complete it is a real record;
                    # truncated JSON raises ValueError.
                    line, self._partial = self._partial, ""
                    if line.strip():
                        record = json.loads(line)
                        if record.get("kind") == "end":
                            self._ended = True
                            return
                        yield record
                    return
                continue
            if self._partial:
                line, self._partial = self._partial + line, ""
            deadline.restart()
            if not line.strip():
                continue
            record = json.loads(line)
            if record.get("kind") == "end":
                self._ended = True
                return
            yield record
            # Re-armed after the consumer returns: time spent auditing
            # an epoch between yields is not stream idleness (the
            # deadline bounds consecutive empty polls, like the old
            # accumulator did).
            deadline.restart()

    # -- whole-bundle loading ---------------------------------------------

    def read_all(
        self,
        follow: bool = False,
        poll_interval: float = 0.05,
        idle_timeout: float | None = None,
    ):
        """Consume the remaining stream into
        ``(trace, reports, initial_state, epoch_marks)``."""
        trace = Trace()
        reports = Reports()
        epoch_marks: list[int] = []
        for record in self._records(follow, poll_interval, idle_timeout):
            kind = record["kind"]
            if kind == "event":
                trace.append(_event_from_json(record["event"]))
            elif kind == "epoch_mark":
                epoch_marks.append(int(record["events"]))
            else:
                self._dispatch_meta(kind, record, reports)
        if self._initial_state is None:
            raise ValueError(
                f"bundle {self.path} has no initial state record"
            )
        return trace, reports, self._initial_state, epoch_marks

    def _dispatch_meta(self, kind: str, record: dict,
                       reports: Reports) -> None:
        """Non-event record kinds, accumulated into ``reports``."""
        state = dispatch_meta_record(kind, record, reports)
        if state is not None:
            self._initial_state = state

    # -- incremental epoch streaming --------------------------------------

    @property
    def initial_state(self) -> InitialState:
        """The bundle's initial state (reads ahead to the state record,
        which both layouts place before the first event)."""
        return self.read_initial_state()

    def read_initial_state(
        self,
        follow: bool = False,
        poll_interval: float = 0.05,
        idle_timeout: float | None = None,
    ) -> InitialState:
        """Read up to the state record; later records are replayed to
        the next consumer (:meth:`epochs` / :meth:`read_all`)."""
        if self._initial_state is not None:
            return self._initial_state
        consumed: list[dict] = []
        for record in self._records(follow, poll_interval, idle_timeout):
            consumed.append(record)
            if record["kind"] == "state":
                break
        self._pushback = consumed + self._pushback
        if self._initial_state is None:
            for record in consumed:
                if record["kind"] == "state":
                    self._initial_state = state_from_json(record["state"])
        if self._initial_state is None:
            raise ValueError(
                f"bundle {self.path} has no initial state record"
            )
        return self._initial_state

    def epochs(
        self,
        follow: bool = False,
        poll_interval: float = 0.05,
        idle_timeout: float | None = None,
    ) -> Iterator[EpochSlice]:
        """Yield the bundle's epochs as independently auditable slices.

        Segmented bundles stream: each slice is yielded the moment its
        run is closed by the next ``epoch_mark`` (or the stream's end),
        which is what makes ``follow=True`` a live audit feed.  Default
        -layout bundles are read fully, then cut at their recorded epoch
        marks via :func:`~repro.core.partition.partition_audit_inputs`
        (one slice covering everything when no usable mark exists).
        """
        if not self.segmented:
            from repro.core.partition import partition_audit_inputs

            trace, reports, _, marks = self.read_all(
                follow, poll_interval, idle_timeout
            )
            for shard in partition_audit_inputs(trace, reports,
                                                cuts=marks):
                yield EpochSlice(shard.index, shard.trace, shard.reports)
            return

        accumulator = EpochAccumulator(self._epoch_base)
        for record in self._records(follow, poll_interval, idle_timeout):
            epoch_slice = accumulator.feed(record)
            if accumulator.initial_state is not None:
                self._initial_state = accumulator.initial_state
            if epoch_slice is not None:
                yield epoch_slice
        epoch_slice = accumulator.flush()
        if epoch_slice is not None:
            yield epoch_slice

    # -- random access (segmented layout) ----------------------------------

    def epoch_index(self) -> EpochIndex:
        """Scan the file once (binary, kind-sniffing only) and cache a
        byte-offset index of its epoch runs.

        Works on any JSONL bundle, but only the segmented layout's
        offsets are *seekable* — the default layout holds all reports
        at the tail, so a mid-file offset does not start a
        self-contained epoch.
        """
        if self._epoch_index is not None:
            return self._epoch_index
        index = EpochIndex()
        with open(self.path, "rb") as raw:
            header = raw.readline()
            if not header.endswith(b"\n"):
                self._epoch_index = index
                return index
            offset = len(header)
            index.offsets.append(offset)
            while True:
                line = raw.readline()
                if not line or not line.endswith(b"\n"):
                    break  # EOF or torn tail: the writer is mid-record
                kind = record_kind(line)
                if kind == "end":
                    index.complete = True
                    break
                if kind == "state" and index.state_offset is None:
                    index.state_offset = offset
                offset += len(line)
                if kind == "epoch_mark":
                    index.marks.append(int(json.loads(line)["events"]))
                    index.offsets.append(offset)
        # A mark (or the state record alone) directly before end/EOF
        # leaves a trailing offset that starts no epoch; drop it.
        if index.offsets and index.offsets[-1] == offset:
            index.offsets.pop()
        self._epoch_index = index
        return index

    def seek_epoch(self, epoch: int) -> None:
        """Reposition the reader so the next :meth:`epochs` call starts
        at epoch ``epoch`` — without replaying the stream before it.

        Only the segmented layout supports this (each epoch run is
        self-contained).  The initial state is read (and cached) first
        via the index's state offset, so :attr:`initial_state` keeps
        working after a forward seek.
        """
        if not self.segmented:
            raise ValueError(
                "seek_epoch needs the segmented layout; this bundle "
                "holds its reports at the tail"
            )
        index = self.epoch_index()
        if not 0 <= epoch < index.epoch_count:
            raise ValueError(
                f"epoch {epoch} out of range (bundle has "
                f"{index.epoch_count} indexed epoch(s))"
            )
        if self._initial_state is None and index.state_offset is not None:
            with open(self.path, "rb") as raw:
                raw.seek(index.state_offset)
                record = json.loads(raw.readline())
            self._initial_state = state_from_json(record["state"])
        # Reopen at the epoch's byte offset: seeking a TextIOWrapper to
        # an arbitrary byte position is undefined, so wrap a freshly
        # positioned binary handle instead.
        raw = open(self.path, "rb")
        raw.seek(index.offsets[epoch])
        old = self._fh
        self._fh = _stdio.TextIOWrapper(raw, encoding="utf-8")
        old.close()
        self._pushback = []
        self._partial = ""
        self._ended = False
        self._epoch_base = epoch

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()

    def __enter__(self) -> BundleReader:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def save_audit_bundle(
    path: str,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    epoch_marks: Sequence[int] = (),
    format: str = "json",
) -> None:
    """Write everything the verifier needs into one file.

    ``format`` selects the legacy JSON blob (``"json"``), the streaming
    JSONL encoding (``"jsonl"``), or the per-epoch segmented JSONL
    layout (``"jsonl-epochs"``) whose epochs a :class:`BundleReader`
    can stream to an audit session without waiting for the whole file.
    """
    if format == "jsonl":
        save_audit_bundle_jsonl(path, trace, reports, initial_state,
                                epoch_marks)
        return
    if format == "jsonl-epochs":
        save_audit_bundle_segmented(path, trace, reports, initial_state,
                                    epoch_marks)
        return
    if format != "json":
        raise ValueError(f"unknown bundle format {format!r}")
    bundle = {
        "version": FORMAT_VERSION,
        "trace": trace_to_json(trace),
        "reports": reports_to_json(reports),
        "initial_state": state_to_json(initial_state),
    }
    if epoch_marks:
        bundle["epoch_marks"] = list(epoch_marks)
    with open(path, "w") as fh:
        json.dump(bundle, fh)


def save_audit_bundle_jsonl(
    path: str,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    epoch_marks: Sequence[int] = (),
) -> None:
    """Write the streaming bundle in the default layout: header, initial
    state, trace events in order (with ``epoch_mark`` records at the
    executor's quiescent cuts), then the reports in bounded chunks."""
    marks = set(epoch_marks)
    with BundleWriter(path, autoflush=False) as writer:
        writer.write_state(initial_state)
        for position, event in enumerate(trace):
            if position in marks and position > 0:
                writer.write_epoch_mark(position)
            writer.write_event(event)
        writer.write_reports(reports)


def save_audit_bundle_segmented(
    path: str,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    epoch_marks: Sequence[int] = (),
) -> None:
    """Write the segmented streaming layout: each epoch's events are
    followed by that epoch's report records, so a tailing reader can
    hand finished epochs to an audit session immediately.

    The epoch runs are produced by the quiescent-cut partitioner over
    ``epoch_marks``; when the reports refuse to split the whole bundle
    becomes one run (still a valid segmented bundle).
    """
    from repro.core.partition import partition_audit_inputs

    with BundleWriter(path, segmented=True, autoflush=False) as writer:
        writer.write_state(initial_state)
        for shard in partition_audit_inputs(trace, reports,
                                            cuts=list(epoch_marks)):
            writer.write_epoch(shard.trace, shard.reports)
        writer.write_end()


def load_audit_bundle_jsonl(path: str):
    """Returns (trace, reports, initial_state, epoch_marks)."""
    with BundleReader(path) as reader:
        return reader.read_all()


def load_audit_bundle_ex(path: str):
    """Load either bundle encoding; returns
    (trace, reports, initial_state, epoch_marks).

    Format sniffing reads a bounded prefix: the JSONL header is a short
    first line, while the legacy blob is one huge line — so only the
    prefix up to the first newline is ever parsed twice.
    """
    with open(path) as fh:
        prefix = fh.read(256)
    header = None
    if "\n" in prefix:
        try:
            header = json.loads(prefix[:prefix.index("\n")])
        except ValueError:
            header = None
    if isinstance(header, dict) and header.get("format") == JSONL_FORMAT:
        return load_audit_bundle_jsonl(path)
    with open(path) as fh:
        bundle = json.load(fh)
    _check_version(bundle)
    return (
        trace_from_json(bundle["trace"]),
        reports_from_json(bundle["reports"]),
        state_from_json(bundle["initial_state"]),
        list(bundle.get("epoch_marks", [])),
    )


def load_audit_bundle(path: str):
    """Returns (trace, reports, initial_state); auto-detects the format."""
    trace, reports, initial_state, _ = load_audit_bundle_ex(path)
    return trace, reports, initial_state


def _check_version(data: dict) -> None:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported audit-bundle format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
