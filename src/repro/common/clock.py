"""Monotonic deadlines for everything that waits on a stream.

The follow-mode :class:`~repro.io.BundleReader` and the whole
:mod:`repro.net` transport share one failure mode: "give up after this
long without progress".  Accumulating assumed sleep intervals
(``idle += poll_interval``) drifts — a slow ``readline`` or ``recv``
makes each iteration take longer than the interval, so the giving-up
point overshoots by the accumulated I/O time.  :class:`Deadline`
measures the real :func:`time.monotonic` clock instead, and re-arms on
progress.
"""

from __future__ import annotations

import time

__all__ = ["Deadline"]


class Deadline:
    """An idle deadline on the monotonic clock.

    ``Deadline(None)`` never expires (wait forever).  Call
    :meth:`restart` whenever progress happens — the deadline means
    "this long *without progress*", not "this long in total".
    """

    __slots__ = ("timeout", "_expires_at")

    def __init__(self, timeout: float | None):
        self.timeout = timeout
        self._expires_at = (
            None if timeout is None else time.monotonic() + timeout
        )

    def restart(self) -> Deadline:
        """Re-arm the same timeout from now (progress was made)."""
        if self.timeout is not None:
            self._expires_at = time.monotonic() + self.timeout
        return self

    def expired(self) -> bool:
        return (self._expires_at is not None
                and time.monotonic() >= self._expires_at)

    def remaining(self) -> float | None:
        """Seconds left, clamped at zero; ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def sleep(self, interval: float) -> None:
        """Sleep ``interval`` seconds, but never past the deadline."""
        remaining = self.remaining()
        if remaining is not None:
            interval = min(interval, remaining)
        if interval > 0:
            time.sleep(interval)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(timeout={self.timeout!r})"
