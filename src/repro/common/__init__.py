"""Shared primitives: error types, control-flow digests, id helpers.

These are used by every other subpackage; nothing here depends on the
rest of the library.
"""

from repro.common.errors import (
    AuditReject,
    DivergenceError,
    RejectReason,
    ReproError,
    WeblangError,
    SqlError,
)
from repro.common.digest import FlowDigest

__all__ = [
    "AuditReject",
    "DivergenceError",
    "FlowDigest",
    "RejectReason",
    "ReproError",
    "SqlError",
    "WeblangError",
]
