"""Error taxonomy for the library.

The verifier communicates rejection via :class:`AuditReject`, which carries a
:class:`RejectReason` code identifying which check failed.  The reason codes
mirror the checks in Figures 3, 5, 6, 12, and 13 of the paper, so tests can
assert not merely *that* a corrupt execution is rejected but *why*.
"""

from __future__ import annotations

import enum


class ReproError(Exception):
    """Base class for all library errors."""


class WeblangError(ReproError):
    """Raised for weblang compile-time or runtime faults (not audit logic)."""


class SqlError(ReproError):
    """Raised for SQL parse or execution faults (not audit logic)."""


class RejectReason(enum.Enum):
    """Why the verifier rejected a trace+reports pair.

    Members are grouped by the audit stage that raises them.
    """

    # Trace pre-checks (Section 3, "balanced" trace).
    TRACE_UNBALANCED = "trace_unbalanced"
    DUPLICATE_REQUEST_ID = "duplicate_request_id"

    # CheckLogs (Figure 5, lines 28-42).
    LOG_UNKNOWN_RID = "log_unknown_rid"
    LOG_BAD_OPNUM = "log_bad_opnum"
    LOG_DUPLICATE_OP = "log_duplicate_op"
    LOG_MISSING_OP = "log_missing_op"

    # AddStateEdges (Figure 5, line 54).
    LOG_OPNUM_NOT_INCREASING = "log_opnum_not_increasing"

    # CycleDetect (Figure 5, lines 11-12).
    ORDERING_CYCLE = "ordering_cycle"

    # CheckOp (Figure 12, lines 10-15).
    OP_NOT_IN_OPMAP = "op_not_in_opmap"
    OP_MISMATCH = "op_mismatch"

    # SimOp (Figure 12, line 22).
    NO_PRIOR_WRITE = "no_prior_write"

    # ReExec2 (Figure 12).
    GROUP_DIVERGED = "group_diverged"
    OP_COUNT_TOO_LOW = "op_count_too_low"
    OUTPUT_MISMATCH = "output_mismatch"

    # OOOExec (Figure 13).
    UNEXPECTED_EVENT = "unexpected_event"

    # Control-flow grouping reports (Section 3.1).
    GROUP_UNKNOWN_RID = "group_unknown_rid"

    # Non-determinism report plausibility (Section 4.6).
    NONDET_IMPLAUSIBLE = "nondet_implausible"
    NONDET_MISSING = "nondet_missing"

    # Versioned-storage build (Section 4.5).
    VERSIONED_BUILD_FAILED = "versioned_build_failed"

    # External-request verification (the §5.5 extension).
    EXTERNAL_MISMATCH = "external_mismatch"


class AuditReject(ReproError):
    """The verifier's REJECT outcome.

    Audit code raises this internally; the top-level entry points catch it
    and convert it into an :class:`repro.core.verifier.AuditResult`, so users
    of the public API never see the exception.
    """

    def __init__(self, reason: RejectReason, detail: str = ""):
        self.reason = reason
        self.detail = detail
        message = reason.value if not detail else f"{reason.value}: {detail}"
        super().__init__(message)


class DivergenceError(ReproError):
    """Control flow diverged inside a SIMD-on-demand group (Section 3.1).

    In strict mode the re-execution driver converts this into
    ``AuditReject(GROUP_DIVERGED)``; in resilient mode it falls back to
    re-executing the group's requests individually.
    """

    def __init__(self, detail: str = ""):
        self.detail = detail
        super().__init__(detail or "control flow diverged within group")


class MultivalueFallback(ReproError):
    """The accelerated interpreter hit a case it does not support in SIMD
    mode (e.g. an unsupported mixed-type multivalue, Section 4.3) and asks
    the driver to retry the group's requests one at a time.

    This mirrors acc-PHP's "retries, by separately re-executing the requests
    in sequence" behaviour; it is *not* a verdict about the executor.
    """

    def __init__(self, detail: str = ""):
        self.detail = detail
        super().__init__(detail or "unsupported multivalue operation")
