"""Incremental control-flow digests (Section 4.3).

The server's runtime maintains, per request, an incremental digest updated at
every branch with the branch kind and the location jumped to.  The digest
value is the opaque *control-flow tag* reported in the groupings ``C``.

We use 64-bit FNV-1a.  The digest only needs to be a deterministic,
well-distributed fingerprint of the branch sequence; it is untrusted input to
the verifier either way (a wrong tag merely mis-groups requests, which the
verifier detects via divergence or an output mismatch).
"""

from __future__ import annotations

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


_KIND_BASES: dict = {}


def _kind_base(kind: str) -> int:
    """One-time FNV hash of the branch-kind string, cached."""
    base = _KIND_BASES.get(kind)
    if base is None:
        base = _FNV_OFFSET
        for byte in kind.encode("ascii"):
            base = ((base ^ byte) * _FNV_PRIME) & _MASK
        _KIND_BASES[kind] = base
    return base


class FlowDigest:
    """Running digest over (branch-kind, target) updates.

    The per-update step is a single multiply-xor mix (the server pays this
    on *every branch* of *every request*, so it is the recording library's
    hottest path — Figure 8's "server CPU overhead" column).  Collision
    behaviour only affects grouping quality, never audit correctness: the
    tag is untrusted input either way (§3.1).
    """

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = _FNV_OFFSET

    def update(self, kind: str, target: int) -> None:
        """Fold one branch event into the digest.

        ``kind`` identifies the branch construct (e.g. ``"if"``, ``"loop"``,
        ``"tern"``, ``"sc"``) and ``target`` the location jumped to (AST
        node id plus taken arm).
        """
        self._value = (
            (self._value ^ (_kind_base(kind) + target)) * _FNV_PRIME
        ) & _MASK

    def update_str(self, token: str) -> None:
        """Fold an arbitrary string token (used for script names)."""
        value = self._value
        for byte in token.encode():
            value = ((value ^ byte) * _FNV_PRIME) & _MASK
        self._value = value

    @property
    def value(self) -> int:
        return self._value

    def hexdigest(self) -> str:
        return f"{self._value:016x}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowDigest({self.hexdigest()})"


def fnv1a(data: bytes) -> int:
    """One-shot 64-bit FNV-1a over ``data`` (used by tests and tools)."""
    value = _FNV_OFFSET
    for byte in data:
        value = ((value ^ byte) * _FNV_PRIME) & _MASK
    return value
