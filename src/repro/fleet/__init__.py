"""repro.fleet: one coordinator fanning epochs out to remote workers.

The paper's deployment model is an auditor re-executing a busy
server's trace far from the machine that recorded it; at production
scale that auditor is itself a fleet.  This package connects the two
seams built for exactly this moment:

* the **epoch work unit** already crosses process boundaries by value
  (:mod:`repro.core.epochwork`: pickled payload in, pickled
  :class:`~repro.core.pipeline.AuditResult` out — REJECTs included,
  with the partial stats the pipeline accumulated);
* the **wire** already does framing, capability negotiation, and
  heartbeats (:mod:`repro.net.protocol`; the fleet adds the ``WORK`` /
  ``RESULT`` / ``WORKER_HELLO`` / ``WORKER_BYE`` kinds behind
  ``FLAG_FLEET``).

:class:`~repro.fleet.coordinator.FleetCoordinator` implements the
:class:`~repro.core.epochpool.EpochPool` executor contract
(``run_epoch`` / ``close`` / ``serial_fallbacks``), so the existing
concurrent drivers — ``sharded_audit`` and ``AuditSession`` — inherit
strict feed-order merging, ``prepass_depth`` backpressure, and
REJECT-drain semantics unchanged; only *where* an epoch executes
moves.  :class:`~repro.fleet.worker.FleetWorker` is the daemon side:
``repro worker --join HOST:PORT`` registers, pulls epochs, runs them
through the stock pipeline with any registered backend, and streams
verdicts back.

Failure policy (``docs/fleet.md`` has the full matrix): heartbeat
miss, task deadline, disconnect, or a worker-side crash re-dispatches
the epoch to the next idle worker, and local serial execution is the
fleet's last-resort worker — infrastructure failures are never
verdicts, and the final merged verdict is bit-identical to a
single-host run.
"""

from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.worker import FleetWorker

__all__ = ["FleetCoordinator", "FleetWorker"]
