"""The fleet coordinator: an ``EpochPool``-shaped pool of remote hosts.

:class:`FleetCoordinator` is a drop-in for
:class:`~repro.core.epochpool.EpochPool` in the concurrent epoch
drivers: ``run_epoch`` blocks for one epoch's
:class:`~repro.core.pipeline.AuditResult`, ``close`` tears the fleet
down, and ``serial_fallbacks`` counts epochs that ran locally.
Because the drivers already merge results strictly in feed order,
bound speculation with ``prepass_depth``, and drain in-flight epochs
after a REJECT, the coordinator inherits the whole single-host merge
discipline for free — it only changes *where* an epoch executes.

Dispatch contract (one driver thread per in-flight epoch):

* a worker is checked out *exclusively* for one epoch — its socket
  carries exactly one ``WORK`` frame, then ``HEARTBEAT`` frames
  (liveness, resetting the miss window) until the ``RESULT`` arrives;
* **heartbeat miss** (no frame for ``heartbeat_timeout``), **task
  deadline** (``task_timeout`` exceeded overall), disconnect, or a
  protocol violation drops the worker and **re-dispatches** the epoch
  to the next idle worker — generalizing the killed-process serial
  fallback of ``EpochPool``;
* a worker-side crash (``RESULT`` with ``ok: false``) is an
  infrastructure failure, never a verdict: the epoch re-runs locally
  (reproducing any genuine deterministic crash) and the worker —
  which is alive and honest about its failure — returns to the pool;
* with no live workers (none joined, or all dead), the coordinator
  itself is the last-resort worker: the epoch runs serially inline,
  exactly the ``EpochPool`` degradation path;
* ``redundancy >= 2`` dispatches each epoch to that many workers and
  cross-checks the verdicts (accepted/reason/detail/bodies/stats); a
  disagreement is treated like an infrastructure failure — the local
  inline run arbitrates.
"""

from __future__ import annotations

import itertools
import pickle
import queue
import socket
import threading

from repro.common.clock import Deadline
from repro.core.epochwork import (
    decode_result_frame,
    encode_work_frame,
    encode_work_unit,
    run_epoch_inline,
)
from repro.net.protocol import (
    FLAG_FLEET,
    HEARTBEAT,
    HELLO,
    RESULT,
    WORK,
    WORKER_BYE,
    WORKER_HELLO,
    FrameSocket,
    ProtocolError,
    TransportError,
    parse_endpoint,
)

__all__ = ["FleetCoordinator"]


class _WorkerLost(Exception):
    """The worker can no longer be trusted with work (disconnect,
    heartbeat miss, deadline, protocol violation): drop it and
    re-dispatch the epoch."""


class _WorkerFailed(Exception):
    """The worker reported it could not *execute* the work unit
    (``ok: false``): the worker stays, the epoch re-runs locally."""


class _RemoteWorker:
    __slots__ = ("name", "fsock", "dead")

    def __init__(self, name: str, fsock: FrameSocket):
        self.name = name
        self.fsock = fsock
        self.dead = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_RemoteWorker {self.name} dead={self.dead}>"


class FleetCoordinator:
    """Listen for fleet workers and fan epoch work units out to them.

    Thread-safe: the concurrent drivers call :meth:`run_epoch` from
    several epoch threads at once; each call checks out one idle
    worker (or runs inline as the last resort).
    """

    def __init__(self, listen: str, *, min_workers: int = 0,
                 task_timeout: float | None = None,
                 redundancy: int = 1,
                 heartbeat_timeout: float | None = 30.0,
                 handshake_timeout: float = 10.0,
                 join_timeout: float | None = 60.0):
        host, port = parse_endpoint(listen)
        self.min_workers = max(0, int(min_workers))
        self.task_timeout = task_timeout
        self.redundancy = max(1, int(redundancy))
        self.heartbeat_timeout = heartbeat_timeout
        self.handshake_timeout = handshake_timeout
        self.join_timeout = join_timeout

        self._cond = threading.Condition()
        self._workers: list[_RemoteWorker] = []
        self._idle: queue.Queue[_RemoteWorker] = queue.Queue()
        self._closed = False
        self._epoch_ids = itertools.count()

        #: Epochs that ran serially in the coordinator process (the
        #: last-resort worker) — same meaning as ``EpochPool``'s.
        self.serial_fallbacks = 0
        #: Epochs whose verdict came back over the wire.
        self.remote_epochs = 0
        #: Epoch dispatches abandoned on a dead/straggling worker and
        #: requeued (each increment is one lost worker attempt).
        self.redispatches = 0
        #: Workers that ever completed registration.
        self.workers_joined = 0
        #: ``ok: false`` RESULTs (worker-side crashes, not verdicts).
        self.worker_failures = 0
        #: Redundant dispatches that produced >= 2 comparable verdicts.
        self.cross_checks = 0
        #: Cross-checks whose verdicts disagreed (locally arbitrated).
        self.cross_check_mismatches = 0

        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            server.bind((host, port))
            server.listen(16)
        except OSError:
            server.close()
            raise
        server.settimeout(0.2)
        self._server = server
        self.host, self.port = server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True)
        self._accept_thread.start()

    @property
    def endpoint(self) -> str:
        """The actually-bound ``HOST:PORT`` (resolves port 0)."""
        return f"{self.host}:{self.port}"

    # -- worker registration ----------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                with self._cond:
                    if self._closed:
                        return
                continue
            except OSError:
                return
            threading.Thread(target=self._handshake, args=(conn,),
                             name="fleet-join", daemon=True).start()

    def _handshake(self, conn: socket.socket) -> None:
        fsock = FrameSocket(conn)
        try:
            deadline = Deadline(self.handshake_timeout)
            flags = fsock.recv_preamble(deadline)
            if not flags & FLAG_FLEET:
                raise ProtocolError("peer does not speak fleet frames")
            kind, obj = fsock.recv_frame(deadline)
            if kind != WORKER_HELLO:
                raise ProtocolError(
                    f"expected WORKER_HELLO, got kind {kind:#x}")
            name = ""
            if isinstance(obj, dict):
                name = str(obj.get("name") or "")
            fsock.send_preamble(FLAG_FLEET)
            fsock.send_frame(HELLO, {"role": "fleet-coordinator"})
            fsock.settimeout(None)
        except (TransportError, ProtocolError, ValueError):
            fsock.close()
            return
        with self._cond:
            if self._closed:
                self._say_goodbye(fsock)
                return
            self.workers_joined += 1
            worker = _RemoteWorker(name or f"worker-{self.workers_joined}",
                                   fsock)
            self._workers.append(worker)
            self._cond.notify_all()
        self._idle.put(worker)

    def _await_min_workers(self) -> None:
        if self.min_workers <= 0:
            return
        deadline = Deadline(self.join_timeout)
        with self._cond:
            while (self.workers_joined < self.min_workers
                   and not self._closed and not deadline.expired()):
                # Short slices so close() and the join timeout are both
                # observed promptly.
                self._cond.wait(timeout=0.1)

    # -- worker checkout --------------------------------------------------

    def _live_workers(self) -> int:
        with self._cond:
            return sum(1 for w in self._workers if not w.dead)

    def _checkout(self) -> _RemoteWorker | None:
        """Block until an idle worker is available; ``None`` once no
        live worker remains (the caller runs the epoch inline)."""
        while True:
            if self._live_workers() == 0:
                return None
            try:
                worker = self._idle.get(timeout=0.05)
            except queue.Empty:
                with self._cond:
                    if self._closed:
                        return None
                continue
            if worker.dead:
                continue
            return worker

    def _checkout_nowait(self) -> _RemoteWorker | None:
        while True:
            try:
                worker = self._idle.get_nowait()
            except queue.Empty:
                return None
            if not worker.dead:
                return worker

    def _checkin(self, worker: _RemoteWorker) -> None:
        if worker.dead:
            return
        with self._cond:
            closed = self._closed
        if closed:
            return
        self._idle.put(worker)

    def _discard(self, worker: _RemoteWorker) -> None:
        with self._cond:
            worker.dead = True
            if worker in self._workers:
                self._workers.remove(worker)
        worker.fsock.close()

    # -- the EpochPool contract -------------------------------------------

    def run_epoch(self, app, trace, reports, initial_state, options):
        """Audit one epoch slice somewhere in the fleet; blocks for the
        result.  Never raises on infrastructure failure — dead and
        straggling workers re-dispatch, and the coordinator itself is
        the last-resort worker."""
        with self._cond:
            if self._closed:
                raise RuntimeError("fleet coordinator is closed")
        try:
            payload = encode_work_unit(app, trace, reports, initial_state,
                                       options)
        except (pickle.PickleError, TypeError, AttributeError):
            return self._run_inline(app, trace, reports, initial_state,
                                    options)
        self._await_min_workers()
        epoch = next(self._epoch_ids)
        if self.redundancy > 1:
            result = self._run_redundant(epoch, payload)
        else:
            result = self._run_remote(epoch, payload)
        if result is None:
            return self._run_inline(app, trace, reports, initial_state,
                                    options)
        self.remote_epochs += 1
        return result

    def _run_inline(self, app, trace, reports, initial_state, options):
        self.serial_fallbacks += 1
        return run_epoch_inline(app, trace, reports, initial_state,
                                options)

    def _run_remote(self, epoch: int, payload: bytes):
        """Dispatch with re-dispatch-on-loss; ``None`` means "run it
        locally" (no workers, or a surviving worker reported a crash)."""
        while True:
            worker = self._checkout()
            if worker is None:
                return None
            try:
                result = self._dispatch(worker, epoch, payload)
            except _WorkerLost:
                self._discard(worker)
                self.redispatches += 1
                continue
            except _WorkerFailed:
                self.worker_failures += 1
                self._checkin(worker)
                return None
            self._checkin(worker)
            return result

    def _run_redundant(self, epoch: int, payload: bytes):
        """Dispatch one epoch to up to ``redundancy`` workers and
        cross-check the verdicts.  Degrades gracefully: fewer idle
        workers → fewer replicas; a disagreement returns ``None`` so
        the local inline run arbitrates."""
        primary = self._checkout()
        if primary is None:
            return None
        replicas = [primary]
        while len(replicas) < self.redundancy:
            extra = self._checkout_nowait()
            if extra is None:
                break
            replicas.append(extra)

        outcomes: list[tuple | None] = [None] * len(replicas)

        def _one(slot: int, worker: _RemoteWorker) -> None:
            try:
                outcomes[slot] = ("ok", self._dispatch(worker, epoch,
                                                       payload))
            except _WorkerLost:
                outcomes[slot] = ("lost", None)
            except _WorkerFailed:
                outcomes[slot] = ("failed", None)

        threads = [threading.Thread(target=_one, args=(slot, worker),
                                    name="fleet-replica", daemon=True)
                   for slot, worker in enumerate(replicas[1:], start=1)]
        for thread in threads:
            thread.start()
        _one(0, replicas[0])
        for thread in threads:
            thread.join()

        results = []
        lost = False
        for (state, result), worker in zip(outcomes, replicas):
            if state == "ok":
                self._checkin(worker)
                results.append(result)
            elif state == "lost":
                self._discard(worker)
                self.redispatches += 1
                lost = True
            else:
                self.worker_failures += 1
                self._checkin(worker)
        if not results:
            # Every replica died: this is the straggler-requeue path.
            # Every replica merely crashed: local re-run arbitrates.
            return self._run_remote(epoch, payload) if lost else None
        if len(results) >= 2:
            self.cross_checks += 1
            if not self._results_agree(results[0], results[1]):
                self.cross_check_mismatches += 1
                return None
        return results[0]

    @staticmethod
    def _results_agree(a, b) -> bool:
        """Bit-level agreement on everything deterministic (phases are
        wall-clock timings, so they are excluded)."""
        return (a.accepted == b.accepted
                and a.reason == b.reason
                and a.detail == b.detail
                and a.produced == b.produced
                and a.stats == b.stats)

    def _dispatch(self, worker: _RemoteWorker, epoch: int, payload: bytes):
        """One WORK → (HEARTBEAT...) → RESULT round trip on a worker
        held exclusively by this thread."""
        task = Deadline(self.task_timeout)
        try:
            worker.fsock.send_frame(WORK, encode_work_frame(epoch, payload))
            while True:
                step = self.heartbeat_timeout
                remaining = task.remaining()
                if remaining is not None:
                    if remaining <= 0:
                        raise _WorkerLost(
                            f"{worker.name}: task deadline exceeded")
                    step = (remaining if step is None
                            else min(step, remaining))
                kind, obj = worker.fsock.recv_frame(Deadline(step))
                if kind == HEARTBEAT:
                    # Liveness: the worker is computing.  The *task*
                    # deadline keeps ticking — heartbeats prove life,
                    # not progress, so a straggler still gets requeued.
                    continue
                if kind == RESULT:
                    try:
                        repoch, ok, result, error = decode_result_frame(obj)
                    except ValueError as exc:
                        raise _WorkerLost(
                            f"{worker.name}: bad RESULT: {exc}") from exc
                    if repoch != epoch:
                        raise _WorkerLost(
                            f"{worker.name}: RESULT for epoch {repoch}, "
                            f"expected {epoch}")
                    if not ok:
                        raise _WorkerFailed(error or "worker crash")
                    return result
                if kind == WORKER_BYE:
                    raise _WorkerLost(f"{worker.name}: worker left")
                raise _WorkerLost(
                    f"{worker.name}: unexpected frame kind {kind:#x}")
        except (TransportError, ProtocolError) as exc:
            # IdleTimeout (a TransportError) is the heartbeat miss.
            raise _WorkerLost(f"{worker.name}: {exc}") from exc

    # -- lifecycle --------------------------------------------------------

    @staticmethod
    def _say_goodbye(fsock: FrameSocket) -> None:
        try:
            fsock.send_frame(WORKER_BYE, {})
        except TransportError:
            pass
        fsock.close()

    def close(self) -> None:
        """Dismiss the fleet.  Idempotent; callers must have drained
        their in-flight epochs first (the drivers do)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
            self._cond.notify_all()
        try:
            self._server.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5)
        # Anything still parked in the idle queue is also in `workers`;
        # drain the queue so no thread can check a closed worker out.
        while True:
            try:
                self._idle.get_nowait()
            except queue.Empty:
                break
        for worker in workers:
            worker.dead = True
            self._say_goodbye(worker.fsock)

    def __enter__(self) -> FleetCoordinator:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FleetCoordinator {self.endpoint} "
                f"joined={self.workers_joined} "
                f"remote={self.remote_epochs} "
                f"fallbacks={self.serial_fallbacks}>")
