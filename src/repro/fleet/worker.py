"""The fleet worker daemon: join a coordinator, audit epochs, repeat.

``repro worker --join HOST:PORT`` runs one :class:`FleetWorker`: it
connects (with retry — workers are routinely launched before the
coordinator binds), registers with ``WORKER_HELLO`` behind the
``FLAG_FLEET`` capability bit, then serves ``WORK`` frames until the
coordinator says ``WORKER_BYE`` or disconnects.

Each work unit is the byte-identical pickled payload the local
:class:`~repro.core.epochpool.EpochPool` would submit to a worker
process, executed through the same single entry point
(:func:`repro.core.epochwork.run_work_unit`): the stock pipeline, the
serial chunk plan, any registered backend.  The worker needs no
workload definition of its own — the application crosses the wire
inside the payload.

While an epoch runs, a background thread streams ``HEARTBEAT`` frames
so the coordinator can tell "slow" from "dead".  A crash inside the
pipeline is reported as ``RESULT ok: false`` — an infrastructure
failure for the coordinator to re-run locally, never a verdict.  A
pipeline REJECT is *not* a crash: it is a result whose pickled
:class:`~repro.core.pipeline.AuditResult` carries the partial stats
the pipeline accumulated before rejecting, so a fleet REJECT reports
the same stats as a local one.
"""

from __future__ import annotations

import os
import threading

from repro.common.clock import Deadline
from repro.core.epochwork import (
    decode_work_frame,
    encode_error_frame,
    encode_result_frame,
    run_work_unit,
)
from repro.net.protocol import (
    FLAG_FLEET,
    HEARTBEAT,
    HELLO,
    RESULT,
    WORK,
    WORKER_BYE,
    WORKER_HELLO,
    FrameSocket,
    ProtocolError,
    TransportError,
    connect_endpoint,
    parse_endpoint,
)

__all__ = ["FleetWorker"]


class FleetWorker:
    """One worker process's client side of the fleet protocol."""

    def __init__(self, endpoint: str, *, name: str | None = None,
                 heartbeat_interval: float = 2.0,
                 connect_timeout: float | None = 30.0,
                 handshake_timeout: float = 10.0):
        host, port = parse_endpoint(endpoint)
        if port <= 0:
            raise ValueError(f"cannot join port {port}; need a bound port")
        self.host = host
        self.port = port
        self.name = name or f"{os.uname().nodename}-{os.getpid()}"
        self.heartbeat_interval = max(0.05, float(heartbeat_interval))
        self.connect_timeout = connect_timeout
        self.handshake_timeout = handshake_timeout
        #: Epochs executed to a verdict (ACCEPT *or* REJECT).
        self.epochs_run = 0
        #: Epochs that crashed (reported as ``ok: false``).
        self.epochs_failed = 0
        self._busy = threading.Event()
        self._stop = threading.Event()
        self._send_lock = threading.Lock()

    # -- joining ----------------------------------------------------------

    def _connect(self) -> FrameSocket:
        """TCP-connect with retry (the coordinator may not have bound
        yet), then register.  Raises :class:`TransportError` once the
        connect deadline expires."""
        deadline = Deadline(self.connect_timeout)
        while True:
            try:
                fsock = connect_endpoint(self.host, self.port, timeout=1.0)
                break
            except TransportError:
                if deadline.expired():
                    raise
                deadline.sleep(0.1)
        try:
            fsock.send_preamble(FLAG_FLEET)
            fsock.send_frame(WORKER_HELLO,
                             {"name": self.name, "pid": os.getpid()})
            hs = Deadline(self.handshake_timeout)
            flags = fsock.recv_preamble(hs)
            if not flags & FLAG_FLEET:
                raise ProtocolError(
                    "coordinator does not speak fleet frames")
            kind, _obj = fsock.recv_frame(hs)
            if kind != HELLO:
                raise ProtocolError(f"expected HELLO, got kind {kind:#x}")
            fsock.settimeout(None)
        except (TransportError, ProtocolError):
            fsock.close()
            raise
        return fsock

    # -- serving ----------------------------------------------------------

    def _heartbeat_loop(self, fsock: FrameSocket) -> None:
        while not self._stop.is_set():
            if not self._busy.wait(timeout=0.2):
                continue
            with self._send_lock:
                # Re-checked under the lock: never send a heartbeat
                # after the RESULT for the epoch it was proving.
                if self._stop.is_set() or not self._busy.is_set():
                    continue
                try:
                    fsock.send_frame(HEARTBEAT, {})
                except TransportError:
                    return
            self._stop.wait(self.heartbeat_interval)

    def _serve(self, fsock: FrameSocket) -> None:
        heartbeats = threading.Thread(target=self._heartbeat_loop,
                                      args=(fsock,),
                                      name="fleet-heartbeat", daemon=True)
        heartbeats.start()
        try:
            while True:
                try:
                    kind, obj = fsock.recv_frame(Deadline(None))
                except (TransportError, ProtocolError):
                    return  # coordinator gone: the daemon's natural end
                if kind == WORKER_BYE:
                    return
                if kind == HEARTBEAT:
                    continue
                if kind != WORK:
                    return  # a peer this confused gets no more epochs
                try:
                    epoch, payload = decode_work_frame(obj)
                except ValueError:
                    return
                self._busy.set()
                try:
                    try:
                        result = run_work_unit(payload)
                        body = encode_result_frame(epoch, result)
                    except Exception as exc:
                        # A crash, not a verdict: the coordinator
                        # re-runs the epoch locally.  (AuditReject
                        # never reaches here — the pipeline converts
                        # it into a REJECT *result* with partial
                        # stats, shipped through the branch above.)
                        self.epochs_failed += 1
                        body = encode_error_frame(
                            epoch, f"{type(exc).__name__}: {exc}")
                    else:
                        self.epochs_run += 1
                finally:
                    self._busy.clear()
                try:
                    with self._send_lock:
                        fsock.send_frame(RESULT, body)
                except TransportError:
                    return
        finally:
            self._stop.set()
            heartbeats.join(timeout=5)

    def run(self) -> int:
        """Join, serve until dismissed or disconnected, and return the
        number of epochs executed to a verdict."""
        fsock = self._connect()
        try:
            self._serve(fsock)
        finally:
            self._stop.set()
            fsock.close()
        return self.epochs_run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FleetWorker {self.name} -> {self.host}:{self.port} "
                f"run={self.epochs_run} failed={self.epochs_failed}>")
