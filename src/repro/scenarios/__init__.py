"""The scenario factory: synthetic traffic at scale, and attacks on it.

Two halves (ROADMAP: "million-request scenario factory + adversarial
tamper campaign"):

* :mod:`repro.scenarios.generator` — a **streaming workload
  generator**: Zipf-skewed traffic from a large simulated-user
  population over the three bundled apps plus the cart/checkout app,
  emitted epoch by epoch through :class:`~repro.io.BundleWriter`
  without ever materializing the whole trace; deterministic from one
  seed, checkpoint/resumable, with per-group (n, α, ℓ) stats emitted
  as a JSON profile (``repro synth``).
* :mod:`repro.scenarios.fuzz` — a **tamper fuzzer**: randomized
  mutations of a recorded bundle (drop/duplicate/reorder records, flip
  responses and reports, splice epochs, truncate mid-record, corrupt
  the wire CRC), asserting the stock audit REJECTS every one and
  shrinking any ACCEPTed mutation to a minimal reproducer
  (``repro fuzz``).
"""

from repro.scenarios.generator import (
    ScenarioSpec,
    TrafficStream,
    build_scenario_app,
    synthesize,
)
from repro.scenarios.fuzz import (
    FuzzReport,
    MutationOutcome,
    fuzz_bundle,
    shrink_edits,
)

__all__ = [
    "FuzzReport",
    "MutationOutcome",
    "ScenarioSpec",
    "TrafficStream",
    "build_scenario_app",
    "fuzz_bundle",
    "shrink_edits",
    "synthesize",
]
