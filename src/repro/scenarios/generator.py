"""Streaming scenario generator: bounded-memory traffic synthesis.

The generator simulates a large user population (``spec.users``, a
million by default) as a *bounded pool* of concurrently active session
state machines: at any moment at most ``spec.max_sessions`` sessions
are live, each planned up front as a JSON-able dict, so memory is
O(pool + epoch), never O(trace).  User activity is Zipf-skewed via
log-uniform rank sampling (O(1) per pick — no million-entry weight
table), and each app's data population comes from the same
``population(scale)`` its workload factory uses, so a synthesized
bundle audits under plain ``--workload NAME --scale X``.

Synthesis serves the stream epoch by epoch through a fresh
:class:`~repro.server.executor.Executor` per batch whose initial state
chains from the previous batch's final state — the same §4.1
continuous-operation contract the audit session verifies — and writes
each epoch through :class:`~repro.io.BundleWriter` (segmented layout)
as soon as it is served.  One shared :class:`NondetSource` /
:class:`RandomScheduler` pair spans all batches so time, ``uniqid``
and scheduling stay continuous; everything (generator pool, PRNGs,
server state) serializes into a checkpoint, making multi-hour runs
resumable mid-stream with a bit-identical suffix.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import asdict, dataclass, field

from repro.apps import minicart, minicrp, miniforum, miniwiki
from repro.core import Auditor
from repro.core.config import AuditConfig
from repro.core.profile import group_profile
from repro.io import BundleWriter, state_from_json, state_to_json
from repro.server.app import Application
from repro.server.executor import Executor
from repro.server.nondet import NondetSource
from repro.server.scheduler import RandomScheduler
from repro.trace.events import Request
from repro.workloads import cart as cart_mod
from repro.workloads import forum as forum_mod
from repro.workloads import hotcrp as hotcrp_mod
from repro.workloads import wiki as wiki_mod
from repro.workloads.zipf import zipf_sample

CHECKPOINT_FORMAT = "ssco-synth-checkpoint"
CHECKPOINT_VERSION = 1

#: Canonical workload names the factory synthesizes for.
WORKLOADS = ("wiki", "forum", "hotcrp", "cart")


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything that determines a synthesized stream, bit for bit."""

    workload: str = "cart"
    requests: int = 10_000
    scale: float = 0.05
    seed: int = 0
    #: Simulated user population (rank-skewed activity).
    users: int = 1_000_000
    #: Bound on concurrently active session state machines.
    max_sessions: int = 64
    #: Requests served (and written) per epoch batch.
    epoch_size: int = 500
    #: Server's max in-flight requests within a batch.
    concurrency: int = 8

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown scenario workload {self.workload!r} "
                f"(expected one of {', '.join(WORKLOADS)})"
            )
        if self.requests < 1:
            raise ValueError("spec.requests must be positive")
        if self.epoch_size < 1:
            raise ValueError("spec.epoch_size must be positive")
        if self.max_sessions < 1:
            raise ValueError("spec.max_sessions must be positive")
        if self.users < 1:
            raise ValueError("spec.users must be positive")

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> ScenarioSpec:
        return cls(**data)


def build_scenario_app(workload: str, scale: float) -> Application:
    """The app a synthesized bundle runs against — built from the same
    ``population(scale)`` the workload factories use, so audit/fuzz can
    rebuild it from ``--workload``/``--scale`` alone."""
    if workload == "wiki":
        return miniwiki.build_app(
            pages=wiki_mod.population(scale)["pages"]
        )
    if workload == "forum":
        return miniforum.build_app(
            topics=forum_mod.population(scale)["topics"]
        )
    if workload == "hotcrp":
        return minicrp.build_app()
    if workload == "cart":
        pop = cart_mod.population(scale)
        return minicart.build_app(
            products=pop["products"], stock=pop["stock"]
        )
    raise ValueError(f"unknown scenario workload {workload!r}")


# ---------------------------------------------------------------------------
# Per-app session models.  A session is a JSON-able dict
# {"steps": [...], "pos": int, ...}: the whole plan is drawn at
# creation, so (steps, pos) captures all remaining behaviour — which is
# what makes checkpoints exact.


class _CartModel:
    prefix = "s"
    label = "Cart/Checkout"

    def population(self, scale: float) -> dict:
        return cart_mod.population(scale)

    def new_session(self, rng: random.Random, user: int, pop: dict,
                    serial: int, extras: dict) -> dict:
        return cart_mod.new_session(rng, user, pop["products"], serial)

    def request(self, session: dict, rid: str, extras: dict) -> Request:
        return cart_mod.session_request(session, rid)


class _WikiModel:
    prefix = "w"
    label = "MediaWiki"

    def population(self, scale: float) -> dict:
        return wiki_mod.population(scale)

    def new_session(self, rng: random.Random, user: int, pop: dict,
                    serial: int, extras: dict) -> dict:
        titles = pop["titles"]
        picks = zipf_sample(rng, titles, wiki_mod.ZIPF_BETA, 6)
        steps: list[list] = []
        for index in range(rng.randint(1, 6)):
            title = picks[index % len(picks)]
            roll = rng.random()
            if roll < 0.03:
                editor = rng.randrange(pop["editors"])
                steps.append(["edit", title, editor, serial])
            elif roll < 0.05:
                steps.append(["list"])
            elif roll < 0.06:
                steps.append(["search", title[:6]])
            elif roll < 0.07:
                steps.append(["history", title])
            elif roll < 0.075:
                steps.append(["random"])
            else:
                steps.append(["view", title])
        return {"user": user, "steps": steps, "pos": 0}

    def request(self, session: dict, rid: str, extras: dict) -> Request:
        step = session["steps"][session["pos"]]
        op = step[0]
        if op == "edit":
            _, title, editor, serial = step
            return Request(
                rid, "wiki_edit.php", get={"title": title},
                post={"body": f"Edited body of {title}, session "
                              f"{serial}. ''Synthesized''.",
                      "summary": f"synth edit {serial}"},
                cookies={"sess": f"editor{editor}"},
            )
        if op == "list":
            return Request(rid, "wiki_list.php")
        if op == "search":
            return Request(rid, "wiki_search.php", get={"q": step[1]})
        if op == "history":
            return Request(rid, "wiki_history.php",
                           get={"title": step[1]})
        if op == "random":
            return Request(rid, "wiki_random.php")
        return Request(rid, "wiki_view.php", get={"title": step[1]})


class _ForumModel:
    prefix = "f"
    label = "phpBB"

    def population(self, scale: float) -> dict:
        return forum_mod.population(scale)

    def new_session(self, rng: random.Random, user: int, pop: dict,
                    serial: int, extras: dict) -> dict:
        topics = zipf_sample(rng, pop["topic_ids"], 1.0, 5)
        registered = rng.random() < forum_mod.REGISTERED_RATIO
        name = pop["users"][user % len(pop["users"])]
        steps: list[list] = []
        if registered:
            steps.append(["login", name])
            for index in range(rng.randint(1, 4)):
                topic = topics[index % len(topics)]
                if rng.random() < 0.3:
                    steps.append(["reply", topic, name, serial])
                else:
                    steps.append(["view", topic, name])
        else:
            for index in range(rng.randint(1, 4)):
                if rng.random() < 0.08:
                    steps.append(["topics", None])
                else:
                    steps.append(["view", topics[index % len(topics)],
                                  None])
        return {"user": user, "steps": steps, "pos": 0}

    def request(self, session: dict, rid: str, extras: dict) -> Request:
        step = session["steps"][session["pos"]]
        op = step[0]
        if op == "login":
            return Request(rid, "forum_login.php",
                           post={"name": step[1]},
                           cookies={"sess": step[1]})
        if op == "reply":
            _, topic, name, serial = step
            return Request(
                rid, "forum_reply.php", get={"t": str(topic)},
                post={"body": f"Synthesized reply {serial} to topic "
                              f"{topic}: works for me."},
                cookies={"sess": name},
            )
        if op == "topics":
            cookies = {"sess": step[1]} if step[1] else {}
            return Request(rid, "forum_topics.php", cookies=cookies)
        _, topic, name = step
        cookies = {"sess": name} if name else {}
        return Request(rid, "forum_view.php", get={"t": str(topic)},
                       cookies=cookies)


class _HotcrpModel:
    prefix = "c"
    label = "HotCRP"

    def population(self, scale: float) -> dict:
        return hotcrp_mod.population(scale)

    def new_session(self, rng: random.Random, user: int, pop: dict,
                    serial: int, extras: dict) -> dict:
        steps: list[list] = []
        if rng.random() < 0.4:
            email = f"author{user % 997:03d}@inst.edu"
            steps.append(["login", email, "author"])
            steps.append(["submit", serial])
            extras["submits"] = extras.get("submits", 0) + 1
        else:
            email = pop["reviewers"][user % len(pop["reviewers"])]
            steps.append(["login", email, "reviewer"])
            known = max(1, extras.get("submits", 0))
            for index in range(rng.randint(1, 4)):
                pid = rng.randint(1, known)
                roll = rng.random()
                if roll < 0.25:
                    steps.append(["review", pid, rng.randint(1, 5),
                                  serial])
                elif roll < 0.35:
                    steps.append(["list"])
                else:
                    steps.append(["paper", pid])
        return {"user": user, "steps": steps, "pos": 0}

    def request(self, session: dict, rid: str, extras: dict) -> Request:
        step = session["steps"][session["pos"]]
        op = step[0]
        email = None
        for candidate in session["steps"]:
            if candidate[0] == "login":
                email = candidate[1]
        cookies = {"sess": email} if email else {}
        if op == "login":
            return Request(rid, "crp_login.php",
                           post={"email": step[1], "role": step[2]},
                           cookies=cookies)
        if op == "submit":
            serial = step[1]
            return Request(
                rid, "crp_submit.php",
                post={"title": f"Synthesized Paper {serial}",
                      "abstract": f"We synthesize workload {serial}."},
                cookies=cookies,
            )
        if op == "review":
            _, pid, score, serial = step
            return Request(
                rid, "crp_review.php", get={"p": str(pid)},
                post={"body": f"Synthesized review {serial} of paper "
                              f"{pid}: solid work.",
                      "score": str(score)},
                cookies=cookies,
            )
        if op == "list":
            return Request(rid, "crp_list.php", cookies=cookies)
        return Request(rid, "crp_paper.php", get={"p": str(step[1])},
                       cookies=cookies)


_MODELS = {
    "wiki": _WikiModel(),
    "forum": _ForumModel(),
    "hotcrp": _HotcrpModel(),
    "cart": _CartModel(),
}


def _rng_state_to_json(rng: random.Random) -> list:
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def _rng_state_from_json(state: list) -> tuple:
    version, internal, gauss = state
    return (version, tuple(internal), gauss)


class TrafficStream:
    """The bounded-pool request stream for one :class:`ScenarioSpec`.

    Deterministic from ``spec.seed``; :meth:`checkpoint` captures the
    complete generator state (PRNG, live sessions, counters) as a
    JSON-able dict, and constructing a stream from that checkpoint
    continues the exact request sequence.
    """

    def __init__(self, spec: ScenarioSpec, state: dict | None = None):
        self.spec = spec
        self.model = _MODELS[spec.workload]
        self.pop = self.model.population(spec.scale)
        if state is None:
            self._rng = random.Random(spec.seed)
            self.emitted = 0
            self.serial = 0
            self.sessions: list[dict] = []
            self.extras: dict = {}
        else:
            self._rng = random.Random()
            self._rng.setstate(_rng_state_from_json(state["rng"]))
            self.emitted = int(state["emitted"])
            self.serial = int(state["serial"])
            self.sessions = [dict(s) for s in state["sessions"]]
            self.extras = dict(state["extras"])

    @property
    def exhausted(self) -> bool:
        return self.emitted >= self.spec.requests

    def _next(self) -> Request:
        rng = self._rng
        spec = self.spec
        if not self.sessions or (
            len(self.sessions) < spec.max_sessions
            and rng.random() < 0.5
        ):
            self.serial += 1
            # Log-uniform rank: approximate Zipf activity skew over a
            # population too large for a weight table.
            user = int(spec.users ** rng.random()) - 1
            self.sessions.append(self.model.new_session(
                rng, user, self.pop, self.serial, self.extras
            ))
        session = self.sessions[rng.randrange(len(self.sessions))]
        rid = f"{self.model.prefix}{self.emitted:08d}"
        request = self.model.request(session, rid, self.extras)
        session["pos"] += 1
        if session["pos"] >= len(session["steps"]):
            self.sessions.remove(session)
        self.emitted += 1
        return request

    def take(self, count: int) -> list[Request]:
        """Up to ``count`` further requests (bounded by the spec)."""
        batch: list[Request] = []
        while len(batch) < count and not self.exhausted:
            batch.append(self._next())
        return batch

    def __iter__(self):
        while not self.exhausted:
            yield self._next()

    def checkpoint(self) -> dict:
        return {
            "rng": _rng_state_to_json(self._rng),
            "emitted": self.emitted,
            "serial": self.serial,
            "sessions": [dict(s) for s in self.sessions],
            "extras": dict(self.extras),
        }


# ---------------------------------------------------------------------------
# Bundle synthesis.


@dataclass
class SynthProgress:
    """Per-epoch progress callback payload."""

    epoch: int
    requests: int
    events: int
    elapsed_seconds: float
    verified: bool | None = None
    profile_groups: int = field(default=0)


def synthesize(
    spec: ScenarioSpec,
    out_path: str,
    *,
    profile_path: str | None = None,
    checkpoint: dict | None = None,
    checkpoint_path: str | None = None,
    config: AuditConfig | None = None,
    progress=None,
) -> dict:
    """Stream ``spec.requests`` synthesized requests into ``out_path``.

    Serves the traffic epoch by epoch (each batch's initial state
    chained from the previous batch's final state) and writes each
    epoch through a segmented :class:`BundleWriter` the moment it
    completes — peak memory is one epoch, not the trace.

    ``profile_path`` additionally feeds every epoch through an
    incremental :class:`AuditSession` (so the bundle is *verified*
    ACCEPTED as it is generated) and writes the per-group (n, α, ℓ)
    profile JSON there.  ``checkpoint`` resumes a previous run's
    returned/saved checkpoint: the new bundle's initial state is the
    old run's final state and the request stream continues exactly
    where it stopped.  ``checkpoint_path`` saves this run's final
    checkpoint for the next resume.

    Returns a JSON-able summary (the ``repro synth --json`` payload,
    minus the paths the CLI adds).
    """
    import json as _json

    app = build_scenario_app(spec.workload, spec.scale)
    nondet = NondetSource(seed=spec.seed + 20171028)
    scheduler = RandomScheduler(spec.seed + 1)
    state = None
    stream_state = None
    epoch_base = 0
    if checkpoint is not None:
        if checkpoint.get("format") != CHECKPOINT_FORMAT:
            raise ValueError("not a scenario-factory checkpoint")
        if checkpoint.get("spec", {}).get("workload") != spec.workload:
            raise ValueError(
                "checkpoint workload "
                f"{checkpoint.get('spec', {}).get('workload')!r} does "
                f"not match spec workload {spec.workload!r}"
            )
        nondet.setstate(checkpoint["nondet"])
        scheduler.setstate(checkpoint["scheduler"])
        state = state_from_json(checkpoint["state"])
        stream_state = checkpoint["stream"]
        epoch_base = int(checkpoint.get("epochs_emitted", 0))
        # The resumed stream keeps its global counters but obeys THIS
        # spec's request budget on top of what it already emitted.
        already = int(stream_state["emitted"])
        spec = ScenarioSpec(**{**spec.to_json(),
                               "requests": already + spec.requests})
    stream = TrafficStream(spec, state=stream_state)

    session = None
    verified: bool | None = None
    audit_config = config or AuditConfig()
    started = _time.perf_counter()
    epoch = 0
    events = 0
    requests = 0
    groups = 0
    first_initial = None
    with BundleWriter(out_path, segmented=True,
                      autoflush=False) as writer:
        while not stream.exhausted:
            batch = stream.take(spec.epoch_size)
            if not batch:
                break
            executor = Executor(
                app,
                scheduler=scheduler,
                max_concurrency=spec.concurrency,
                nondet=nondet,
                record=True,
                initial_state=state,
            )
            result = executor.serve(batch)
            if epoch == 0:
                first_initial = result.initial_state
                writer.write_state(first_initial)
                if profile_path is not None:
                    session = Auditor(app, audit_config).session(
                        first_initial
                    )
            reports = result.reports
            # Epoch-qualified group tags: a monolithic read of the
            # segmented bundle must still partition cleanly (groups
            # never span epochs — the executor does the same when it
            # cuts its own epochs).
            reports.groups = {
                f"e{epoch_base + epoch}:{tag}": rids
                for tag, rids in reports.groups.items()
            }
            writer.write_epoch(result.trace, reports)
            if session is not None:
                epoch_result = session.feed_epoch(result.trace, reports)
                if not epoch_result.accepted:
                    verified = False
            groups += len(reports.groups)
            events += len(result.trace)
            requests += len(batch)
            state = result.final_state
            epoch += 1
            if progress is not None:
                progress(SynthProgress(
                    epoch=epoch, requests=requests, events=events,
                    elapsed_seconds=_time.perf_counter() - started,
                    verified=verified,
                ))
        writer.write_end()

    profile = None
    if session is not None:
        final = session.close()
        if verified is None:
            verified = bool(final.accepted)
        profile = group_profile(final.stats, meta={
            "workload": spec.workload,
            "scale": spec.scale,
            "seed": spec.seed,
            "requests": requests,
            "epochs": epoch,
            "bundle": out_path,
        })
        with open(profile_path, "w") as fh:
            _json.dump(profile, fh, indent=2, sort_keys=True)
            fh.write("\n")

    elapsed = _time.perf_counter() - started
    summary: dict = {
        "workload": spec.workload,
        "label": _MODELS[spec.workload].label,
        "scale": spec.scale,
        "seed": spec.seed,
        "users": spec.users,
        "requests": requests,
        "epochs": epoch,
        "events": events,
        "groups": groups,
        "epoch_size": spec.epoch_size,
        "elapsed_seconds": elapsed,
        "requests_per_second": (
            requests / elapsed if elapsed > 0 else 0.0
        ),
        "resumed": checkpoint is not None,
        "verified": verified,
        "profile_groups": profile["groups"] if profile else None,
    }

    if checkpoint_path is not None:
        snapshot = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "spec": spec.to_json(),
            "stream": stream.checkpoint(),
            "nondet": nondet.getstate(),
            "scheduler": scheduler.getstate(),
            "state": state_to_json(state) if state is not None else None,
            "requests_emitted": stream.emitted,
            "epochs_emitted": epoch_base + epoch,
        }
        with open(checkpoint_path, "w") as fh:
            _json.dump(snapshot, fh)
            fh.write("\n")
    return summary
