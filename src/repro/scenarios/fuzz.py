"""Tamper fuzzer: randomized mutations that the audit must REJECT.

Soundness as a soak test: take an honestly recorded bundle, apply
randomized tamper operators — drop/duplicate/reorder trace records,
flip response bodies, rewrite the reports (op logs, op counts, nondet
values, group membership), splice whole epoch runs, truncate the file
mid-record, and corrupt/truncate frames on the wire encoding — then
run the *stock* loader + audit and assert the mutation is rejected
through one of three channels:

* ``audit``  — the audit runs and REJECTs;
* ``load``   — the stock bundle loader refuses the file (torn JSON,
  unknown record kinds, missing state, invalid cuts);
* ``wire``   — the framed transport refuses the bytes
  (:class:`ProtocolError` CRC/length corruption, truncated frame).

A mutation that is ACCEPTed is a soundness bug: the fuzzer shrinks its
edit list to a minimal reproducer (classic ddmin) and reports it.  The
audit entry point is injectable (``audit_fn``) so the shrinker is
testable against a deliberately buggy audit.

Every mutation's randomness derives from ``(seed, index)`` only, so a
failure report's ``(seed, index)`` pair replays exactly.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time as _time
from dataclasses import dataclass, field

from repro.core import Auditor
from repro.core.config import AuditConfig
from repro.io import load_audit_bundle_ex, record_kind
from repro.net.protocol import (
    RECORD,
    ProtocolError,
    TransportError,
    decode_frame,
    encode_frame,
)

CHANNEL_AUDIT = "audit"
CHANNEL_LOAD = "load"
CHANNEL_WIRE = "wire"

#: File-level operators (chosen at random, weights uniform unless
#: repeated).  Wire operators are listed separately: they attack the
#: frame encoding, not the file.
FILE_OPERATORS = (
    "flip_response",
    "drop_event",
    "duplicate_event",
    "reorder_pair",
    "flip_op_log",
    "tamper_op_count",
    "flip_nondet",
    "tamper_state",
    "splice_epochs",
    "truncate_tail",
)
WIRE_OPERATORS = ("wire_corrupt", "wire_truncate")
ALL_OPERATORS = FILE_OPERATORS + WIRE_OPERATORS


@dataclass
class MutationOutcome:
    """One mutation's verdict."""

    index: int
    operator: str
    edits: list[dict]
    rejected: bool
    channel: str | None = None
    reason: str | None = None
    shrunk: list[dict] | None = None

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "operator": self.operator,
            "edits": self.edits,
            "rejected": self.rejected,
            "channel": self.channel,
            "reason": self.reason,
            "shrunk": self.shrunk,
        }


@dataclass
class FuzzReport:
    """The campaign result (``repro fuzz --json`` payload core)."""

    bundle: str
    mutations: int
    seed: int
    outcomes: list[MutationOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def rejected(self) -> int:
        return sum(1 for o in self.outcomes if o.rejected)

    @property
    def accepted(self) -> list[MutationOutcome]:
        return [o for o in self.outcomes if not o.rejected]

    def to_json(self) -> dict:
        channels = {CHANNEL_AUDIT: 0, CHANNEL_LOAD: 0, CHANNEL_WIRE: 0}
        operators: dict[str, dict] = {}
        for outcome in self.outcomes:
            stats = operators.setdefault(
                outcome.operator, {"mutations": 0, "rejected": 0}
            )
            stats["mutations"] += 1
            if outcome.rejected:
                stats["rejected"] += 1
                channels[outcome.channel] += 1
        return {
            "bundle": self.bundle,
            "mutations": self.mutations,
            "seed": self.seed,
            "rejected": self.rejected,
            "accepted": len(self.accepted),
            "all_rejected": not self.accepted,
            "channels": channels,
            "operators": operators,
            "accepted_mutations": [o.to_json() for o in self.accepted],
            "elapsed_seconds": self.elapsed_seconds,
        }


# ---------------------------------------------------------------------------
# Edit application.  Edits are concrete, JSON-able, and always refer to
# ORIGINAL line numbers; apply_edits sequences them so any subset of a
# mutation's edits (the shrinker's probes) applies cleanly.


def apply_edits(lines: list[bytes], edits: list[dict]) -> bytes:
    """The mutated bundle bytes from original ``lines`` plus ``edits``."""
    ranged = [e for e in edits if e["op"] != "truncate"]
    # Descending start position: earlier edits keep their coordinates.
    ranged.sort(key=lambda e: e.get("line", e.get("start", 0)),
                reverse=True)
    out = list(lines)
    for edit in ranged:
        op = edit["op"]
        if op == "replace_line":
            out[edit["line"]] = edit["text"].encode()
        elif op == "delete_line":
            del out[edit["line"]]
        elif op == "insert_line":
            out.insert(edit["line"], edit["text"].encode())
        elif op == "replace_range":
            out[edit["start"]:edit["end"]] = [
                t.encode() for t in edit["texts"]
            ]
        else:
            raise ValueError(f"unknown edit op {op!r}")
    data = b"\n".join(out) + b"\n"
    for edit in edits:
        if edit["op"] == "truncate":
            data = data[:edit["byte"]]
    return data


# ---------------------------------------------------------------------------


class _Catalog:
    """Parsed index over the bundle's lines, built once per campaign."""

    def __init__(self, lines: list[bytes]):
        self.lines = lines
        self.events: list[int] = []
        self.responses: list[int] = []
        self.requests: list[int] = []
        self.op_logs: list[int] = []
        self.op_counts: list[int] = []
        self.nondets: list[int] = []
        self.groups: list[int] = []
        self.marks: list[int] = []
        self.end: int | None = None
        self.rid_lines: dict[str, dict] = {}
        self.bodies: dict[str, str] = {}
        self.states: list[int] = []
        for index, line in enumerate(lines):
            kind = record_kind(line)
            if kind is None:
                continue  # header
            if kind == "event":
                self.events.append(index)
                record = json.loads(line)
                event = record["event"]
                if "request" in event:
                    self.requests.append(index)
                    rid = event["request"]["rid"]
                    self.rid_lines.setdefault(rid, {})["request"] = index
                elif "response" in event:
                    self.responses.append(index)
                    resp = event["response"]
                    rid = resp["rid"]
                    self.rid_lines.setdefault(rid, {})["response"] = index
                    self.bodies[rid] = resp.get("body") or ""
            elif kind == "state":
                self.states.append(index)
            elif kind == "op_log":
                self.op_logs.append(index)
            elif kind == "op_counts":
                self.op_counts.append(index)
            elif kind == "nondet":
                self.nondets.append(index)
            elif kind == "group":
                self.groups.append(index)
            elif kind == "epoch_mark":
                self.marks.append(index)
            elif kind == "end":
                self.end = index

    def parse(self, index: int) -> dict:
        return json.loads(self.lines[index])

    def epoch_runs(self) -> list[tuple[int, int]]:
        """(start, end) line ranges of each epoch run (segmented
        layout): run 0 starts after the header, run k>0 at its opening
        epoch_mark; every run ends at the next mark (or ``end``/EOF)."""
        bounds = [1] + [m for m in self.marks]
        stop = self.end if self.end is not None else len(self.lines)
        runs = []
        for i, start in enumerate(bounds):
            end = bounds[i + 1] if i + 1 < len(bounds) else stop
            if end > start:
                runs.append((start, end))
        return runs


def _encode(record: dict) -> str:
    return json.dumps(record)


# Each chooser returns a list of edits, or None when the operator does
# not apply to this bundle (the driver then picks another operator).


def _choose_flip_response(cat: _Catalog, rng: random.Random):
    candidates = [
        i for i in cat.responses
        if json.loads(cat.lines[i])["event"]["response"]["body"]
    ]
    if not candidates:
        return None
    index = rng.choice(candidates)
    record = cat.parse(index)
    body = record["event"]["response"]["body"]
    pos = rng.randrange(len(body))
    flipped = body[:pos] + chr((ord(body[pos]) % 90) + 33) + body[pos + 1:]
    if flipped == body:
        flipped = body + "<!--tampered-->"
    record["event"]["response"]["body"] = flipped
    return [{"op": "replace_line", "line": index,
             "text": _encode(record)}]


def _choose_drop_event(cat: _Catalog, rng: random.Random):
    if not cat.events:
        return None
    index = rng.choice(cat.events)
    return [{"op": "delete_line", "line": index}]


def _choose_duplicate_event(cat: _Catalog, rng: random.Random):
    if not cat.events:
        return None
    index = rng.choice(cat.events)
    return [{"op": "insert_line", "line": index + 1,
             "text": cat.lines[index].decode()}]


def _choose_reorder_pair(cat: _Catalog, rng: random.Random):
    pairs = [
        (slots["request"], slots["response"])
        for slots in cat.rid_lines.values()
        if "request" in slots and "response" in slots
        and slots["request"] < slots["response"]
    ]
    if not pairs:
        return None
    req_line, resp_line = pairs[rng.randrange(len(pairs))]
    # Deliver the response before its own request: delete it from its
    # position and re-insert it ahead of the request record.
    return [
        {"op": "delete_line", "line": resp_line},
        {"op": "insert_line", "line": req_line,
         "text": cat.lines[resp_line].decode()},
    ]


def _choose_flip_op_log(cat: _Catalog, rng: random.Random):
    if not cat.op_logs:
        return None
    index = rng.choice(cat.op_logs)
    record = cat.parse(index)
    if not record["records"]:
        return None
    entry = rng.choice(record["records"])
    contents = entry.get("opcontents")
    if isinstance(contents, str):
        entry["opcontents"] = contents + "~tampered"
    elif rng.random() < 0.5:
        entry["opnum"] = entry["opnum"] + 1000
    else:
        entry["rid"] = "zz999999"
    return [{"op": "replace_line", "line": index,
             "text": _encode(record)}]


def _choose_tamper_op_count(cat: _Catalog, rng: random.Random):
    if not cat.op_counts:
        return None
    index = rng.choice(cat.op_counts)
    record = cat.parse(index)
    counts = record["counts"]
    if not counts:
        return None
    rid = rng.choice(sorted(counts))
    counts[rid] = counts[rid] + 1
    return [{"op": "replace_line", "line": index,
             "text": _encode(record)}]


def _choose_flip_nondet(cat: _Catalog, rng: random.Random):
    # A free nondet value is NOT tamper evidence: changing time() or
    # uniqid() where the value never reaches an output is equivalent to
    # a different honest execution, which the audit rightly ACCEPTs.
    # Only values *observable* in the same request's recorded response
    # body are sound targets — there the re-executed body must diverge.
    candidates = []
    for index in cat.nondets:
        record = cat.parse(index)
        body = cat.bodies.get(record.get("rid"), "")
        if not body:
            continue
        for pos, entry in enumerate(record["records"]):
            value = entry.get("value")
            if isinstance(value, bool) or not isinstance(value, (int, str)):
                continue
            text = str(value)
            # Short values match bodies coincidentally; require enough
            # entropy that a hit really is this call's value.
            if len(text) >= 6 and text in body:
                candidates.append((index, pos))
    if not candidates:
        return None
    index, pos = candidates[rng.randrange(len(candidates))]
    record = cat.parse(index)
    entry = record["records"][pos]
    value = entry["value"]
    entry["value"] = value + 1 if isinstance(value, int) else value + "x"
    return [{"op": "replace_line", "line": index,
             "text": _encode(record)}]


def _choose_tamper_state(cat: _Catalog, rng: random.Random):
    # Tamper the initial-state checkpoint: flip a table cell whose
    # value is visible in some recorded response body, so honest
    # re-execution from the doctored state cannot reproduce the trace.
    if not cat.states:
        return None
    index = cat.states[0]
    record = cat.parse(index)
    all_bodies = "\n".join(cat.bodies.values())
    candidates = []
    tables = record["state"].get("tables", {})
    for tname, table in tables.items():
        for row_pos, row in enumerate(table.get("rows", [])):
            for column, cell in row.items():
                if (isinstance(cell, str) and len(cell) >= 4
                        and cell in all_bodies):
                    candidates.append((tname, row_pos, column))
    if not candidates:
        return None
    tname, row_pos, column = candidates[rng.randrange(len(candidates))]
    row = tables[tname]["rows"][row_pos]
    row[column] = row[column] + "~tampered"
    return [{"op": "replace_line", "line": index,
             "text": _encode(record)}]


def _choose_splice_epochs(cat: _Catalog, rng: random.Random,
                          donor: _Catalog | None = None):
    runs = cat.epoch_runs()
    if donor is not None:
        donor_runs = donor.epoch_runs()
        if not runs or not donor_runs:
            return None
        for _ in range(8):
            start, end = runs[rng.randrange(len(runs))]
            d_start, d_end = donor_runs[rng.randrange(len(donor_runs))]
            texts = [donor.lines[i].decode()
                     for i in range(d_start, d_end)]
            original = [cat.lines[i].decode() for i in range(start, end)]
            # A donor epoch identical to the target's (e.g. same-seed
            # bundles sharing a prefix) splices to a no-op, which the
            # audit rightly accepts — not a tamper.
            if texts != original:
                return [{"op": "replace_range", "start": start,
                         "end": end, "texts": texts}]
        return None
    if len(runs) < 2:
        return None
    a, b = rng.sample(range(len(runs)), 2)
    (sa, ea), (sb, eb) = runs[a], runs[b]
    texts_a = [cat.lines[i].decode() for i in range(sa, ea)]
    texts_b = [cat.lines[i].decode() for i in range(sb, eb)]
    return [
        {"op": "replace_range", "start": sa, "end": ea,
         "texts": texts_b},
        {"op": "replace_range", "start": sb, "end": eb,
         "texts": texts_a},
    ]


def _choose_truncate_tail(cat: _Catalog, rng: random.Random):
    # Cut mid-record somewhere after the first quarter of the file so
    # the torn line is loud (a clean cut before `end` could be an
    # honest shorter run).
    if len(cat.lines) < 4:
        return None
    target = rng.randrange(len(cat.lines) // 4, len(cat.lines))
    if cat.end is not None and target >= cat.end:
        target = max(1, cat.end - 1)
    offset = sum(len(line) + 1 for line in cat.lines[:target])
    line = cat.lines[target]
    cut = offset + 1 + rng.randrange(max(1, len(line) - 1))
    return [{"op": "truncate", "byte": cut}]


_FILE_CHOOSERS = {
    "flip_response": _choose_flip_response,
    "drop_event": _choose_drop_event,
    "duplicate_event": _choose_duplicate_event,
    "reorder_pair": _choose_reorder_pair,
    "flip_op_log": _choose_flip_op_log,
    "tamper_op_count": _choose_tamper_op_count,
    "flip_nondet": _choose_flip_nondet,
    "tamper_state": _choose_tamper_state,
    "splice_epochs": _choose_splice_epochs,
    "truncate_tail": _choose_truncate_tail,
}


# ---------------------------------------------------------------------------
# Wire-path mutations: frame a record with the net protocol's encoding
# and corrupt the frame; the stock decoder must refuse the bytes.


def _wire_outcome(cat: _Catalog, rng: random.Random,
                  truncate: bool) -> MutationOutcome | None:
    if not cat.events:
        return None
    index = rng.choice(cat.events)
    frame = encode_frame(RECORD, cat.parse(index))
    if truncate:
        cut = rng.randrange(1, len(frame))
        mutated = frame[:cut]
        edit = {"op": "wire_truncate", "record_line": index,
                "byte": cut}
    else:
        pos = rng.randrange(len(frame))
        flip = bytes([frame[pos] ^ (1 << rng.randrange(8))])
        mutated = frame[:pos] + flip + frame[pos + 1:]
        edit = {"op": "wire_corrupt", "record_line": index,
                "byte": pos}
    operator = edit["op"]
    try:
        kind, payload, consumed = decode_frame(mutated)
    except ProtocolError as exc:
        return MutationOutcome(0, operator, [edit], True,
                               CHANNEL_WIRE, str(exc))
    except TransportError as exc:
        # The stream ends mid-frame: a receiver treats this as a
        # disconnect, never as a delivered record.
        return MutationOutcome(0, operator, [edit], True,
                               CHANNEL_WIRE, f"truncated: {exc}")
    if consumed != len(frame) or payload != cat.parse(index):
        return MutationOutcome(0, operator, [edit], True,
                               CHANNEL_WIRE, "frame not delivered intact")
    # The flip round-tripped to the identical record (it landed in a
    # JSON-insignificant byte and the CRC still matched) — impossible
    # with CRC32 over a single-bit flip, so reaching here is a bug.
    return MutationOutcome(0, operator, [edit], False, None,
                           "corrupted frame decoded successfully")


# ---------------------------------------------------------------------------
# The campaign driver.


def _stock_audit_fn(app, config):
    """The stock audit over loaded bundle inputs (the default
    ``audit_fn``); returns (accepted, reason)."""
    def run(trace, reports, initial, marks):
        cfg = config
        if marks and cfg.epoch_cuts is None:
            cfg = cfg.replace(epoch_cuts=tuple(marks))
        result = Auditor(app, cfg).audit(trace, reports, initial)
        reason = None
        if not result.accepted:
            reason = result.reason.value if result.reason else "rejected"
            if result.detail:
                reason += f": {result.detail}"
        return result.accepted, reason
    return run


def _test_mutation(data: bytes, audit_fn, workdir: str):
    """Run the stock loader + audit over mutated bundle bytes."""
    fd, path = tempfile.mkstemp(suffix=".jsonl", dir=workdir)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        try:
            trace, reports, initial, marks = load_audit_bundle_ex(path)
        except (ValueError, KeyError, TypeError) as exc:
            return True, CHANNEL_LOAD, f"{type(exc).__name__}: {exc}"
        try:
            accepted, reason = audit_fn(trace, reports, initial, marks)
        except (ValueError, KeyError) as exc:
            return True, CHANNEL_LOAD, f"{type(exc).__name__}: {exc}"
        if accepted:
            return False, None, None
        return True, CHANNEL_AUDIT, reason
    finally:
        os.unlink(path)


def shrink_edits(edits: list[dict], accepts) -> list[dict]:
    """ddmin: a minimal edit subset for which ``accepts`` still holds.

    ``accepts(subset)`` must be True for the full list (the failure
    being shrunk: the audit ACCEPTed the mutation).
    """
    current = list(edits)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            if candidate and accepts(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def fuzz_bundle(
    bundle_path: str,
    app,
    *,
    config: AuditConfig | None = None,
    mutations: int = 100,
    seed: int = 0,
    operators: tuple[str, ...] | None = None,
    splice_with: str | None = None,
    shrink: bool = True,
    edits_per_mutation: int = 3,
    audit_fn=None,
    progress=None,
) -> FuzzReport:
    """Run a tamper campaign of ``mutations`` randomized mutations.

    Each mutation derives its randomness from ``(seed, index)`` alone
    (replayable), applies 1..``edits_per_mutation`` edits from one
    randomly chosen operator family, and must be rejected by the stock
    loader + audit (``audit_fn`` overrides the audit for testing).
    ``splice_with`` names a donor bundle for cross-bundle epoch
    splicing (without it, splices swap epochs within the bundle).
    """
    with open(bundle_path, "rb") as fh:
        lines = fh.read().splitlines()
    catalog = _Catalog(lines)
    donor = None
    if splice_with is not None:
        with open(splice_with, "rb") as fh:
            donor = _Catalog(fh.read().splitlines())
    chosen_ops = tuple(operators) if operators else ALL_OPERATORS
    for name in chosen_ops:
        if name not in ALL_OPERATORS:
            raise ValueError(f"unknown tamper operator {name!r}")
    if audit_fn is None:
        audit_fn = _stock_audit_fn(app, config or AuditConfig())

    report = FuzzReport(bundle=bundle_path, mutations=mutations,
                        seed=seed)
    started = _time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as workdir:
        for index in range(mutations):
            rng = random.Random((seed << 24) ^ index)
            outcome = _one_mutation(
                index, rng, catalog, donor, chosen_ops,
                edits_per_mutation, audit_fn, workdir,
            )
            if not outcome.rejected and shrink and outcome.edits:
                def accepts(subset):
                    data = apply_edits(catalog.lines, subset)
                    rejected, _, _ = _test_mutation(
                        data, audit_fn, workdir
                    )
                    return not rejected
                outcome.shrunk = shrink_edits(outcome.edits, accepts)
            report.outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    report.elapsed_seconds = _time.perf_counter() - started
    return report


def _one_mutation(index, rng, catalog, donor, chosen_ops,
                  edits_per_mutation, audit_fn, workdir):
    """Pick an applicable operator, build its edits, test them."""
    for _attempt in range(16):
        operator = chosen_ops[rng.randrange(len(chosen_ops))]
        if operator in WIRE_OPERATORS:
            outcome = _wire_outcome(
                catalog, rng, truncate=(operator == "wire_truncate")
            )
            if outcome is None:
                continue
            outcome.index = index
            return outcome
        edits = _file_edits(catalog, donor, rng, operator,
                            edits_per_mutation)
        if edits is None:
            continue
        data = apply_edits(catalog.lines, edits)
        rejected, channel, reason = _test_mutation(
            data, audit_fn, workdir
        )
        return MutationOutcome(index, operator, edits, rejected,
                               channel, reason)
    raise RuntimeError(
        "no tamper operator applies to this bundle (is it empty?)"
    )


def _file_edits(catalog, donor, rng, operator, edits_per_mutation):
    """1..N edits: the named operator first, then optional extra draws
    from the same family pool (multi-edit mutations give the shrinker
    real work when one slips through)."""
    if operator == "splice_epochs":
        return _choose_splice_epochs(catalog, rng, donor)
    chooser = _FILE_CHOOSERS[operator]
    edits = chooser(catalog, rng)
    if edits is None:
        return None
    extra_budget = rng.randrange(edits_per_mutation)
    # Truncation composes badly (it hides the other edits); keep
    # truncate mutations single-edit.
    if operator == "truncate_tail":
        extra_budget = 0
    for _ in range(extra_budget):
        name = FILE_OPERATORS[rng.randrange(len(FILE_OPERATORS))]
        if name in ("truncate_tail", "splice_epochs"):
            continue
        more = _FILE_CHOOSERS[name](catalog, rng)
        if not more:
            continue
        taken = {(e.get("line"), e["op"]) for e in edits}
        if any((e.get("line"), e["op"]) in taken for e in more):
            continue  # two rewrites of one line cannot both apply
        edits.extend(more)
    return edits
