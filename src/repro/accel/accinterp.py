"""The accelerated, SIMD-on-demand weblang interpreter (acc-PHP analog).

One instance of :meth:`AccInterpreter.run_group` logically executes *all*
requests of a control-flow group together (§3.1):

* instructions whose operands are identical across the group execute once
  (**univalent** execution);
* instructions with differing operands execute componentwise
  (**multivalent**) over :class:`~repro.multivalue.MultiValue` vectors,
  with scalar expansion of univalue operands and collapse of uniform
  results (Figure 2);
* request inputs, simulated object reads, and recorded non-determinism are
  the only sources of multivalues;
* a branch whose condition differs across the group is a **divergence**
  (the groups were wrong): the interpreter raises
  :class:`~repro.common.errors.DivergenceError` and the re-execution driver
  rejects (strict SSCO) or retries the requests individually (OROCHI's
  fallback, also used for unsupported multivalue cases via
  :class:`~repro.common.errors.MultivalueFallback`).

Like the plain interpreter, execution is a generator: state operations
yield :class:`GroupStateOpIntent` (per-request operands, §3.3's "for all
rid in the group" loop lives in the driver) and non-deterministic built-ins
yield :class:`GroupNondetIntent`.

Array semantics: weblang arrays are values (copied on assignment, argument
passing, and foreach binding — the PHP rule), implemented identically here
and in the plain interpreter.  Under SIMD execution this gives a key
invariant: the per-slot component trees of a multivalue are fully disjoint,
because expansion and per-slot stores always deep-project (§4.3's "deep
copy ... the objects were no longer equivalent").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import (
    DivergenceError,
    MultivalueFallback,
    WeblangError,
)
from repro.lang.ast import (
    ArrayLit,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Echo,
    ExprStmt,
    Foreach,
    FuncDecl,
    GlobalDecl,
    If,
    Index,
    IndexAssign,
    Lit,
    Node,
    Program,
    Return,
    Ternary,
    UnOp,
    Var,
    While,
)
from repro.lang.builtins import (
    EXTERNAL_BUILTINS,
    NONDET_BUILTINS,
    PURE_BUILTINS,
    STATE_BUILTINS,
)
from repro.lang.interp import Interpreter, freeze_value, thaw_value
from repro.lang.values import PhpArray, arith, to_str, truthy
from repro.multivalue.multivalue import (
    MultiValue,
    components,
    make_multi,
)
from repro.trace.events import Request


@dataclass
class GroupStateOpIntent:
    """A state operation issued by the whole group.

    ``objs[i]`` / ``args[i]`` are the object name and operands of request
    ``i``'s operation (they can differ: e.g. session registers are named by
    each request's cookie; SQL text can embed per-request values).
    """

    kind: str
    objs: list[str]
    args: list[tuple]


@dataclass
class GroupNondetIntent:
    """A non-deterministic built-in invoked by the whole group."""

    func: str
    args: list[tuple]


@dataclass
class GroupExternalIntent:
    """An outbound external request issued by the whole group (§5.5
    extension); per-slot services and contents."""

    services: list[str]
    contents: list[tuple]


@dataclass
class GroupRunOutput:
    """Result of re-executing one control-flow group."""

    bodies: list[str]
    steps: int  # total "instructions" (AST evaluations)
    multi_steps: int  # instructions that produced a multivalue


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: object):
        self.value = value


class _Env:
    __slots__ = ("vars", "globals", "global_names")

    def __init__(self, global_vars: dict[str, object] | None = None):
        self.vars: dict[str, object] = {}
        self.globals = global_vars if global_vars is not None else self.vars
        self.global_names: set = set()

    def lookup(self, name: str) -> object:
        if name in self.global_names:
            return self.globals.get(name)
        return self.vars.get(name)

    def store(self, name: str, value: object) -> None:
        if name in self.global_names:
            self.globals[name] = value
        else:
            self.vars[name] = value


class _GroupState:
    __slots__ = ("requests", "size", "output", "in_tx", "steps",
                 "multi_steps", "funcs", "depth")

    def __init__(self, requests: list[Request], funcs: dict[str, FuncDecl]):
        self.requests = requests
        self.size = len(requests)
        self.output: list[object] = []  # str or MultiValue of str
        self.in_tx = False
        self.steps = 0
        self.multi_steps = 0
        self.funcs = funcs
        self.depth = 0


_MAX_CALL_DEPTH = 100

# A weblang frame costs ~a dozen Python frames (the yield-from chain), so
# the default CPython recursion limit trips long before _MAX_CALL_DEPTH.
# Raise the floor once; the weblang limit is what callers actually hit.
import sys as _sys

if _sys.getrecursionlimit() < 20000:
    _sys.setrecursionlimit(20000)


def project(value: object, slot: int, copy_arrays: bool = False) -> object:
    """Per-slot view of a value.

    MultiValues yield their component; arrays containing multivalues are
    rebuilt with projected cells.  ``copy_arrays`` forces fresh copies of
    all arrays, guaranteeing the result shares no structure with other
    slots (used before per-slot mutation).
    """
    if isinstance(value, MultiValue):
        return project(value.values[slot], slot, copy_arrays)
    if isinstance(value, PhpArray):
        if copy_arrays or _contains_multi(value):
            out = PhpArray()
            out._next_index = value._next_index
            for key, cell in value.items():
                out.data[key] = project(cell, slot, copy_arrays)
            return out
        return value
    return value


def _contains_multi(array: PhpArray) -> bool:
    for cell in array.data.values():
        if isinstance(cell, MultiValue):
            return True
        if isinstance(cell, PhpArray) and _contains_multi(cell):
            return True
    return False


class AccInterpreter:
    """SIMD-on-demand interpreter over a control-flow group."""

    def __init__(
        self,
        db_name: str = "db:main",
        kv_name: str = "kv:apc",
        session_cookie: str = "sess",
        collapse_enabled: bool = True,
    ):
        self.db_name = db_name
        self.kv_name = kv_name
        self.session_cookie = session_cookie
        # Ablation hook: with collapse disabled, every multivalue stays a
        # multivalue even when uniform (benchmarks measure the cost).
        self.collapse_enabled = collapse_enabled

    def _merge(self, values: list[object]) -> object:
        if self.collapse_enabled:
            return make_multi(values)
        return MultiValue(values)

    # -- entry point --------------------------------------------------------

    def run_group(self, program: Program, requests: list[Request]):
        """Superposed execution of ``requests`` (all share control flow).

        Generator: yields Group*Intents, returns :class:`GroupRunOutput`.
        Raises :class:`DivergenceError` if control flow differs across the
        group and :class:`MultivalueFallback` on unsupported SIMD cases.
        """
        state = _GroupState(list(requests), program.functions)
        env = _Env()
        try:
            yield from self._exec_block(program.body, env, state)
        except _ReturnSignal:
            pass
        except (_BreakSignal, _ContinueSignal):
            raise WeblangError("break/continue outside loop") from None
        if state.in_tx:
            raise WeblangError("script ended with an open transaction")
        bodies = self._render_output(state)
        return GroupRunOutput(bodies, state.steps, state.multi_steps)

    def _render_output(self, state: _GroupState) -> list[str]:
        buffers: list[list[str]] = [[] for _ in range(state.size)]
        for part in state.output:
            if isinstance(part, MultiValue):
                for slot in range(state.size):
                    buffers[slot].append(to_str(part.values[slot]))
            else:
                for slot in range(state.size):
                    buffers[slot].append(part)
        return ["".join(buffer) for buffer in buffers]

    # -- uniformity helpers --------------------------------------------------

    def _uniform_truth(self, value: object, where: str) -> bool:
        """Truthiness of a condition; divergence if it differs by slot."""
        if isinstance(value, MultiValue):
            truths = [truthy(component) for component in value.values]
            first = truths[0]
            if any(t != first for t in truths[1:]):
                raise DivergenceError(f"branch condition diverges at {where}")
            return first
        return truthy(value)

    # -- statements -----------------------------------------------------------

    def _exec_block(self, stmts: list[Node], env: _Env, state: _GroupState):
        for stmt in stmts:
            yield from self._exec_stmt(stmt, env, state)

    def _exec_stmt(self, stmt: Node, env: _Env, state: _GroupState):
        state.steps += 1
        kind = type(stmt)
        if kind is Assign:
            value = yield from self._eval_copy(stmt.expr, env, state)
            if stmt.op:
                current = env.lookup(stmt.name)
                value = self._compound(stmt.op, current, value, state)
            env.store(stmt.name, value)
            return
        if kind is ExprStmt:
            yield from self._eval(stmt.expr, env, state)
            return
        if kind is Echo:
            for expr in stmt.exprs:
                value = yield from self._eval(expr, env, state)
                if isinstance(value, MultiValue):
                    state.multi_steps += 1
                    state.output.append(
                        MultiValue(
                            [to_str(component) for component in value.values]
                        )
                    )
                else:
                    state.output.append(to_str(value))
            return
        if kind is If:
            taken = -1
            for index, (cond, _body) in enumerate(stmt.branches):
                value = yield from self._eval(cond, env, state)
                if self._uniform_truth(value, f"if#{stmt.nid}"):
                    taken = index
                    break
            if taken >= 0:
                yield from self._exec_block(stmt.branches[taken][1], env,
                                            state)
            elif stmt.else_body is not None:
                yield from self._exec_block(stmt.else_body, env, state)
            return
        if kind is While:
            while True:
                value = yield from self._eval(stmt.cond, env, state)
                if not self._uniform_truth(value, f"while#{stmt.nid}"):
                    break
                try:
                    yield from self._exec_block(stmt.body, env, state)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return
        if kind is Foreach:
            yield from self._exec_foreach(stmt, env, state)
            return
        if kind is IndexAssign:
            yield from self._exec_index_assign(stmt, env, state)
            return
        if kind is Return:
            value = None
            if stmt.expr is not None:
                value = yield from self._eval_copy(stmt.expr, env, state)
            raise _ReturnSignal(value)
        if kind is GlobalDecl:
            for name in stmt.names:
                env.global_names.add(name)
            return
        if kind is Break:
            raise _BreakSignal()
        if kind is Continue:
            raise _ContinueSignal()
        raise WeblangError(f"unknown statement {kind.__name__}")

    def _compound(self, op: str, current: object, value: object,
                  state: _GroupState) -> object:
        return self._binop_multi(op if op != "." else ".", current, value,
                                 state)

    def _exec_foreach(self, stmt: Foreach, env: _Env, state: _GroupState):
        subject = yield from self._eval(stmt.subject, env, state)
        if isinstance(subject, MultiValue):
            arrays = []
            for component in subject.values:
                if not isinstance(component, PhpArray):
                    raise WeblangError("foreach over a non-array")
                arrays.append(component)
            length = len(arrays[0])
            if any(len(array) != length for array in arrays[1:]):
                raise DivergenceError(
                    f"foreach trip count diverges at foreach#{stmt.nid}"
                )
            item_lists = [array.items() for array in arrays]
            for position in range(length):
                keys = [items[position][0] for items in item_lists]
                values = [
                    self._copy_component(items[position][1])
                    for items in item_lists
                ]
                if stmt.key_var is not None:
                    env.store(stmt.key_var, self._merge(list(keys)))
                env.store(stmt.val_var, self._merge(values))
                try:
                    yield from self._exec_block(stmt.body, env, state)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return
        if not isinstance(subject, PhpArray):
            raise WeblangError("foreach over a non-array")
        for key, value in subject.items():
            if stmt.key_var is not None:
                env.store(stmt.key_var, key)
            env.store(stmt.val_var, self._copy_component(value))
            try:
                yield from self._exec_block(stmt.body, env, state)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    @staticmethod
    def _copy_component(value: object) -> object:
        """Value-semantics copy for foreach bindings."""
        if isinstance(value, PhpArray):
            return value.deep_copy()
        if isinstance(value, MultiValue):
            return MultiValue(
                [
                    c.deep_copy() if isinstance(c, PhpArray) else c
                    for c in value.values
                ]
            )
        return value

    # -- index assignment (§4.3 container rules) ----------------------------

    def _exec_index_assign(
        self, stmt: IndexAssign, env: _Env, state: _GroupState
    ):
        value = yield from self._eval_copy(stmt.expr, env, state)
        keys: list[object] = []
        for path_expr in stmt.path:
            if path_expr is None:
                keys.append(None)  # append slot
            else:
                key = yield from self._eval(path_expr, env, state)
                keys.append(key)
        root = env.lookup(stmt.name)
        if root is None:
            root = PhpArray()
            env.store(stmt.name, root)
        multivalued = (
            isinstance(root, MultiValue)
            or any(isinstance(key, MultiValue) for key in keys)
        )
        if not multivalued:
            # Fast univalent path; the stored value may itself be a
            # multivalue held in a cell ("a container's cells can hold
            # multivalues", §4.3).
            if not isinstance(root, PhpArray):
                raise WeblangError(
                    f"cannot index non-array variable ${stmt.name}"
                )
            self._plain_set(root, keys, value, stmt.op, state)
            if isinstance(value, MultiValue):
                state.multi_steps += 1
            return
        state.multi_steps += 1
        # Expansion: the containers are no longer equivalent across the
        # group.  Deep-project the root per slot, then apply each slot's
        # assignment to its own tree.
        if not isinstance(root, MultiValue):
            if not isinstance(root, PhpArray):
                raise WeblangError(
                    f"cannot index non-array variable ${stmt.name}"
                )
            root = MultiValue(
                [
                    project(root, slot, copy_arrays=True)
                    for slot in range(state.size)
                ]
            )
        for slot in range(state.size):
            slot_root = root.values[slot]
            if not isinstance(slot_root, PhpArray):
                raise WeblangError(
                    f"cannot index non-array variable ${stmt.name}"
                )
            slot_keys = [
                None if key is None else project(key, slot) for key in keys
            ]
            slot_value = project(value, slot, copy_arrays=True)
            self._plain_set(slot_root, slot_keys, slot_value, stmt.op, state)
        env.store(stmt.name, self._merge(list(root.values)))

    def _plain_set(
        self,
        container: PhpArray,
        keys: list[object],
        value: object,
        op: str,
        state: _GroupState,
    ) -> None:
        for key in keys[:-1]:
            if key is None:
                raise WeblangError("'[]' only allowed as the last index")
            if isinstance(key, MultiValue):  # pragma: no cover - guarded
                raise WeblangError("internal: multivalue key on plain path")
            inner = container.get(key)
            if inner is None:
                inner = PhpArray()
                container.set(key, inner)
            if isinstance(inner, MultiValue):
                # A univalue path ran into a multivalue cell holding arrays;
                # the caller must expand instead.  This only happens on the
                # fast path; trigger the general (fallback) machinery.
                raise MultivalueFallback(
                    "nested assignment through a multivalue cell"
                )
            if not isinstance(inner, PhpArray):
                raise WeblangError("cannot index into a scalar")
            container = inner
        last = keys[-1]
        if last is None:
            if op:
                raise WeblangError("compound assignment to append slot")
            container.append(value)
        else:
            if op:
                value = self._compound(op, container.get(last), value, state)
            container.set(last, value)

    # -- expressions -----------------------------------------------------------

    def _eval_copy(self, node: Node, env: _Env, state: _GroupState):
        """Evaluate with value-semantics copy when reading from a variable
        or cell (the assignment/argument-passing copy rule)."""
        value = yield from self._eval(node, env, state)
        if type(node) in (Var, Index):
            return self._copy_component(value)
        return value

    def _eval(self, node: Node, env: _Env, state: _GroupState):
        state.steps += 1
        kind = type(node)
        if kind is Lit:
            return node.value
        if kind is Var:
            value = env.lookup(node.name)
            if isinstance(value, MultiValue):
                state.multi_steps += 1
            return value
        if kind is BinOp:
            return (yield from self._eval_binop(node, env, state))
        if kind is Index:
            return (yield from self._eval_index(node, env, state))
        if kind is Call:
            return (yield from self._eval_call(node, env, state))
        if kind is UnOp:
            value = yield from self._eval(node.operand, env, state)
            if isinstance(value, MultiValue):
                state.multi_steps += 1
                if node.op == "!":
                    return self._merge(
                        [not truthy(c) for c in value.values]
                    )
                return self._merge(
                    [arith("-", 0, c) for c in value.values]
                )
            if node.op == "!":
                return not truthy(value)
            return arith("-", 0, value)
        if kind is Ternary:
            cond = yield from self._eval(node.cond, env, state)
            if self._uniform_truth(cond, f"ternary#{node.nid}"):
                return (yield from self._eval(node.then, env, state))
            return (yield from self._eval(node.other, env, state))
        if kind is ArrayLit:
            return (yield from self._eval_array_lit(node, env, state))
        raise WeblangError(f"unknown expression {kind.__name__}")

    def _eval_binop(self, node: BinOp, env: _Env, state: _GroupState):
        op = node.op
        if op in ("&&", "||"):
            left = yield from self._eval(node.left, env, state)
            left_truth = self._uniform_truth(left, f"logic#{node.nid}")
            if op == "&&":
                if not left_truth:
                    return False
                right = yield from self._eval(node.right, env, state)
                return self._uniform_truth(right, f"logic#{node.nid}")
            if left_truth:
                return True
            right = yield from self._eval(node.right, env, state)
            return self._uniform_truth(right, f"logic#{node.nid}")
        left = yield from self._eval(node.left, env, state)
        right = yield from self._eval(node.right, env, state)
        return self._binop_multi(op, left, right, state)

    def _binop_multi(self, op: str, left: object, right: object,
                     state: _GroupState) -> object:
        if isinstance(left, MultiValue) or isinstance(right, MultiValue):
            state.multi_steps += 1
            lefts = components(left, state.size)
            rights = components(right, state.size)
            return self._merge(
                [
                    Interpreter._binop_value(op, lefts[slot], rights[slot])
                    for slot in range(state.size)
                ]
            )
        return Interpreter._binop_value(op, left, right)

    def _eval_index(self, node: Index, env: _Env, state: _GroupState):
        base = yield from self._eval(node.base, env, state)
        index = yield from self._eval(node.index, env, state)
        if isinstance(base, MultiValue) or isinstance(index, MultiValue):
            state.multi_steps += 1
            bases = components(base, state.size)
            indexes = components(index, state.size)
            return self._merge(
                [
                    self._index_one(bases[slot], indexes[slot])
                    for slot in range(state.size)
                ]
            )
        result = self._index_one(base, index)
        if isinstance(result, MultiValue):
            state.multi_steps += 1
        return result

    @staticmethod
    def _index_one(base: object, index: object) -> object:
        if isinstance(base, PhpArray):
            return base.get(index)
        if isinstance(base, str):
            from repro.lang.values import to_int

            position = to_int(index)
            if 0 <= position < len(base):
                return base[position]
            return ""
        raise WeblangError("indexing a non-array value")

    def _eval_array_lit(self, node: ArrayLit, env: _Env, state: _GroupState):
        keys: list[object] = []
        values: list[object] = []
        for key_expr, value_expr in node.items:
            if key_expr is None:
                keys.append(None)
            else:
                keys.append((yield from self._eval(key_expr, env, state)))
            values.append((yield from self._eval_copy(value_expr, env,
                                                      state)))
        if any(isinstance(key, MultiValue) for key in keys):
            # A literal with per-request keys: the array itself becomes a
            # multivalue of per-slot arrays.
            state.multi_steps += 1
            slot_arrays: list[object] = []
            for slot in range(state.size):
                array = PhpArray()
                for key, value in zip(keys, values):
                    slot_value = project(value, slot, copy_arrays=True)
                    if key is None:
                        array.append(slot_value)
                    else:
                        array.set(project(key, slot), slot_value)
                slot_arrays.append(array)
            return self._merge(slot_arrays)
        array = PhpArray()
        for key, value in zip(keys, values):
            if key is None:
                array.append(value)
            else:
                array.set(key, value)
        return array

    # -- calls -------------------------------------------------------------

    def _eval_call(self, node: Call, env: _Env, state: _GroupState):
        name = node.name
        args: list[object] = []
        for arg in node.args:
            value = yield from self._eval_copy(arg, env, state)
            args.append(value)
        if name in ("param", "post_param", "cookie"):
            return self._request_input(name, args, state)
        if name in STATE_BUILTINS:
            return (yield from self._state_call(name, args, state))
        if name in EXTERNAL_BUILTINS:
            if state.in_tx:
                raise WeblangError(
                    f"{name}() inside a DB transaction violates the "
                    "object model"
                )
            services = []
            contents = []
            for slot in range(state.size):
                slot_args = [project(arg, slot) for arg in args]
                if name == "send_email":
                    services.append("email")
                    payload = slot_args
                else:
                    services.append(to_str(slot_args[0]))
                    payload = slot_args[1:]
                contents.append(
                    tuple(freeze_value(value) for value in payload)
                )
            yield GroupExternalIntent(services, contents)
            return True
        if name in NONDET_BUILTINS:
            per_slot_args = self._per_slot_args(args, state)
            results = yield GroupNondetIntent(name, per_slot_args)
            return self._merge(list(results))
        func = state.funcs.get(name)
        if func is not None:
            return (yield from self._call_user(func, args, env, state))
        pure = PURE_BUILTINS.get(name)
        if pure is not None:
            return self._call_pure(name, pure, args, state)
        raise WeblangError(f"call to undefined function {name}()")

    def _per_slot_args(self, args: list[object],
                       state: _GroupState) -> list[tuple]:
        return [
            tuple(project(arg, slot) for arg in args)
            for slot in range(state.size)
        ]

    def _call_pure(self, name: str, func, args: list[object],
                   state: _GroupState) -> object:
        needs_split = any(
            isinstance(arg, MultiValue)
            or (isinstance(arg, PhpArray) and _contains_multi(arg))
            for arg in args
        )
        if not needs_split:
            return func(*args)
        # Built-in splitting (§4.3): one univalue invocation per slot.
        state.multi_steps += 1
        results = []
        for slot in range(state.size):
            slot_args = [project(arg, slot, copy_arrays=True) for arg in args]
            results.append(func(*slot_args))
        return self._merge(results)

    def _request_input(self, which: str, args: list[object],
                       state: _GroupState) -> object:
        if len(args) not in (1, 2):
            raise WeblangError(f"{which}() expects 1 or 2 arguments")
        if any(isinstance(arg, MultiValue) for arg in args):
            raise MultivalueFallback(f"{which}() with multivalue arguments")
        key = to_str(args[0])
        default = args[1] if len(args) == 2 else None
        attr = {"param": "get", "post_param": "post", "cookie": "cookies"}[
            which
        ]
        values = [
            getattr(request, attr).get(key, default)
            for request in state.requests
        ]
        result = self._merge(values)
        if isinstance(result, MultiValue):
            state.multi_steps += 1
        return result

    def _call_user(self, func: FuncDecl, args: list[object], env: _Env,
                   state: _GroupState):
        if state.depth >= _MAX_CALL_DEPTH:
            raise WeblangError("maximum call depth exceeded")
        frame = _Env(env.globals)
        for index, param in enumerate(func.params):
            frame.vars[param] = args[index] if index < len(args) else None
        state.depth += 1
        try:
            yield from self._exec_block(func.body, frame, state)
            return None
        except _ReturnSignal as signal:
            return signal.value
        finally:
            state.depth -= 1

    # -- state-operation built-ins ----------------------------------------

    def _state_call(self, name: str, args: list[object], state: _GroupState):
        size = state.size
        if name in ("db_query", "db_exec"):
            if len(args) != 1:
                raise WeblangError(f"{name}() expects 1 argument")
            sqls = [
                to_str(project(args[0], slot)) for slot in range(size)
            ]
            results = yield GroupStateOpIntent(
                "db_statement",
                [self.db_name] * size,
                [(sql,) for sql in sqls],
            )
            converted = [
                Interpreter._convert_db_result(name, result)
                for result in results
            ]
            merged = self._merge(converted)
            if isinstance(merged, MultiValue):
                state.multi_steps += 1
            return merged
        if name == "db_begin":
            if state.in_tx:
                raise WeblangError("nested transactions are not allowed")
            yield GroupStateOpIntent(
                "db_begin", [self.db_name] * size, [()] * size
            )
            state.in_tx = True
            return None
        if name == "db_commit":
            if not state.in_tx:
                raise WeblangError("db_commit() without a transaction")
            results = yield GroupStateOpIntent(
                "db_commit", [self.db_name] * size, [()] * size
            )
            state.in_tx = False
            return self._merge([bool(result) for result in results])
        if name == "db_rollback":
            if not state.in_tx:
                raise WeblangError("db_rollback() without a transaction")
            yield GroupStateOpIntent(
                "db_rollback", [self.db_name] * size, [()] * size
            )
            state.in_tx = False
            return None
        if state.in_tx:
            raise WeblangError(
                f"{name}() inside a DB transaction violates the object model"
            )
        if name == "kv_get":
            keys = [
                to_str(project(args[0], slot)) for slot in range(size)
            ]
            results = yield GroupStateOpIntent(
                "kv_get", [self.kv_name] * size, [(key,) for key in keys]
            )
            merged = self._merge([thaw_value(result) for result in results])
            if isinstance(merged, MultiValue):
                state.multi_steps += 1
            return merged
        if name == "kv_set":
            keys = [to_str(project(args[0], slot)) for slot in range(size)]
            values = [
                freeze_value(project(args[1], slot)) for slot in range(size)
            ]
            yield GroupStateOpIntent(
                "kv_set",
                [self.kv_name] * size,
                [(key, value) for key, value in zip(keys, values)],
            )
            return None
        if name == "reg_read":
            registers = [
                f"reg:g:{to_str(project(args[0], slot))}"
                for slot in range(size)
            ]
            results = yield GroupStateOpIntent(
                "register_read", registers, [()] * size
            )
            merged = self._merge([thaw_value(result) for result in results])
            if isinstance(merged, MultiValue):
                state.multi_steps += 1
            return merged
        if name == "reg_write":
            registers = [
                f"reg:g:{to_str(project(args[0], slot))}"
                for slot in range(size)
            ]
            values = [
                freeze_value(project(args[1], slot)) for slot in range(size)
            ]
            yield GroupStateOpIntent(
                "register_write", registers, [(value,) for value in values]
            )
            return None
        if name == "session_get":
            registers = self._session_registers(state)
            results = yield GroupStateOpIntent(
                "register_read", registers, [()] * size
            )
            merged = self._merge([thaw_value(result) for result in results])
            if isinstance(merged, MultiValue):
                state.multi_steps += 1
            return merged
        if name == "session_put":
            registers = self._session_registers(state)
            values = [
                freeze_value(project(args[0], slot)) for slot in range(size)
            ]
            yield GroupStateOpIntent(
                "register_write", registers, [(value,) for value in values]
            )
            return None
        raise WeblangError(f"unknown state builtin {name}")  # pragma: no cover

    def _session_registers(self, state: _GroupState) -> list[str]:
        registers = []
        for request in state.requests:
            cookie = request.cookies.get(self.session_cookie)
            if cookie is None:
                raise WeblangError(
                    "session_get/session_put without a session cookie"
                )
            registers.append(f"reg:sess:{cookie}")
        return registers
