"""The SIMD-on-demand interpreter (acc-PHP analog; Sections 3.1, 4.3)."""

from repro.accel.accinterp import (
    AccInterpreter,
    GroupExternalIntent,
    GroupNondetIntent,
    GroupRunOutput,
    GroupStateOpIntent,
)

__all__ = [
    "AccInterpreter",
    "GroupExternalIntent",
    "GroupNondetIntent",
    "GroupRunOutput",
    "GroupStateOpIntent",
]
