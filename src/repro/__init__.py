"""repro: a reproduction of "The Efficient Server Audit Problem,
Deduplicated Re-execution, and the Web" (Tan, Yu, Leners, Walfish;
SOSP 2017).

The library implements both sides of the paper's protocol:

* the **online phase**: a concurrent web-application executor for a
  PHP-like language (weblang), with the recording library that produces
  control-flow groupings, operation logs, op counts, and non-determinism
  reports (:mod:`repro.server`, :mod:`repro.lang`, :mod:`repro.sql`,
  :mod:`repro.objects`);
* the **audit phase**: the SSCO verifier — consistent-ordering
  verification, versioned-store redo, SIMD-on-demand re-execution with
  simulate-and-check, and read-query deduplication (:mod:`repro.core`,
  :mod:`repro.accel`, :mod:`repro.multivalue`).

Quickstart::

    from repro import Application, Executor, ssco_audit

    app = Application.from_sources("hello", {
        "hello.php": "echo 'Hello, ', param('name', 'world'), '!';",
    })
    result = Executor(app).serve([...])
    audit = ssco_audit(app, result.trace, result.reports,
                       result.initial_state)
    assert audit.accepted

For continuous deployments, the service API audits epoch by epoch::

    from repro import AuditConfig, Auditor

    auditor = Auditor(app, AuditConfig(workers=4))
    with auditor.session(initial_state) as session:
        for epoch in reader.epochs(follow=True):   # repro.io.BundleReader
            session.feed_epoch(epoch.trace, epoch.reports)
    assert session.close().accepted

The reader can also be a :class:`~repro.net.RemoteBundleReader`
attached to a recorder's :class:`~repro.net.BundlePublisher` over TCP
— same iterator contract, no shared filesystem (:mod:`repro.net`).

See ``examples/quickstart.py``, ``examples/continuous_audit.py``, and
``examples/remote_audit.py`` for the runnable versions.
"""

from repro.core import (
    AuditConfig,
    AuditOptions,
    AuditPipeline,
    AuditResult,
    AuditSession,
    Auditor,
    EpochResult,
    available_backends,
    create_time_precedence_graph,
    ooo_audit,
    register_reexec_backend,
    run_audit,
    simple_audit,
    ssco_audit,
)
from repro.net import BundlePublisher, RemoteBundleReader
from repro.server import (
    Application,
    ExecutionResult,
    Executor,
    InitialState,
    NondetSource,
    Reports,
)
from repro.trace import Collector, Request, Response, Trace

__version__ = "1.0.0"

__all__ = [
    "Application",
    "AuditConfig",
    "AuditOptions",
    "AuditPipeline",
    "AuditResult",
    "AuditSession",
    "Auditor",
    "BundlePublisher",
    "Collector",
    "EpochResult",
    "ExecutionResult",
    "Executor",
    "InitialState",
    "NondetSource",
    "RemoteBundleReader",
    "Reports",
    "Request",
    "Response",
    "Trace",
    "available_backends",
    "create_time_precedence_graph",
    "ooo_audit",
    "register_reexec_backend",
    "run_audit",
    "simple_audit",
    "ssco_audit",
    "__version__",
]
