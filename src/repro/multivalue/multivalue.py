"""The multivalue runtime type (Sections 3.1, 4.3).

A :class:`MultiValue` holds one component per request in the control-flow
group being re-executed ("a multivalue int can be thought of as a vector of
ints").  Invariants:

* a MultiValue always has cardinality equal to the group size ("a collapse
  is all or nothing: every multivalue has cardinality equal to the number
  of requests being re-executed");
* components are plain weblang values (never nested MultiValues) — a
  component may be a :class:`~repro.lang.values.PhpArray` whose *cells*
  hold only plain values;
* a MultiValue whose components are all equal must not exist: the
  accelerated interpreter calls :func:`collapse` on everything it produces,
  which turns such a vector back into a univalue — "this is crucial to
  deduplication" (§4.3).

``collapse`` compares scalars with ``==`` (plus type compatibility) and
arrays by value.  Collapsing distinct-but-equal arrays to a single shared
array is safe because every mutation path in the accelerated interpreter
either applies an identical (univalent) mutation to the shared array — the
same thing that happened in each original execution — or first *expands*
the array into per-request deep copies (scalar expansion of containers,
§4.3).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.common.errors import WeblangError
from repro.lang.values import PhpArray


class MultiValue:
    """A vector of per-request values."""

    __slots__ = ("values",)

    def __init__(self, values: list[object]):
        self.values = values

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultiValue({self.values!r})"


def is_multi(value: object) -> bool:
    return isinstance(value, MultiValue)


def _equal(a: object, b: object) -> bool:
    """Component equality for collapsing.

    Deliberately *stricter* than weblang ``==`` (no type juggling): 1 and
    "1" must not collapse, because programs can observe their type.  int and
    float compare equal only when both value and integerness agree — the
    paper's int/float mixture support means 2 and 2.0 stay a multivalue
    unless truly identical.
    """
    if a is b:
        return True
    ta, tb = type(a), type(b)
    if ta is not tb:
        return False
    if ta is PhpArray:
        return _arrays_equal(a, b)  # type: ignore[arg-type]
    return a == b


def _arrays_equal(a: PhpArray, b: PhpArray) -> bool:
    if len(a) != len(b):
        return False
    items_a = a.items()
    items_b = b.items()
    for (ka, va), (kb, vb) in zip(items_a, items_b):
        if ka != kb or not _equal(va, vb):
            return False
    return True


def collapse(value: object) -> object:
    """Collapse a MultiValue with identical components to a univalue."""
    if not isinstance(value, MultiValue):
        return value
    values = value.values
    first = values[0]
    for other in values[1:]:
        if not _equal(first, other):
            return value
    return first


def make_multi(values: list[object]) -> object:
    """Build a MultiValue from per-request values, collapsing if uniform."""
    return collapse(MultiValue(values))


def components(value: object, size: int) -> list[object]:
    """Per-request view of a value: scalar expansion for univalues.

    For univalue (shared) components the *same* object is returned for each
    slot; callers that intend to mutate must use :func:`expand_array`.
    """
    if isinstance(value, MultiValue):
        if len(value.values) != size:
            raise WeblangError(
                f"multivalue cardinality {len(value.values)} != group size "
                f"{size}"
            )
        return value.values
    return [value] * size


def expand_array(value: object, size: int) -> MultiValue:
    """Scalar-expand a container into per-request deep copies (§4.3).

    Used when "the objects were no longer equivalent" in the original
    executions — e.g. a set with a multivalue key on a univalue array.
    """
    if isinstance(value, MultiValue):
        out: list[object] = []
        seen_ids = {}
        for component in value.values:
            if isinstance(component, PhpArray):
                # The same array object may appear in several slots (it was
                # broadcast); each slot needs its own copy exactly once.
                if id(component) in seen_ids:
                    out.append(component.deep_copy())
                else:
                    seen_ids[id(component)] = True
                    out.append(component)
            else:
                out.append(component)
        return MultiValue(out)
    if not isinstance(value, PhpArray):
        raise WeblangError("expand_array() expects an array")
    return MultiValue([value] + [value.deep_copy() for _ in range(size - 1)])


def map_unary(func: Callable[[object], object], value: MultiValue) -> object:
    """Apply ``func`` componentwise; collapse the result."""
    return make_multi([func(component) for component in value.values])


def map_componentwise(
    func: Callable[..., object], size: int, args: Sequence[object]
) -> object:
    """Apply ``func`` componentwise over mixed multi/uni arguments.

    Performs scalar expansion on univalue arguments, calls ``func`` once
    per slot, and collapses the result — the core multivalent-execution
    step of Figure 2.
    """
    expanded = [components(arg, size) for arg in args]
    results = [
        func(*(arg[slot] for arg in expanded)) for slot in range(size)
    ]
    return make_multi(results)
