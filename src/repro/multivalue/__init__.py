"""Multivalue types for SIMD-on-demand execution (Sections 3.1, 4.3)."""

from repro.multivalue.multivalue import (
    MultiValue,
    collapse,
    components,
    is_multi,
    make_multi,
)

__all__ = ["MultiValue", "collapse", "components", "is_multi", "make_multi"]
