"""The HotCRP workload (§5): SIGCOMM 2009 parameters.

Full scale: 269 papers, 58 reviewers, 820 reviews; each paper submitted by
one author with 1-20 updates (uniform); each review submitted in two
versions; each reviewer views 100 pages.  ≈52k requests at full scale.
"""

from __future__ import annotations

import random

from repro.apps import minicrp
from repro.trace.events import Request
from repro.workloads.wiki import Workload

FULL_PAPERS = 269
FULL_REVIEWERS = 58
FULL_REVIEWS = 820
VIEWS_PER_REVIEWER = 100
MAX_UPDATES = 20


def population(scale: float) -> dict:
    """Data-population parameters at ``scale`` — shared with the
    scenario factory (see :func:`repro.workloads.wiki.population`)."""
    papers = max(3, int(FULL_PAPERS * scale))
    reviewers = max(2, int(FULL_REVIEWERS * scale))
    return {
        "papers": papers,
        "reviewers": [f"pc{index:02d}@conf.org" for index in
                      range(reviewers)],
        "authors": [f"author{index:03d}@inst.edu" for index in
                    range(papers)],
    }


def hotcrp_workload(scale: float = 1.0, seed: int = 2009) -> Workload:
    num_papers = max(3, int(FULL_PAPERS * scale))
    num_reviewers = max(2, int(FULL_REVIEWERS * scale))
    num_reviews = min(
        max(3, int(FULL_REVIEWS * scale)), num_papers * num_reviewers
    )
    views_per_reviewer = max(3, int(VIEWS_PER_REVIEWER * min(1.0, scale * 4)))
    rng = random.Random(seed)
    app = minicrp.build_app()

    authors = [f"author{index:03d}@inst.edu" for index in range(num_papers)]
    reviewers = [
        f"pc{index:02d}@conf.org" for index in range(num_reviewers)
    ]

    requests: list[Request] = []
    counter = 0

    def rid() -> str:
        nonlocal counter
        counter += 1
        return f"c{counter:06d}"

    # Phase 1: authors sign in and submit; papers get 1..20 updates.
    for paper_index, author in enumerate(authors):
        cookies = {"sess": author}
        requests.append(
            Request(rid(), "crp_login.php",
                    post={"email": author, "role": "author"},
                    cookies=cookies)
        )
        title = f"Paper {paper_index}: Auditing Layer {paper_index % 7}"
        requests.append(
            Request(rid(), "crp_submit.php",
                    post={"title": title,
                          "abstract": f"We study problem {paper_index}."},
                    cookies=cookies)
        )
        paper_id = paper_index + 1  # deterministic auto-increment
        for update in range(rng.randint(1, MAX_UPDATES)):
            requests.append(
                Request(rid(), "crp_submit.php",
                        get={"p": str(paper_id)},
                        post={"title": title,
                              "abstract": f"We study problem {paper_index}"
                                          f" (rev {update + 1})."},
                        cookies=cookies)
            )

    # Phase 2: reviewers sign in; each review gets two versions.
    for reviewer in reviewers:
        requests.append(
            Request(rid(), "crp_login.php",
                    post={"email": reviewer, "role": "reviewer"},
                    cookies={"sess": reviewer})
        )
    assignments = []
    pairs = [
        (paper, reviewer)
        for paper in range(1, num_papers + 1)
        for reviewer in reviewers
    ]
    rng.shuffle(pairs)
    assignments = pairs[:num_reviews]
    for version in (1, 2):
        for paper_id, reviewer in assignments:
            body = (
                f"Review v{version} of paper {paper_id} by {reviewer}: "
                + "solid work. " * 8
            )
            requests.append(
                Request(rid(), "crp_review.php",
                        get={"p": str(paper_id)},
                        post={"body": body, "score": str(rng.randint(1, 5))},
                        cookies={"sess": reviewer})
            )

    # Phase 3: reviewers browse (100 page views each at full scale).
    for reviewer in reviewers:
        for view in range(views_per_reviewer):
            if view % 10 == 0:
                requests.append(
                    Request(rid(), "crp_list.php",
                            cookies={"sess": reviewer})
                )
            else:
                paper_id = rng.randint(1, num_papers)
                requests.append(
                    Request(rid(), "crp_paper.php",
                            get={"p": str(paper_id)},
                            cookies={"sess": reviewer})
                )
    return Workload(app, requests, "HotCRP")
