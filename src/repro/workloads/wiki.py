"""The MediaWiki workload (§5): Zipf-popular page views plus edits.

Full scale is 20,000 requests over 200 pages with Zipf β = 0.53.  The 2007
Wikipedia trace is read-dominated; we use ~3% edits, plus small fractions
of index/search/history/random traffic so every script is exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps import miniwiki
from repro.server.app import Application
from repro.trace.events import Request
from repro.workloads.zipf import zipf_sample

FULL_REQUESTS = 20_000
FULL_PAGES = 200
ZIPF_BETA = 0.53
EDITORS = 25


def population(scale: float) -> dict:
    """Data-population parameters at ``scale`` — shared with the
    scenario factory so a synthesized bundle's app can be rebuilt from
    ``--workload wiki --scale X`` alone."""
    pages = max(5, int(FULL_PAGES * scale))
    return {
        "pages": pages,
        "titles": [f"Page_{index:03d}" for index in range(pages)],
        "editors": EDITORS,
    }


@dataclass
class Workload:
    """An application plus the request stream to drive it with."""

    app: Application
    requests: list[Request]
    label: str


def wiki_workload(
    scale: float = 1.0,
    seed: int = 2007,
    edit_fraction: float = 0.03,
    editors: int = 25,
) -> Workload:
    """Build the miniwiki app and its request stream.

    ``scale`` scales both the request count and the page population, which
    preserves the requests-per-page ratio (and hence batching opportunity;
    the paper notes smaller workloads are pessimistic for OROCHI).
    """
    num_requests = max(20, int(FULL_REQUESTS * scale))
    pop = population(scale)
    rng = random.Random(seed)
    app = miniwiki.build_app(pages=pop["pages"])
    titles = pop["titles"]

    requests: list[Request] = []
    picked = zipf_sample(rng, titles, ZIPF_BETA, num_requests)
    for index in range(num_requests):
        rid = f"w{index:06d}"
        roll = rng.random()
        title = picked[index]
        if roll < edit_fraction:
            editor = rng.randrange(editors)
            requests.append(
                Request(
                    rid,
                    "wiki_edit.php",
                    get={"title": title},
                    post={
                        "body": f"Edited body of {title}, pass {index}. "
                        f"See [[{titles[0]}]]. ''Updated''.",
                        "summary": f"edit {index}",
                    },
                    cookies={"sess": f"editor{editor}"},
                )
            )
        elif roll < edit_fraction + 0.02:
            requests.append(Request(rid, "wiki_list.php"))
        elif roll < edit_fraction + 0.03:
            requests.append(
                Request(rid, "wiki_search.php", get={"q": title[:6]})
            )
        elif roll < edit_fraction + 0.04:
            requests.append(
                Request(rid, "wiki_history.php", get={"title": title})
            )
        elif roll < edit_fraction + 0.045:
            requests.append(Request(rid, "wiki_random.php"))
        else:
            requests.append(
                Request(rid, "wiki_view.php", get={"title": title})
            )
    return Workload(app, requests, "MediaWiki")
