"""The cart/checkout workload: sessions with cross-request invariants.

Unlike the paper's three workloads, every shopper here is a small state
machine — browse a Zipf-popular catalog, build a session cart, then
walk ``reserve -> pay -> confirm`` (or cancel) — so correctness spans
requests: stock decremented at reserve must never go negative, and a
token can only be paid once.  ``cart_admin.php`` surfaces violations
(``OVERSOLD``) in-band.

The session model (:func:`new_session` / :func:`session_request`) is
shared with the streaming scenario factory
(:mod:`repro.scenarios.generator`): sessions are plain JSON-able dicts
so a generator checkpoint can be serialized and resumed mid-stream.
"""

from __future__ import annotations

import random

from repro.apps import minicart
from repro.trace.events import Request
from repro.workloads.wiki import Workload
from repro.workloads.zipf import zipf_sample

FULL_REQUESTS = 30_000
FULL_PRODUCTS = 60
ZIPF_BETA = 0.8
DEFAULT_STOCK = 40
#: Fraction of sessions that go on to reserve after filling a cart.
BUY_FRACTION = 0.6
#: Of the buyers, fraction that pays (the rest cancel the reservation).
PAY_FRACTION = 0.8
#: One stock-report request roughly every N session starts.
ADMIN_EVERY = 40


def population(scale: float) -> dict:
    """Data-population parameters at ``scale`` (1.0 = full size).

    Shared by :func:`cart_workload` and the scenario factory so both
    build the *same* app for the same scale — which is what lets
    ``repro audit`` / ``repro fuzz`` rebuild a synthesized bundle's app
    from ``--workload cart --scale X`` alone.
    """
    return {
        "products": max(6, int(FULL_PRODUCTS * scale)),
        "stock": DEFAULT_STOCK,
    }


def new_session(rng: random.Random, user: int, products: int,
                serial: int) -> dict:
    """Plan one shopper session as a JSON-able dict.

    The whole step list is drawn up front so a session's remaining
    behaviour is captured by ``(steps, pos)`` — the property the
    scenario generator's checkpoint/resume relies on.
    """
    product_ids = list(range(1, products + 1))
    picks = zipf_sample(rng, product_ids, ZIPF_BETA, 4)
    steps: list[list] = []
    for browse in range(rng.randint(1, 3)):
        steps.append(["browse", picks[browse % len(picks)]])
    token = f"t{user:07d}x{serial:07d}"
    if rng.random() < BUY_FRACTION:
        for add in range(rng.randint(1, 2)):
            steps.append(["add", picks[add], rng.randint(1, 3)])
        steps.append(["reserve"])
        if rng.random() < PAY_FRACTION:
            steps.append(["pay"])
            steps.append(["confirm"])
        else:
            steps.append(["cancel"])
    elif rng.random() < 0.3:
        # Window shopper: an abandoned cart.
        steps.append(["add", picks[0], 1])
    if serial % ADMIN_EVERY == 0:
        steps.append(["admin"])
    return {"user": user, "token": token, "steps": steps, "pos": 0}


def session_request(session: dict, rid: str) -> Request:
    """The session's current step as a concrete :class:`Request`."""
    step = session["steps"][session["pos"]]
    op = step[0]
    cookies = {"sess": f"u{session['user']:07d}"}
    if op == "browse":
        return Request(rid, "cart_browse.php", get={"p": str(step[1])},
                       cookies=cookies)
    if op == "add":
        return Request(rid, "cart_add.php",
                       get={"p": str(step[1]), "qty": str(step[2])},
                       cookies=cookies)
    if op == "admin":
        return Request(rid, "cart_admin.php")
    # reserve / pay / confirm / cancel all address the session's token.
    script = f"cart_{op}.php"
    return Request(rid, script, get={"t": session["token"]},
                   cookies=cookies)


def session_done(session: dict) -> bool:
    return session["pos"] >= len(session["steps"])


def cart_workload(scale: float = 1.0, seed: int = 2026) -> Workload:
    """Build the minicart app and a bounded-pool session interleave."""
    num_requests = max(20, int(FULL_REQUESTS * scale))
    pop = population(scale)
    app = minicart.build_app(products=pop["products"], stock=pop["stock"])
    rng = random.Random(seed)

    requests: list[Request] = []
    sessions: list[dict] = []
    serial = 0
    users = max(100, num_requests)  # plenty of distinct shoppers
    for index in range(num_requests):
        if not sessions or (len(sessions) < 16 and rng.random() < 0.4):
            serial += 1
            # Log-uniform rank: cheap approximate-Zipf user activity.
            user = int(users ** rng.random()) - 1
            sessions.append(
                new_session(rng, user, pop["products"], serial)
            )
        session = sessions[rng.randrange(len(sessions))]
        requests.append(session_request(session, f"s{index:06d}"))
        session["pos"] += 1
        if session_done(session):
            sessions.remove(session)
    return Workload(app, requests, "Cart/Checkout")
