"""The phpBB workload (§5): hot-topic views with a 1:40 registered:guest
ratio, replies from registered users, occasional logins.

Full scale is 30,000 requests; the paper's source data is one week of the
CentOS forum's most popular topic (63 posts, tens to thousands of views per
post, 83 distinct users).
"""

from __future__ import annotations

import random

from repro.apps import miniforum
from repro.trace.events import Request
from repro.workloads.wiki import Workload
from repro.workloads.zipf import zipf_sample

FULL_REQUESTS = 30_000
FULL_TOPICS = 12
REGISTERED_RATIO = 1.0 / 41.0  # 1 registered : 40 guests
USERS = 83


def population(scale: float) -> dict:
    """Data-population parameters at ``scale`` — shared with the
    scenario factory (see :func:`repro.workloads.wiki.population`)."""
    topics = max(2, int(FULL_TOPICS * min(1.0, scale * 4)))
    return {
        "topics": topics,
        "topic_ids": list(range(1, topics + 1)),
        "users": [f"user{index:03d}" for index in range(USERS)],
    }


def forum_workload(
    scale: float = 1.0,
    seed: int = 20170921,  # the paper's scrape date
    reply_fraction: float = 0.02,
    login_fraction: float = 0.01,
) -> Workload:
    num_requests = max(20, int(FULL_REQUESTS * scale))
    pop = population(scale)
    rng = random.Random(seed)
    app = miniforum.build_app(topics=pop["topics"])
    topic_ids = pop["topic_ids"]
    users = pop["users"]
    logged_in = set()

    requests: list[Request] = []
    hot_topics = zipf_sample(rng, topic_ids, 1.0, num_requests)
    for index in range(num_requests):
        rid = f"f{index:06d}"
        topic = hot_topics[index]
        registered = rng.random() < REGISTERED_RATIO
        user = rng.choice(users)
        roll = rng.random()
        if registered and (roll < login_fraction or user not in logged_in):
            logged_in.add(user)
            requests.append(
                Request(
                    rid,
                    "forum_login.php",
                    post={"name": user},
                    cookies={"sess": user},
                )
            )
        elif registered and roll < login_fraction + reply_fraction:
            requests.append(
                Request(
                    rid,
                    "forum_reply.php",
                    get={"t": str(topic)},
                    post={"body": f"Reply #{index} to topic {topic}: "
                          "works for me after a reboot."},
                    cookies={"sess": user},
                )
            )
        elif roll < 0.08:
            cookies = {"sess": user} if registered else {}
            requests.append(
                Request(rid, "forum_topics.php", cookies=cookies)
            )
        else:
            cookies = {"sess": user} if registered else {}
            requests.append(
                Request(
                    rid,
                    "forum_view.php",
                    get={"t": str(topic)},
                    cookies=cookies,
                )
            )
    return Workload(app, requests, "phpBB")
