"""Zipf sampling helpers.

The Wikipedia trace the paper downsampled follows a Zipf popularity
distribution with β = 0.53 (Urdaneta et al. [85]): the i-th most popular
page has weight 1 / i^β.
"""

from __future__ import annotations

import random
from collections.abc import Sequence


def zipf_weights(n: int, beta: float) -> list[float]:
    """Unnormalized Zipf weights for ranks 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [1.0 / (rank ** beta) for rank in range(1, n + 1)]


def zipf_sample(
    rng: random.Random, population: Sequence, beta: float, k: int
) -> list:
    """Draw ``k`` items (with replacement) Zipf-distributed by rank."""
    weights = zipf_weights(len(population), beta)
    return rng.choices(list(population), weights=weights, k=k)
