"""Workload generators (§5, "Applications and workloads").

Synthetic request streams with the paper's published distributional
parameters:

* :func:`wiki_workload` — Wikipedia-derived: Zipf(β=0.53) page popularity,
  20,000 requests to 200 pages at full scale, read-dominated;
* :func:`forum_workload` — CentOS-forum-derived: few hot topics,
  registered:guest ≈ 1:40, views ≫ replies, 30,000 requests at full scale;
* :func:`hotcrp_workload` — SIGCOMM'09-derived: 269 papers, 58 reviewers,
  820 reviews, 1-20 updates per paper, 2 versions per review, 100 page
  views per reviewer, ≈52,000 requests at full scale;
* :func:`cart_workload` — session state machines over the minicart app:
  browse, cart, then reserve -> pay -> confirm (or cancel), with the
  stock-never-negative invariant spanning requests.

All generators take a ``scale`` in (0, 1] so tests and CI can run small.
"""

from repro.workloads.wiki import wiki_workload
from repro.workloads.forum import forum_workload
from repro.workloads.hotcrp import hotcrp_workload
from repro.workloads.cart import cart_workload
from repro.workloads.zipf import zipf_weights, zipf_sample

__all__ = [
    "cart_workload",
    "forum_workload",
    "hotcrp_workload",
    "wiki_workload",
    "zipf_sample",
    "zipf_weights",
]
