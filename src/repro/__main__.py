"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — serve a built-in workload, audit it, print the verdict and
  the acceleration stats;
* ``record`` — serve a built-in workload and save the audit bundle
  (trace + reports + initial state) to a file, as the legacy JSON blob
  or the streaming epoch-segmented JSONL format (``--format jsonl``);
* ``audit`` — load a bundle (either format) and run the SSCO audit
  (optionally the simple-re-execution baseline for comparison).

All three subcommands expose the full audit knob set (``--strict``,
``--max-group-size``, ``--no-dedup``, ``--no-collapse``,
``--strict-registers``) plus the scaling knobs: ``--parallel N`` fans
group re-execution out over N worker processes, and ``--epoch-size N``
makes the server drain every N requests (``demo``/``record``) and the
auditor shard at the resulting quiescent cuts (``demo``/``audit``).

The built-in workloads are the paper's three applications: ``wiki``,
``forum``, ``hotcrp``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import figure9_decomposition, render_table
from repro.bench.harness import run_audit_phase
from repro.core import simple_audit, ssco_audit
from repro.core.reexec import DEFAULT_MAX_GROUP
from repro.io import load_audit_bundle_ex, save_audit_bundle
from repro.workloads import forum_workload, hotcrp_workload, wiki_workload

_WORKLOADS = {
    "wiki": wiki_workload,
    "forum": forum_workload,
    "hotcrp": hotcrp_workload,
}


def _build(args):
    factory = _WORKLOADS[args.workload]
    return factory(scale=args.scale, seed=args.seed)


def _serve(workload, args):
    from repro.server import Executor, RandomScheduler
    from repro.server.nondet import NondetSource

    executor = Executor(
        workload.app,
        scheduler=RandomScheduler(args.seed),
        max_concurrency=args.concurrency,
        nondet=NondetSource(seed=args.seed),
        epoch_size=args.epoch_size,
    )
    return executor.serve(workload.requests)


def _audit_kwargs(args) -> dict:
    """The full knob set, shared by every auditing subcommand."""
    return dict(
        strict=args.strict,
        dedup=not args.no_dedup,
        collapse=not args.no_collapse,
        strict_registers=args.strict_registers,
        max_group_size=args.max_group_size,
        workers=args.parallel,
    )


def cmd_demo(args) -> int:
    workload = _build(args)
    print(f"serving {len(workload.requests)} {workload.label} requests "
          f"(concurrency {args.concurrency}) ...")
    execution = _serve(workload, args)
    mode = (f"{args.parallel} workers" if args.parallel > 1 else "serial")
    print(f"auditing ({mode}) ...")
    run = run_audit_phase(
        workload, execution,
        epoch_cuts=execution.epoch_marks or None,
        **_audit_kwargs(args),
    )
    audit = run.audit
    if not audit.accepted:
        print(f"REJECTED: {audit.reason.value}: {audit.detail}")
        return 1
    stats = audit.stats
    alpha = 1 - stats["multi_steps"] / max(1, stats["steps"])
    print(f"ACCEPTED in {audit.phases['total'] * 1e3:.1f} ms "
          f"(simple re-execution: {run.baseline_audit.seconds * 1e3:.1f}"
          f" ms, speedup "
          f"{run.baseline_audit.seconds / audit.phases['total']:.2f}x)")
    print(f"groups={stats['groups']} alpha={alpha:.3f} "
          f"dedup={stats['dedup_hits']}/"
          f"{stats['dedup_hits'] + stats['dedup_misses']}")
    if stats.get("shard_count"):
        print(f"shards={stats['shard_count']}: " + " ".join(
            f"[{s['shard']}] {s['requests']}req "
            f"{s['reexec_seconds'] * 1e3:.1f}ms"
            for s in stats["shards"]
        ))
    rows = [{"phase": k, "seconds": v}
            for k, v in figure9_decomposition(run).items()]
    print(render_table(rows, ["phase", "seconds"]))
    return 0


def cmd_record(args) -> int:
    workload = _build(args)
    print(f"serving {len(workload.requests)} {workload.label} requests ...")
    execution = _serve(workload, args)
    save_audit_bundle(args.out, execution.trace, execution.reports,
                      execution.initial_state,
                      epoch_marks=execution.epoch_marks,
                      format=args.format)
    epochs = len(execution.epoch_marks) + 1 if execution.epoch_marks else 1
    print(f"wrote {args.out} [{args.format}] "
          f"({len(execution.trace)} events, "
          f"{execution.reports.op_count_total()} logged ops, "
          f"{epochs} epoch(s))")
    return 0


def cmd_audit(args) -> int:
    trace, reports, initial, epoch_marks = load_audit_bundle_ex(args.bundle)
    workload = _build(args)  # the program is the trusted input
    workers = args.parallel if args.parallel > 1 else args.concurrency
    cuts = None
    if args.epoch_size > 0:
        cuts = epoch_marks or None
    print(f"auditing {len(trace.request_ids())} requests against "
          f"{workload.label} "
          f"(workers={workers}, epoch_size={args.epoch_size}) ...")
    kwargs = _audit_kwargs(args)
    kwargs["workers"] = workers
    audit = ssco_audit(workload.app, trace, reports, initial,
                       epoch_size=args.epoch_size, epoch_cuts=cuts,
                       **kwargs)
    if audit.accepted:
        shards = audit.stats.get("shard_count")
        suffix = f" across {shards} shard(s)" if shards else ""
        print(f"ACCEPTED in {audit.phases['total'] * 1e3:.1f} ms{suffix}")
    else:
        print(f"REJECTED: {audit.reason.value}"
              + (f": {audit.detail}" if audit.detail else ""))
    if args.baseline:
        base = simple_audit(workload.app, trace, reports, initial)
        verdict = "ACCEPTED" if base.accepted else "REJECTED"
        print(f"simple re-execution baseline: {verdict} in "
              f"{base.seconds * 1e3:.1f} ms")
    return 0 if audit.accepted else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SSCO/OROCHI reproduction: serve and audit web "
                    "application workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--workload", choices=sorted(_WORKLOADS),
                       default="wiki")
        p.add_argument("--scale", type=float, default=0.02,
                       help="workload scale (1.0 = the paper's full size)")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--epoch-size", type=int, default=0,
                       help="serve: drain every N requests and record an "
                            "epoch mark; audit: shard at quiescent cuts "
                            "(0 disables)")

    def audit_knobs(p):
        p.add_argument("--strict", dest="strict", action="store_true",
                       default=True,
                       help="reject on in-group control-flow divergence "
                            "(default)")
        p.add_argument("--no-strict", dest="strict", action="store_false",
                       help="demote diverged groups to per-request "
                            "re-execution instead of rejecting")
        p.add_argument("--no-dedup", action="store_true",
                       help="disable read-query deduplication")
        p.add_argument("--no-collapse", action="store_true",
                       help="disable multivalue collapse")
        p.add_argument("--strict-registers", action="store_true",
                       help="reject register reads with no logged write")
        p.add_argument("--max-group-size", type=int,
                       default=DEFAULT_MAX_GROUP,
                       help="chunk re-execution groups beyond this size")
        p.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="fan group re-execution out over N worker "
                            "processes (1 = serial)")

    demo = sub.add_parser("demo", help="serve + audit, print stats")
    common(demo)
    demo.add_argument("--concurrency", type=int, default=8,
                      help="server's max in-flight requests")
    audit_knobs(demo)
    demo.set_defaults(func=cmd_demo)

    record = sub.add_parser("record", help="serve and save a bundle")
    common(record)
    record.add_argument("--concurrency", type=int, default=8,
                        help="server's max in-flight requests")
    record.add_argument("--out", default="audit_bundle.json")
    record.add_argument("--format", choices=("json", "jsonl"),
                        default="json",
                        help="bundle encoding: legacy JSON blob or "
                             "streaming epoch-segmented JSONL")
    record.set_defaults(func=cmd_record)

    audit = sub.add_parser("audit", help="audit a saved bundle")
    common(audit)
    audit.add_argument("--concurrency", type=int, default=1,
                       help="audit worker processes (same as --parallel; "
                            "--parallel wins when both are given)")
    audit_knobs(audit)
    audit.add_argument("bundle")
    audit.add_argument("--baseline", action="store_true",
                       help="also run the simple re-execution baseline")
    audit.set_defaults(func=cmd_audit)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
