"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — serve a built-in workload, audit it, print the verdict and
  the acceleration stats;
* ``record`` — serve a built-in workload and save the audit bundle
  (trace + reports + initial state) to a file, as the legacy JSON blob,
  the streaming JSONL format (``--format jsonl``), or the per-epoch
  segmented JSONL layout (``--format jsonl-epochs``);
* ``serve`` — serve a built-in workload and *publish* the audit stream
  over TCP (``--listen HOST:PORT``) for remote auditors, epoch by
  epoch, via :class:`~repro.net.publisher.BundlePublisher`;
* ``audit`` — load a bundle (any format) and run the SSCO audit, tail
  a live JSONL bundle epoch by epoch (``--follow``), or attach to a
  remote ``serve`` publisher (``--connect HOST:PORT``) — both stream
  through an incremental :class:`~repro.core.auditor.AuditSession`.
  With ``--fleet-listen [HOST:]PORT`` the session additionally fans
  each epoch out to registered ``repro worker`` daemons (composes
  with ``--connect``: one auditor, N worker hosts, one recorder);
* ``worker`` — join a fleet coordinator (``--join HOST:PORT``) and
  execute dispatched epoch audits until dismissed (see
  :mod:`repro.fleet` and ``docs/fleet.md``);
* ``lint`` — run the static analyzer over a built-in application's
  weblang scripts and print the audit-soundness diagnostics (text or
  ``--json``; ``--fail-on`` gates the exit code — see
  ``docs/analysis.md``);
* ``query`` — time-travel forensics: reconstruct any SQL result, KV
  key, or register from a recorded bundle at any epoch boundary or
  request point (``--as-of <epoch|request-id>``), with producing
  requests attributed (see ``docs/forensics.md``);
* ``explain`` — targeted single-request re-audit: replay exactly one
  request's control-flow chunk plus its read-lineage closure and print
  a scoped ACCEPT/REJECT with the regenerated body.

Every auditing subcommand is driven by one validated
:class:`~repro.core.config.AuditConfig`: flags layer over an optional
``--config audit.json`` file, which layers over the defaults.  The
canonical scaling flag is ``--workers N`` (the old ``--parallel`` and
the audit subcommand's ``--concurrency`` remain as deprecated aliases);
``--epoch-size N`` makes the server drain every N requests
(``demo``/``record``) and the auditor shard at the resulting quiescent
cuts, ``--epoch-cuts "i,j,k"`` pins explicit cut positions,
``--epoch-workers N`` audits those epoch shards concurrently (a
redo-only state precompute materializes each shard's initial state
first), and ``--backend`` selects the registered re-execution engine.

The built-in workloads are the paper's three applications: ``wiki``,
``forum``, ``hotcrp``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.apps import (
    build_minicart,
    build_minicrp,
    build_miniforum,
    build_miniwiki,
)
from repro.bench import figure9_decomposition, render_table
from repro.bench.harness import run_audit_phase
from repro.core import Auditor, simple_audit
from repro.core.config import AuditConfig, parse_epoch_cuts
from repro.core.partition import partition_audit_inputs
from repro.core.reexec import available_backends
from repro.forensics import (
    AsOfError,
    Timeline,
    UnknownRequest,
    query_asof,
    reaudit_request,
)
from repro.lang.analysis import SEVERITIES, analyze_app
from repro.io import (
    BundleReader,
    BundleWriter,
    _enc,
    load_audit_bundle_ex,
    save_audit_bundle,
)
from repro.net import (
    BundlePublisher,
    ProtocolError,
    RemoteBundleReader,
    TransportError,
)
from repro.workloads import (
    cart_workload,
    forum_workload,
    hotcrp_workload,
    wiki_workload,
)

_WORKLOADS = {
    "wiki": wiki_workload,
    "forum": forum_workload,
    "hotcrp": hotcrp_workload,
    "cart": cart_workload,
}

_LINT_APPS = {
    "miniwiki": build_miniwiki,
    "miniforum": build_miniforum,
    "minicrp": build_minicrp,
    "minicart": build_minicart,
}
#: Workload-style names accepted as aliases by ``repro lint``.
_LINT_ALIASES = {"wiki": "miniwiki", "forum": "miniforum",
                 "hotcrp": "minicrp", "cart": "minicart"}


class _DeprecatedAlias(argparse.Action):
    """A flag kept for compatibility that warns and forwards its value."""

    def __init__(self, *args, preferred: str = "--workers", **kwargs):
        self.preferred = preferred
        super().__init__(*args, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(
            f"warning: {option_string} is deprecated; use "
            f"{self.preferred} instead",
            file=sys.stderr,
        )
        setattr(namespace, self.dest, values)


def _build(args):
    factory = _WORKLOADS[args.workload]
    return factory(scale=args.scale, seed=args.seed)


def _serve(workload, args):
    from repro.server import Executor, RandomScheduler
    from repro.server.nondet import NondetSource

    executor = Executor(
        workload.app,
        scheduler=RandomScheduler(args.seed),
        max_concurrency=args.concurrency,
        nondet=NondetSource(seed=args.seed),
        epoch_size=args.epoch_size or 0,
    )
    return executor.serve(workload.requests)


def _fleet_endpoint(text: str) -> str:
    """``--fleet-listen`` accepts ``PORT`` or ``HOST:PORT``; a bare
    port listens on every interface (workers are remote hosts)."""
    return text if ":" in text else f"0.0.0.0:{text}"


def _config_from_args(parser, args) -> AuditConfig:
    """One validated config from defaults < ``--config`` < flags."""
    try:
        return AuditConfig.from_args(args)
    except (ValueError, OSError) as exc:
        parser.error(str(exc))


def cmd_demo(args) -> int:
    config = _config_from_args(args._parser, args)
    workload = _build(args)
    print(f"serving {len(workload.requests)} {workload.label} requests "
          f"(concurrency {args.concurrency}) ...")
    execution = _serve(workload, args)
    if execution.epoch_marks and config.epoch_cuts is None:
        config = config.replace(epoch_cuts=tuple(execution.epoch_marks))
    print(f"auditing ({config.describe()}) ...")
    run = run_audit_phase(workload, execution, config=config)
    audit = run.audit
    if not audit.accepted:
        print(f"REJECTED: {audit.reason.value}: {audit.detail}")
        return 1
    stats = audit.stats
    alpha = 1 - stats["multi_steps"] / max(1, stats["steps"])
    print(f"ACCEPTED in {audit.phases['total'] * 1e3:.1f} ms "
          f"(simple re-execution: {run.baseline_audit.seconds * 1e3:.1f}"
          f" ms, speedup "
          f"{run.baseline_audit.seconds / audit.phases['total']:.2f}x)")
    print(f"groups={stats['groups']} alpha={alpha:.3f} "
          f"dedup={stats['dedup_hits']}/"
          f"{stats['dedup_hits'] + stats['dedup_misses']}")
    if stats.get("shard_count"):
        print(f"shards={stats['shard_count']}: " + " ".join(
            f"[{s['shard']}] {s['requests']}req "
            f"{s['reexec_seconds'] * 1e3:.1f}ms"
            for s in stats["shards"]
        ))
    rows = [{"phase": k, "seconds": v}
            for k, v in figure9_decomposition(run).items()]
    print(render_table(rows, ["phase", "seconds"]))
    return 0


def cmd_record(args) -> int:
    workload = _build(args)
    print(f"serving {len(workload.requests)} {workload.label} requests ...")
    execution = _serve(workload, args)
    save_audit_bundle(args.out, execution.trace, execution.reports,
                      execution.initial_state,
                      epoch_marks=execution.epoch_marks,
                      format=args.format)
    epochs = len(execution.epoch_marks) + 1 if execution.epoch_marks else 1
    print(f"wrote {args.out} [{args.format}] "
          f"({len(execution.trace)} events, "
          f"{execution.reports.op_count_total()} logged ops, "
          f"{epochs} epoch(s))")
    return 0


def cmd_serve(args) -> int:
    """Record a workload and publish the audit stream over TCP."""
    config = _config_from_args(args._parser, args)
    if not config.listen:
        args._parser.error("serve requires --listen HOST:PORT "
                           "(port 0 binds an ephemeral port)")
    workload = _build(args)
    # Bind before the (long) recording run: a taken or privileged port
    # fails in milliseconds with a clean error, auditors can attach
    # early, and the --out mirror is not yet truncated.
    try:
        publisher = BundlePublisher(config.listen,
                                    stall_timeout=config.net_idle_timeout,
                                    spool_epochs=args.spool_epochs,
                                    batch_records=config.batch_records,
                                    batch_bytes=config.batch_bytes)
    except OSError as exc:
        print(f"error: cannot listen on {config.listen}: {exc}",
              file=sys.stderr)
        return 2
    writer = None
    try:
        with publisher:
            print(f"listening on {publisher.endpoint}", flush=True)
            print(f"serving {len(workload.requests)} {workload.label} "
                  f"requests (concurrency {args.concurrency}) ...")
            execution = _serve(workload, args)
            shards = partition_audit_inputs(execution.trace,
                                            execution.reports,
                                            cuts=execution.epoch_marks)
            if args.out:
                writer = BundleWriter(args.out, segmented=True)
                publisher.writer = writer
            print(f"publishing {len(shards)} epoch(s) on "
                  f"{publisher.endpoint} "
                  f"({len(execution.trace)} events, "
                  f"{execution.reports.op_count_total()} logged ops)",
                  flush=True)
            publisher.write_state(execution.initial_state)
            for shard in shards:
                publisher.write_epoch(shard.trace, shard.reports)
                if args.epoch_delay:
                    time.sleep(args.epoch_delay)
            publisher.write_end()
            drained = publisher.wait_drained(timeout=args.linger)
    finally:
        if writer is not None:
            writer.close()
    if drained:
        print("stream complete (auditor drained)")
    else:
        print("stream complete (no auditor drained the stream within "
              f"--linger {args.linger}s)")
    return 0


def cmd_audit(args) -> int:
    config = _config_from_args(args._parser, args)
    workload = _build(args)  # the program is the trusted input
    if config.connect:
        if args.bundle:
            args._parser.error(
                "give either a bundle file or --connect, not both"
            )
        if args.follow:
            args._parser.error(
                "--follow tails a bundle file; a --connect stream is "
                "already live (its patience is --net-idle-timeout)"
            )
        return _audit_connect(args, workload, config)
    if not args.bundle:
        args._parser.error(
            "audit needs a bundle file (or --connect HOST:PORT)"
        )
    if args.follow:
        return _audit_follow(args, workload, config)
    trace, reports, initial, epoch_marks = load_audit_bundle_ex(args.bundle)
    if (config.epoch_cuts is None and (config.epoch_size or 0) > 0
            and epoch_marks):
        # The recorded quiescent marks are the natural cut positions.
        config = config.replace(epoch_cuts=tuple(epoch_marks))
    if not args.json:
        print(f"auditing {len(trace.request_ids())} requests against "
              f"{workload.label} ({config.describe()}) ...")
    audit = Auditor(workload.app, config).audit(trace, reports, initial)
    if args.json:
        payload = _audit_summary(audit)
        if args.baseline:
            base = simple_audit(workload.app, trace, reports, initial)
            payload["baseline"] = {"accepted": base.accepted,
                                   "seconds": base.seconds}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if audit.accepted else 1
    if audit.accepted:
        shards = audit.stats.get("shard_count")
        suffix = f" across {shards} shard(s)" if shards else ""
        print(f"ACCEPTED in {audit.phases['total'] * 1e3:.1f} ms{suffix}")
    else:
        print(f"REJECTED: {audit.reason.value}"
              + (f": {audit.detail}" if audit.detail else ""))
    if args.baseline:
        base = simple_audit(workload.app, trace, reports, initial)
        verdict = "ACCEPTED" if base.accepted else "REJECTED"
        print(f"simple re-execution baseline: {verdict} in "
              f"{base.seconds * 1e3:.1f} ms")
    return 0 if audit.accepted else 1


def _audit_follow(args, workload, config: AuditConfig) -> int:
    """Tail a (possibly still-growing) JSONL bundle epoch by epoch
    through an incremental audit session — the paper's continuous
    deployment: audit epoch N while the server records epoch N+1."""
    timeout = args.follow_timeout
    try:
        # Waits out the startup race: the auditor may launch before the
        # recording server has flushed the bundle's header line.
        reader = BundleReader.open(args.bundle, follow=True,
                                   idle_timeout=timeout)
    except (OSError, ValueError) as exc:
        print(f"error: --follow needs a streaming JSONL bundle: {exc}",
              file=sys.stderr)
        return 2
    if not args.json:
        print(f"following {args.bundle} against {workload.label} "
              f"({config.describe()}) ...")
    return _drive_stream_session(reader, workload, config, timeout,
                                 as_json=args.json)


def _audit_connect(args, workload, config: AuditConfig) -> int:
    """Attach to a remote ``repro serve`` publisher and audit its live
    stream — the paper's deployment with the verifier on its own
    machine, no shared filesystem."""
    try:
        reader = RemoteBundleReader(
            config.connect,
            connect_timeout=config.net_connect_timeout,
            idle_timeout=config.net_idle_timeout,
            reconnect=config.net_retries,
        )
    except (TransportError, ProtocolError, ValueError, OSError) as exc:
        print(f"error: cannot attach to publisher at {config.connect}: "
              f"{exc}", file=sys.stderr)
        return 2
    if not args.json:
        print(f"auditing live stream from {config.connect} against "
              f"{workload.label} ({config.describe()}) ...")
    try:
        return _drive_stream_session(reader, workload, config,
                                     config.net_idle_timeout,
                                     as_json=args.json)
    except (TransportError, ProtocolError) as exc:
        print(f"error: live stream failed: {exc}", file=sys.stderr)
        return 2


def cmd_worker(args) -> int:
    """Join a fleet coordinator and execute dispatched epoch audits."""
    from repro.fleet import FleetWorker

    try:
        worker = FleetWorker(args.join, name=args.name,
                             heartbeat_interval=args.heartbeat,
                             connect_timeout=args.connect_timeout)
    except ValueError as exc:
        args._parser.error(str(exc))
    print(f"joining fleet coordinator at {args.join} as {worker.name} "
          f"...", flush=True)
    try:
        worker.run()
    except (TransportError, ProtocolError) as exc:
        print(f"error: cannot join fleet at {args.join}: {exc}",
              file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("worker interrupted", file=sys.stderr)
        return 130
    print(f"worker done: {worker.epochs_run} epoch(s) audited, "
          f"{worker.epochs_failed} failed")
    return 0


def cmd_synth(args) -> int:
    """Stream a synthetic Zipf-skewed workload into a bundle."""
    from repro.scenarios import ScenarioSpec, synthesize

    try:
        spec = ScenarioSpec(
            workload=args.workload,
            requests=args.requests,
            scale=args.scale,
            seed=args.seed,
            users=args.users,
            max_sessions=args.max_sessions,
            epoch_size=args.epoch_size or 500,
            concurrency=args.concurrency,
        )
    except ValueError as exc:
        args._parser.error(str(exc))
    checkpoint = None
    if args.resume:
        try:
            with open(args.resume) as fh:
                checkpoint = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read checkpoint {args.resume}: {exc}",
                  file=sys.stderr)
            return 2
    progress = None
    if not args.json:
        print(f"synthesizing {spec.requests} {args.workload} requests "
              f"(scale {spec.scale}, seed {spec.seed}, "
              f"{spec.users} users) into {args.out} ...")
        last = [time.monotonic()]

        def progress(p):
            now = time.monotonic()
            if now - last[0] < 2.0:
                return
            last[0] = now
            rate = p.requests / p.elapsed_seconds
            print(f"  epoch {p.epoch}: {p.requests} requests, "
                  f"{p.events} events, {rate:.0f} req/s", flush=True)

    try:
        summary = synthesize(
            spec, args.out,
            profile_path=args.profile,
            checkpoint=checkpoint,
            checkpoint_path=args.checkpoint_out,
            progress=progress,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary["bundle"] = args.out
    summary["profile"] = args.profile
    summary["checkpoint"] = args.checkpoint_out
    failed = summary["verified"] is False
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 1 if failed else 0
    print(f"wrote {summary['events']} events / {summary['epochs']} "
          f"epoch(s) in {summary['elapsed_seconds']:.1f}s "
          f"({summary['requests_per_second']:.0f} req/s)")
    if args.profile:
        print(f"profile: {summary['profile_groups']} groups -> "
              f"{args.profile}")
    if summary["verified"] is not None:
        print("self-audit:",
              "ACCEPTED" if summary["verified"] else "REJECTED")
    if args.checkpoint_out:
        print(f"checkpoint: {args.checkpoint_out}")
    return 1 if failed else 0


def cmd_fuzz(args) -> int:
    """Tamper-fuzz a recorded bundle; every mutation must be REJECTED."""
    from repro.scenarios import build_scenario_app, fuzz_bundle

    operators = None
    if args.operators:
        operators = tuple(
            name.strip() for name in args.operators.split(",")
            if name.strip()
        )
    app = build_scenario_app(args.workload, args.scale)
    progress = None
    if not args.json:
        print(f"fuzzing {args.bundle} with {args.mutations} mutations "
              f"(seed {args.seed}) against {args.workload} "
              f"scale {args.scale} ...")

        def progress(outcome):
            if not outcome.rejected:
                print(f"  mutation {outcome.index} "
                      f"({outcome.operator}): ACCEPTED "
                      "<- soundness violation", flush=True)

    try:
        report = fuzz_bundle(
            args.bundle, app,
            mutations=args.mutations,
            seed=args.seed,
            operators=operators,
            splice_with=args.splice_with,
            shrink=not args.no_shrink,
            progress=progress,
        )
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = report.to_json()
    payload["workload"] = args.workload
    payload["scale"] = args.scale
    accepted = report.accepted
    if accepted and args.reproducer_out:
        reproducer = {
            "bundle": args.bundle,
            "workload": args.workload,
            "scale": args.scale,
            "seed": args.seed,
            "mutations": [o.to_json() for o in accepted],
        }
        with open(args.reproducer_out, "w") as fh:
            json.dump(reproducer, fh, indent=2, sort_keys=True)
            fh.write("\n")
        payload["reproducer"] = args.reproducer_out
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if accepted else 0
    for name in sorted(payload["operators"]):
        stats = payload["operators"][name]
        print(f"  {name}: {stats['rejected']}/{stats['mutations']} "
              "rejected")
    channels = payload["channels"]
    print(f"channels: audit={channels['audit']} load={channels['load']} "
          f"wire={channels['wire']}")
    if accepted:
        print(f"SOUNDNESS VIOLATION: {len(accepted)} of "
              f"{report.mutations} mutations ACCEPTED")
        for outcome in accepted:
            edits = outcome.shrunk or outcome.edits
            print(f"  [{outcome.index}] {outcome.operator}: "
                  f"{len(edits)} edit(s) in minimal reproducer")
        if args.reproducer_out:
            print(f"reproducer: {args.reproducer_out}")
        return 1
    print(f"all {report.rejected}/{report.mutations} mutations REJECTED "
          f"in {report.elapsed_seconds:.1f}s")
    return 0


def cmd_lint(args) -> int:
    """Statically analyze one built-in app; print the diagnostics."""
    name = _LINT_ALIASES.get(args.app, args.app)
    app = _LINT_APPS[name]()
    reports = analyze_app(app)
    counts = {severity: 0 for severity in SEVERITIES}
    for report in reports.values():
        for severity, n in report.severity_counts().items():
            counts[severity] += n
    if args.json:
        payload = {
            "app": name,
            "scripts": {script: report.to_json()
                        for script, report in reports.items()},
            "summary": {"errors": counts["error"],
                        "warnings": counts["warning"],
                        "infos": counts["info"]},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for script in sorted(reports):
            for diag in sorted(reports[script].diagnostics,
                               key=lambda d: (d.nid, d.code)):
                print(diag.format())
        print(f"lint[{name}]: errors={counts['error']} "
              f"warnings={counts['warning']} infos={counts['info']}")
    threshold = SEVERITIES.index(args.fail_on)
    return 1 if any(counts[s] for s in SEVERITIES[threshold:]) else 0


def _load_timeline(args, workload, config) -> Timeline | None:
    """Build the forensic timeline for ``query``/``explain``; prints
    the error and returns ``None`` when the bundle cannot be primed."""
    try:
        return Timeline.from_bundle(args.bundle, workload.app,
                                    options=config.to_options())
    except (OSError, ValueError) as exc:
        print(f"error: cannot load bundle {args.bundle}: {exc}",
              file=sys.stderr)
        return None


def _producer_json(producer) -> dict:
    return {
        "epoch": producer.epoch,
        "request": producer.rid,
        "object": producer.obj,
        "detail": producer.detail,
        "initial": producer.is_initial,
    }


def _producer_text(producer) -> str:
    if producer.is_initial:
        where = "initial state (pre-trace)"
    else:
        where = f"{producer.rid} (epoch {producer.epoch})"
    detail = f" [{producer.detail}]" if producer.detail else ""
    return f"{where}{detail}"


def cmd_query(args) -> int:
    """Reconstruct one value at an as-of point from a recorded bundle."""
    config = _config_from_args(args._parser, args)
    workload = _build(args)
    timeline = _load_timeline(args, workload, config)
    if timeline is None:
        return 2
    try:
        result = query_asof(timeline, args.as_of, args.target)
    except (UnknownRequest, AsOfError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.json:
        payload = {
            "kind": result.kind,
            "target": result.target,
            "as_of": {"epoch": result.point.epoch,
                      "request": result.point.rid},
            "rows": result.rows,
            "value": _enc(result.value),
            "producers": [_producer_json(p) for p in result.producers],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{result.target} as of {result.point.describe()}:")
    if result.kind == "sql":
        if not result.rows:
            print("  (no rows)")
        for row in result.rows or ():
            print("  row: " + ", ".join(f"{k}={v!r}"
                                        for k, v in row.items()))
    else:
        print(f"  value: {result.value!r}")
    for producer in result.producers:
        print(f"  produced by: {_producer_text(producer)}")
    return 0


def cmd_explain(args) -> int:
    """Scoped single-request re-audit of a recorded bundle."""
    config = _config_from_args(args._parser, args)
    workload = _build(args)
    timeline = _load_timeline(args, workload, config)
    if timeline is None:
        return 2
    try:
        result = reaudit_request(timeline, args.request_id,
                                 backend=config.backend)
    except UnknownRequest as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    entry = timeline.entry(args.request_id)
    lineage = result.lineage
    body_matches = None
    if not entry.aborted and result.accepted:
        body_matches = result.body == result.expected_body
    if args.json:
        payload = {
            "request": result.rid,
            "epoch": result.epoch,
            "groups": list(entry.groups),
            "chunk": entry.chunk,
            "verdict": "ACCEPTED" if result.accepted else "REJECTED",
            "accepted": result.accepted,
            "reason": result.reason.value if result.reason else None,
            "detail": result.detail or "",
            "aborted": entry.aborted,
            "body_matches": body_matches,
            "lineage": {
                "requests": [list(node) for node in lineage.requests],
                "edges": len(lineage.edges),
                "initial_reads": lineage.initial_reads,
            },
            "replayed": {"requests": len(result.replayed),
                         "chunks": result.chunks_replayed},
            "stats": result.stats,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if result.accepted else 1
    groups = ", ".join(entry.groups) or "(none)"
    print(f"request {result.rid}: epoch {result.epoch}, "
          f"group {groups}, chunk {entry.chunk}, "
          f"{entry.op_count} claimed op(s)")
    print(f"lineage closure: {len(lineage.requests)} request(s), "
          f"{len(lineage.edges)} edge(s), "
          f"{lineage.initial_reads} initial-state read(s)")
    print(f"replayed {len(result.replayed)} request(s) in "
          f"{result.chunks_replayed} chunk(s), "
          f"{result.stats['steps']} step(s)")
    if result.accepted:
        suffix = ("aborted request, no body to compare"
                  if entry.aborted
                  else "regenerated body matches the trace")
        print(f"ACCEPTED: request {result.rid} scoped re-audit "
              f"({suffix})")
        return 0
    print(f"REJECTED: {result.reason.value}"
          + (f": {result.detail}" if result.detail else ""))
    return 1


def _audit_summary(audit) -> dict:
    """The machine-readable verdict payload of ``audit --json``.

    Stable schema: ``verdict``/``accepted``/``reason``/``detail``,
    per-phase seconds, the summed counter stats, the per-epoch shard
    summaries (``epochs``), and the first rejecting epoch's index
    (``rejecting_epoch``, ``null`` on a monolithic or accepted audit).
    """
    stats = {name: value for name, value in audit.stats.items()
             if name not in ("shards", "group_alphas")}
    epochs = audit.stats.get("shards")
    rejecting = None
    if epochs:
        for shard in epochs:
            if not shard.get("accepted", True):
                rejecting = shard["shard"]
                break
    elif not audit.accepted:
        rejecting = 0 if audit.stats.get("shard_count") else None
    return {
        "verdict": "ACCEPTED" if audit.accepted else "REJECTED",
        "accepted": audit.accepted,
        "reason": audit.reason.value if audit.reason else None,
        "detail": audit.detail or "",
        "phases": audit.phases,
        "stats": stats,
        "epochs": epochs,
        "rejecting_epoch": rejecting,
    }


def _print_epoch_verdict(epoch) -> bool:
    """Print one epoch's line; returns True when it rejected."""
    verdict = "ACCEPTED" if epoch.accepted else "REJECTED"
    print(f"epoch {epoch.index}: {verdict} "
          f"({epoch.requests} requests, "
          f"{epoch.phases.get('total', 0.0) * 1e3:.1f} ms)")
    return not epoch.accepted


def _drive_stream_session(reader, workload, config: AuditConfig,
                          timeout, as_json: bool = False) -> int:
    """The live audit loop shared by ``--follow`` (file tail) and
    ``--connect`` (socket): feed each arriving epoch slice into an
    incremental audit session, print per-epoch verdicts, merge.

    Feeding is asynchronous: with ``epoch_workers > 1`` the session
    audits several epochs concurrently while this loop keeps ingesting
    (bounded by the session's prepass-depth backpressure); verdicts are
    printed in epoch order as they settle.  On a synchronous session
    every handle resolves immediately, so the loop degenerates to the
    strict feed-print alternation.
    """
    def settle(epoch) -> bool:
        if as_json:
            return not epoch.accepted
        return _print_epoch_verdict(epoch)

    with reader:
        initial = reader.read_initial_state(follow=True,
                                            idle_timeout=timeout)
        auditor = Auditor(workload.app, config)
        rejected = False
        with auditor.session(initial) as session:
            pending = []
            for epoch_slice in reader.epochs(follow=True,
                                             idle_timeout=timeout):
                pending.append(session.submit_epoch(epoch_slice.trace,
                                                    epoch_slice.reports))
                while pending and pending[0].done():
                    if settle(pending.pop(0).result()):
                        rejected = True
                        break
                if rejected:
                    break
            while pending and not rejected:
                rejected = settle(pending.pop(0).result())
            audit = session.close()
    if as_json:
        print(json.dumps(_audit_summary(audit), indent=2, sort_keys=True))
        return 0 if audit.accepted else 1
    if audit.accepted:
        print(f"ACCEPTED in {audit.phases['total'] * 1e3:.1f} ms "
              f"across {audit.stats['shard_count']} epoch(s)")
        return 0
    print(f"REJECTED: {audit.reason.value}"
          + (f": {audit.detail}" if audit.detail else ""))
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SSCO/OROCHI reproduction: serve and audit web "
                    "application workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--workload", choices=sorted(_WORKLOADS),
                       default="wiki")
        p.add_argument("--scale", type=float, default=0.02,
                       help="workload scale (1.0 = the paper's full size)")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--epoch-size", type=int, default=None,
                       help="serve: drain every N requests and record an "
                            "epoch mark; audit: shard at quiescent cuts "
                            "(0 disables)")

    def audit_knobs(p):
        # Every knob defaults to None so AuditConfig.from_args can tell
        # "not given" from "given the default" (--config layering).
        p.add_argument("--strict", dest="strict", action="store_true",
                       default=None,
                       help="reject on in-group control-flow divergence "
                            "(default)")
        p.add_argument("--no-strict", dest="strict", action="store_false",
                       help="demote diverged groups to per-request "
                            "re-execution instead of rejecting")
        p.add_argument("--plan-hints", dest="plan_hints",
                       action="store_true", default=None,
                       help="consult the static analyzer's divergence "
                            "hazards during chunk planning (non-strict "
                            "audits only; see `repro lint`)")
        p.add_argument("--no-dedup", action="store_true", default=None,
                       help="disable read-query deduplication")
        p.add_argument("--no-collapse", action="store_true", default=None,
                       help="disable multivalue collapse")
        p.add_argument("--strict-registers", action="store_true",
                       default=None,
                       help="reject register reads with no logged write")
        p.add_argument("--max-group-size", type=int, default=None,
                       help="chunk re-execution groups beyond this size")
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="fan group re-execution out over N worker "
                            "processes (1 = serial)")
        p.add_argument("--parallel", dest="workers", type=int, metavar="N",
                       action=_DeprecatedAlias,
                       help="deprecated alias for --workers")
        p.add_argument("--epoch-workers", type=int, default=None,
                       metavar="N",
                       help="audit epoch shards concurrently, N at a "
                            "time, on a shared persistent process pool "
                            "after a redo-only state precompute "
                            "(1 = serial epoch chain; pair with "
                            "--epoch-size/--epoch-cuts)")
        p.add_argument("--prepass-depth", type=int, default=None,
                       metavar="N",
                       help="bound on in-flight primed epochs: how far "
                            "the speculative state precompute may run "
                            "ahead of the slowest unfinished epoch "
                            "audit (0 = 2 * epoch-workers)")
        p.add_argument("--epoch-threads", action="store_true",
                       default=None,
                       help="keep the thread-based epoch driver "
                            "instead of process-level epoch execution "
                            "(results are identical; for comparison)")
        p.add_argument("--backend", choices=available_backends(),
                       default=None,
                       help="registered re-execution backend "
                            "(default: accinterp)")
        p.add_argument("--epoch-cuts", type=parse_epoch_cuts, default=None,
                       metavar="I,J,K",
                       help="explicit cut positions (event indexes); "
                            "overrides --epoch-size")
        p.add_argument("--config", default=None, metavar="AUDIT.JSON",
                       help="audit config file (flags override its "
                            "fields; see AuditConfig.to_json)")

    demo = sub.add_parser("demo", help="serve + audit, print stats")
    common(demo)
    demo.add_argument("--concurrency", type=int, default=8,
                      help="server's max in-flight requests")
    audit_knobs(demo)
    demo.set_defaults(func=cmd_demo)

    record = sub.add_parser("record", help="serve and save a bundle")
    common(record)
    record.add_argument("--concurrency", type=int, default=8,
                        help="server's max in-flight requests")
    record.add_argument("--out", default="audit_bundle.json")
    record.add_argument("--format",
                        choices=("json", "jsonl", "jsonl-epochs"),
                        default="json",
                        help="bundle encoding: legacy JSON blob, "
                             "streaming JSONL, or per-epoch segmented "
                             "JSONL (tailable with audit --follow)")
    record.set_defaults(func=cmd_record)

    serve = sub.add_parser(
        "serve",
        help="serve a workload and publish the live audit stream "
             "over TCP (audit it with: audit --connect HOST:PORT)",
    )
    common(serve)
    serve.add_argument("--concurrency", type=int, default=8,
                       help="server's max in-flight requests")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="publish the framed audit stream here "
                            "(port 0 binds an ephemeral port; the bound "
                            "address is printed)")
    serve.add_argument("--out", default=None, metavar="BUNDLE.JSONL",
                       help="also mirror the stream to a segmented "
                            "JSONL bundle file")
    serve.add_argument("--epoch-delay", type=float, default=0.0,
                       metavar="SECONDS",
                       help="pause between published epochs (stands in "
                            "for a live recorder mid-stream)")
    serve.add_argument("--linger", type=float, default=30.0,
                       metavar="SECONDS",
                       help="after the end record, wait this long for "
                            "an auditor to drain the stream")
    serve.add_argument("--net-idle-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="drop a subscriber that lags this long "
                            "(it can reconnect and resume)")
    serve.add_argument("--batch-records", type=int, default=None,
                       dest="batch_records", metavar="N",
                       help="records per RECORD_BATCH wire frame "
                            "(default 64; 1 disables batching)")
    serve.add_argument("--batch-bytes", type=int, default=None,
                       dest="batch_bytes", metavar="BYTES",
                       help="flush the pending wire batch at this many "
                            "payload bytes (default 262144)")
    serve.add_argument("--spool-epochs", type=int, default=None,
                       metavar="N",
                       help="keep only the newest N sealed epochs for "
                            "late-connect/resume replay (bounds "
                            "publisher memory; default: keep all)")
    serve.add_argument("--config", default=None, metavar="AUDIT.JSON",
                       help="audit config file for the transport knobs "
                            "(listen, net_idle_timeout); flags override "
                            "its fields")
    serve.set_defaults(func=cmd_serve)

    audit = sub.add_parser("audit", help="audit a saved bundle or a "
                                         "live stream")
    common(audit)
    audit_knobs(audit)
    audit.add_argument("--concurrency", dest="workers", type=int,
                       metavar="N", action=_DeprecatedAlias,
                       help="deprecated alias for --workers")
    audit.add_argument("bundle", nargs="?", default=None)
    audit.add_argument("--baseline", action="store_true",
                       help="also run the simple re-execution baseline")
    audit.add_argument("--json", action="store_true",
                       help="emit a machine-readable verdict summary "
                            "(verdict, per-epoch stats, rejecting "
                            "epoch) instead of text")
    audit.add_argument("--follow", action="store_true",
                       help="tail a JSONL bundle epoch by epoch through "
                            "an incremental audit session")
    audit.add_argument("--follow-timeout", type=float, default=3.0,
                       metavar="SECONDS",
                       help="--follow: give up after this long without "
                            "new data (default 3s)")
    audit.add_argument("--connect", default=None, metavar="HOST:PORT",
                       help="audit the live stream of a `repro serve` "
                            "publisher instead of a bundle file")
    audit.add_argument("--net-connect-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="--connect: bound on connect + handshake "
                            "(refused connections are retried until it "
                            "expires; default 5s)")
    audit.add_argument("--net-idle-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="--connect: give up after this long without "
                            "a frame (default 30s)")
    audit.add_argument("--net-retries", type=int, default=None,
                       metavar="N",
                       help="--connect: resume attempts after a "
                            "mid-stream disconnect (default 3)")
    audit.add_argument("--fleet-listen", dest="fleet_listen",
                       type=_fleet_endpoint, default=None,
                       metavar="[HOST:]PORT",
                       help="listen for `repro worker` daemons and fan "
                            "epoch audits out to them (bare port = all "
                            "interfaces; composes with --connect)")
    audit.add_argument("--fleet-min-workers", dest="fleet_min_workers",
                       type=int, default=None, metavar="N",
                       help="wait for N registered workers before "
                            "dispatching the first epoch")
    audit.add_argument("--fleet-task-timeout", dest="fleet_task_timeout",
                       type=float, default=None, metavar="SECONDS",
                       help="per-epoch straggler deadline on a worker; "
                            "past it the epoch is re-dispatched")
    audit.add_argument("--fleet-redundancy", dest="fleet_redundancy",
                       type=int, default=None, metavar="K",
                       help="dispatch each epoch to K workers and "
                            "cross-check their verdicts (default 1)")
    audit.set_defaults(func=cmd_audit)

    lint = sub.add_parser(
        "lint",
        help="statically analyze a built-in app's weblang scripts "
             "(effect inference, state-key footprints, audit-soundness "
             "lint; see docs/analysis.md)",
    )
    lint.add_argument("app",
                      choices=sorted(_LINT_APPS) + sorted(_LINT_ALIASES),
                      help="application to lint (workload names are "
                           "accepted as aliases)")
    lint.add_argument("--json", action="store_true",
                      help="emit the full machine-readable report "
                           "(effects, footprints, diagnostics) instead "
                           "of text diagnostics")
    lint.add_argument("--fail-on", dest="fail_on", choices=SEVERITIES,
                      default="error",
                      help="exit nonzero when any diagnostic of this "
                           "severity (or worse) is found (default: "
                           "error)")
    lint.set_defaults(func=cmd_lint)

    synth = sub.add_parser(
        "synth",
        help="stream a synthetic Zipf-skewed workload (millions of "
             "simulated users) into a segmented bundle, with optional "
             "self-audit profile and checkpoint/resume (see "
             "docs/scenarios.md)",
    )
    common(synth)
    synth.add_argument("--requests", type=int, default=10_000,
                       help="requests to synthesize this run "
                            "(default 10000; resume adds on top)")
    synth.add_argument("--users", type=int, default=1_000_000,
                       help="simulated user population sampled with a "
                            "Zipf-like skew (default 1e6)")
    synth.add_argument("--max-sessions", type=int, default=64,
                       dest="max_sessions", metavar="N",
                       help="bound on concurrently active sessions "
                            "(the generator's working set; default 64)")
    synth.add_argument("--concurrency", type=int, default=8,
                       help="server's max in-flight requests")
    synth.add_argument("--out", default="synth_bundle.jsonl",
                       metavar="BUNDLE.JSONL",
                       help="segmented JSONL bundle to write")
    synth.add_argument("--profile", default=None, metavar="PROFILE.JSON",
                       help="self-audit each epoch while generating and "
                            "write the per-group (n, alpha, ell) "
                            "profile here")
    synth.add_argument("--resume", default=None, metavar="CKPT.JSON",
                       help="resume from a checkpoint written by a "
                            "previous run's --checkpoint-out")
    synth.add_argument("--checkpoint-out", dest="checkpoint_out",
                       default=None, metavar="CKPT.JSON",
                       help="write this run's final checkpoint for a "
                            "later --resume")
    synth.add_argument("--json", action="store_true",
                       help="emit the generation summary as JSON")
    synth.set_defaults(func=cmd_synth)

    fuzz = sub.add_parser(
        "fuzz",
        help="tamper-fuzz a recorded bundle: randomized mutations "
             "(drop/flip/reorder/splice/truncate/wire-corrupt) that "
             "the stock audit must REJECT; accepted mutations are "
             "shrunk to a minimal reproducer (see docs/scenarios.md)",
    )
    fuzz.add_argument("bundle", help="recorded bundle to attack "
                                     "(JSONL formats)")
    fuzz.add_argument("--workload", choices=sorted(_WORKLOADS),
                      default="cart",
                      help="the app the bundle was recorded against "
                           "(default: cart)")
    fuzz.add_argument("--scale", type=float, default=0.05,
                      help="the scale the bundle was recorded at "
                           "(default 0.05, the committed fixture's)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed; every mutation derives from "
                           "(seed, index) and replays exactly")
    fuzz.add_argument("--mutations", type=int, default=100,
                      help="number of randomized mutations (default "
                           "100)")
    fuzz.add_argument("--operators", default=None, metavar="A,B,...",
                      help="restrict to these tamper operators "
                           "(comma-separated; default: all)")
    fuzz.add_argument("--splice-with", dest="splice_with", default=None,
                      metavar="BUNDLE.JSONL",
                      help="donor bundle for cross-bundle epoch "
                           "splices (default: swap epochs in place)")
    fuzz.add_argument("--no-shrink", dest="no_shrink",
                      action="store_true",
                      help="skip ddmin shrinking of accepted mutations")
    fuzz.add_argument("--reproducer-out", dest="reproducer_out",
                      default="fuzz_reproducer.json",
                      metavar="REPRO.JSON",
                      help="where to write the minimal reproducer if "
                           "any mutation is accepted")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the campaign report as JSON")
    fuzz.set_defaults(func=cmd_fuzz)

    query = sub.add_parser(
        "query",
        help="reconstruct a SQL result, KV key, or register from a "
             "recorded bundle at any epoch or request point "
             "(time-travel forensics; see docs/forensics.md)",
    )
    common(query)
    audit_knobs(query)
    query.add_argument("bundle", help="recorded audit bundle "
                                      "(any format)")
    query.add_argument("target",
                       help="a SELECT statement, `kv:<key>` (or a bare "
                            "KV key), or `reg:<name>`")
    query.add_argument("--as-of", dest="as_of", required=True,
                       metavar="EPOCH|REQUEST",
                       help="epoch index (state at the end of that "
                            "epoch) or request id (state as of its "
                            "observed response)")
    query.add_argument("--json", action="store_true",
                       help="emit the reconstruction as JSON")
    query.set_defaults(func=cmd_query)

    explain = sub.add_parser(
        "explain",
        help="scoped single-request re-audit: replay one request's "
             "control-flow chunk plus its read-lineage closure and "
             "print ACCEPT/REJECT with the regenerated body",
    )
    common(explain)
    audit_knobs(explain)
    explain.add_argument("bundle", help="recorded audit bundle "
                                        "(any format)")
    explain.add_argument("request_id", help="the request to re-audit")
    explain.add_argument("--json", action="store_true",
                         help="emit the scoped verdict as JSON")
    explain.set_defaults(func=cmd_explain)

    worker = sub.add_parser(
        "worker",
        help="join a fleet coordinator (audit --fleet-listen) and "
             "execute dispatched epoch audits",
    )
    worker.add_argument("--join", required=True, metavar="HOST:PORT",
                        help="the coordinator's fleet endpoint")
    worker.add_argument("--name", default=None,
                        help="worker name shown to the coordinator "
                             "(default: hostname-pid)")
    worker.add_argument("--heartbeat", type=float, default=2.0,
                        metavar="SECONDS",
                        help="heartbeat interval while an epoch runs "
                             "(default 2s)")
    worker.add_argument("--connect-timeout", type=float, default=30.0,
                        dest="connect_timeout", metavar="SECONDS",
                        help="bound on joining; refused connections are "
                             "retried until it expires (workers may "
                             "start before the coordinator binds)")
    worker.set_defaults(func=cmd_worker)

    args = parser.parse_args(argv)
    args._parser = parser
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
