"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — serve a built-in workload, audit it, print the verdict and
  the acceleration stats;
* ``record`` — serve a built-in workload and save the audit bundle
  (trace + reports + initial state) to a JSON file;
* ``audit`` — load a bundle and run the SSCO audit (optionally the
  simple-re-execution baseline for comparison).

The built-in workloads are the paper's three applications: ``wiki``,
``forum``, ``hotcrp``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import figure9_decomposition, render_table
from repro.bench.harness import BenchRun, run_audit_phase
from repro.core import simple_audit, ssco_audit
from repro.io import load_audit_bundle, save_audit_bundle
from repro.workloads import forum_workload, hotcrp_workload, wiki_workload

_WORKLOADS = {
    "wiki": wiki_workload,
    "forum": forum_workload,
    "hotcrp": hotcrp_workload,
}


def _build(args):
    factory = _WORKLOADS[args.workload]
    return factory(scale=args.scale, seed=args.seed)


def _serve(workload, args):
    from repro.server import Executor, RandomScheduler
    from repro.server.nondet import NondetSource

    executor = Executor(
        workload.app,
        scheduler=RandomScheduler(args.seed),
        max_concurrency=args.concurrency,
        nondet=NondetSource(seed=args.seed),
    )
    return executor.serve(workload.requests)


def cmd_demo(args) -> int:
    workload = _build(args)
    print(f"serving {len(workload.requests)} {workload.label} requests "
          f"(concurrency {args.concurrency}) ...")
    execution = _serve(workload, args)
    print("auditing ...")
    run = run_audit_phase(workload, execution)
    audit = run.audit
    if not audit.accepted:
        print(f"REJECTED: {audit.reason.value}: {audit.detail}")
        return 1
    stats = audit.stats
    alpha = 1 - stats["multi_steps"] / max(1, stats["steps"])
    print(f"ACCEPTED in {audit.phases['total'] * 1e3:.1f} ms "
          f"(simple re-execution: {run.baseline_audit.seconds * 1e3:.1f}"
          f" ms, speedup "
          f"{run.baseline_audit.seconds / audit.phases['total']:.2f}x)")
    print(f"groups={stats['groups']} alpha={alpha:.3f} "
          f"dedup={stats['dedup_hits']}/"
          f"{stats['dedup_hits'] + stats['dedup_misses']}")
    rows = [{"phase": k, "seconds": v}
            for k, v in figure9_decomposition(run).items()]
    print(render_table(rows, ["phase", "seconds"]))
    return 0


def cmd_record(args) -> int:
    workload = _build(args)
    print(f"serving {len(workload.requests)} {workload.label} requests ...")
    execution = _serve(workload, args)
    save_audit_bundle(args.out, execution.trace, execution.reports,
                      execution.initial_state)
    print(f"wrote {args.out} "
          f"({len(execution.trace)} events, "
          f"{execution.reports.op_count_total()} logged ops)")
    return 0


def cmd_audit(args) -> int:
    trace, reports, initial = load_audit_bundle(args.bundle)
    workload = _build(args)  # the program is the trusted input
    print(f"auditing {len(trace.request_ids())} requests against "
          f"{workload.label} ...")
    audit = ssco_audit(workload.app, trace, reports, initial,
                       dedup=not args.no_dedup)
    if audit.accepted:
        print(f"ACCEPTED in {audit.phases['total'] * 1e3:.1f} ms")
    else:
        print(f"REJECTED: {audit.reason.value}"
              + (f": {audit.detail}" if audit.detail else ""))
    if args.baseline:
        base = simple_audit(workload.app, trace, reports, initial)
        verdict = "ACCEPTED" if base.accepted else "REJECTED"
        print(f"simple re-execution baseline: {verdict} in "
              f"{base.seconds * 1e3:.1f} ms")
    return 0 if audit.accepted else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SSCO/OROCHI reproduction: serve and audit web "
                    "application workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--workload", choices=sorted(_WORKLOADS),
                       default="wiki")
        p.add_argument("--scale", type=float, default=0.02,
                       help="workload scale (1.0 = the paper's full size)")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--concurrency", type=int, default=8)

    demo = sub.add_parser("demo", help="serve + audit, print stats")
    common(demo)
    demo.set_defaults(func=cmd_demo)

    record = sub.add_parser("record", help="serve and save a bundle")
    common(record)
    record.add_argument("--out", default="audit_bundle.json")
    record.set_defaults(func=cmd_record)

    audit = sub.add_parser("audit", help="audit a saved bundle")
    common(audit)
    audit.add_argument("bundle")
    audit.add_argument("--baseline", action="store_true",
                       help="also run the simple re-execution baseline")
    audit.add_argument("--no-dedup", action="store_true")
    audit.set_defaults(func=cmd_audit)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
