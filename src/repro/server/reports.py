"""The untrusted reports (Sections 3, 4.6).

``Reports`` carries the four report types the executor maintains for the
audit.  Everything here is *data the verifier must not trust*: the audit
algorithms validate it; the tamper operators in
:mod:`repro.server.faulty` corrupt it for the soundness tests.

Sizes: :meth:`Reports.size_bytes` approximates the compressed-report
accounting of Figure 8 (we report raw structure sizes; the paper's
compression constant does not change the ratios' shape).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.objects.base import OpRecord


@dataclass(frozen=True)
class NondetRecord:
    """One recorded non-deterministic built-in invocation (§4.6)."""

    func: str
    args: tuple
    value: object

    def size_bytes(self) -> int:
        return len(self.func) + 2 + len(str(self.args)) + len(str(self.value))


@dataclass
class Reports:
    """All four report types, as delivered by the executor."""

    #: C: control-flow tag -> requestIDs (§3.1).
    groups: dict[str, list[str]] = field(default_factory=dict)
    #: OL_i: object name -> operation log (§3.3).
    op_logs: dict[str, list[OpRecord]] = field(default_factory=dict)
    #: M: requestID -> total op count (§3.3).
    op_counts: dict[str, int] = field(default_factory=dict)
    #: rid -> recorded non-deterministic values, in call order (§4.6).
    nondet: dict[str, list[NondetRecord]] = field(default_factory=dict)

    def deep_copy(self) -> Reports:
        """Independent copy (tamper tests mutate copies)."""
        return Reports(
            {tag: list(rids) for tag, rids in self.groups.items()},
            {name: list(log) for name, log in self.op_logs.items()},
            dict(self.op_counts),
            {rid: list(records) for rid, records in self.nondet.items()},
        )

    # -- accounting -------------------------------------------------------

    def op_count_total(self) -> int:
        return sum(len(log) for log in self.op_logs.values())

    def size_bytes(self) -> dict[str, int]:
        """Per-component approximate sizes in bytes."""
        groups_size = sum(
            16 + sum(len(rid) for rid in rids)
            for rids in self.groups.values()
        )
        logs_size = sum(
            sum(record.size_bytes() for record in log)
            for log in self.op_logs.values()
        )
        counts_size = sum(len(rid) + 4 for rid in self.op_counts)
        nondet_size = sum(
            sum(record.size_bytes() for record in records)
            for records in self.nondet.values()
        )
        return {
            "groups": groups_size,
            "op_logs": logs_size,
            "op_counts": counts_size,
            "nondet": nondet_size,
        }

    def total_size_bytes(self) -> int:
        return sum(self.size_bytes().values())

    def baseline_size_bytes(self) -> int:
        """Report bytes a non-accelerated record-replay baseline would need
        (§5.1): just the non-determinism records."""
        return self.size_bytes()["nondet"]
