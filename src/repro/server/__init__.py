"""The online server: executor, recording library, reports (Sections 2, 4).

:class:`Executor` plays the paper's *executor* role: it serves requests
concurrently (simulated cooperative concurrency, interleaving requests at
shared-object operation boundaries, which is where the model's threads can
be distinguished; §3.2), and — in its well-behaved form — runs the recording
library that produces the four report types:

1. control-flow groupings ``C`` (tag -> requestIDs);
2. per-object operation logs ``OL_i``;
3. per-request operation counts ``M``;
4. non-determinism records (§4.6).

:mod:`repro.server.faulty` provides tamper operators that turn an honest
execution's trace/reports into the adversarial inputs used by the soundness
tests.
"""

from repro.server.app import Application, InitialState
from repro.server.reports import NondetRecord, Reports
from repro.server.scheduler import (
    FifoScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
)
from repro.server.executor import ExecutionResult, Executor
from repro.server.nondet import NondetSource

__all__ = [
    "Application",
    "ExecutionResult",
    "Executor",
    "FifoScheduler",
    "InitialState",
    "NondetRecord",
    "NondetSource",
    "RandomScheduler",
    "Reports",
    "RoundRobinScheduler",
    "ScriptedScheduler",
]
