"""Schedulers: the executor's discretion over interleaving (§3.2, §4.6).

A scheduler picks which ready in-flight request advances next (one
advance = perform one shared-object operation and run to the next one).
The choice is the executor's legitimate discretion: any schedule a
scheduler produces corresponds to a valid concurrent execution, and the
audit must accept all of them (Completeness) — the property-based tests
drive random schedulers through the full pipeline for exactly this reason.
"""

from __future__ import annotations

import random
from collections.abc import Sequence


class Scheduler:
    """Interface: choose one of the ready request ids."""

    def pick(self, ready: Sequence[str]) -> str:
        raise NotImplementedError


class FifoScheduler(Scheduler):
    """Always advance the oldest admitted request: nearly sequential
    behaviour (requests still overlap while blocked on the DB object)."""

    def pick(self, ready: Sequence[str]) -> str:
        return ready[0]


class RoundRobinScheduler(Scheduler):
    """Rotate through ready requests, maximizing interleaving."""

    def __init__(self) -> None:
        self._last: str | None = None

    def pick(self, ready: Sequence[str]) -> str:
        if self._last in ready:
            index = (list(ready).index(self._last) + 1) % len(ready)
        else:
            index = 0
        choice = ready[index]
        self._last = choice
        return choice


class RandomScheduler(Scheduler):
    """Seeded-random interleaving; the workhorse of the property tests."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def pick(self, ready: Sequence[str]) -> str:
        return ready[self._rng.randrange(len(ready))]

    def getstate(self) -> list:
        """JSON-able PRNG snapshot (scenario-factory checkpoints)."""
        version, internal, gauss = self._rng.getstate()
        return [version, list(internal), gauss]

    def setstate(self, state: list) -> None:
        version, internal, gauss = state
        self._rng.setstate((version, tuple(internal), gauss))


class ScriptedScheduler(Scheduler):
    """Follow an explicit list of rids (the Figure 4 scenarios).

    Each entry consumes one advance of that rid; when the script is
    exhausted or names no ready rid, falls back to FIFO.
    """

    def __init__(self, script: list[str]):
        self._script = list(script)
        self._pos = 0

    def pick(self, ready: Sequence[str]) -> str:
        while self._pos < len(self._script):
            want = self._script[self._pos]
            self._pos += 1
            if want in ready:
                return want
            # Not ready (blocked, done, or not yet admitted): skip the entry.
        return ready[0]
