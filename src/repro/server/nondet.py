"""Simulated sources of non-determinism (§4.6).

The server's environment supplies time, randomness, unique ids, and the
process id.  In OROCHI these come from PHP built-ins; here they come from a
deterministic simulation seeded per server run, which makes whole-system
tests reproducible while still exercising every recording and replay path.

The source enforces exactly the plausibility properties the verifier later
checks: time is monotonically non-decreasing and the pid is constant.
"""

from __future__ import annotations

import random

from repro.common.errors import WeblangError
from repro.lang.values import to_int


class NondetSource:
    """Deterministic stand-in for the server's non-deterministic calls."""

    def __init__(
        self,
        start_time: int = 1_500_000_000,
        seed: int = 20171028,  # SOSP'17 opening day
        pid: int = 4242,
    ):
        self._clock = start_time
        self._rng = random.Random(seed)
        self._pid = pid
        self._uniq = 0

    def getstate(self) -> dict:
        """JSON-able snapshot, so a resumed recording run (the scenario
        factory's checkpoint) continues the clock, the PRNG stream, and
        the ``uniqid`` counter instead of replaying them — duplicate
        uniqids across a resume would be indistinguishable from a
        misbehaving server."""
        version, internal, gauss = self._rng.getstate()
        return {
            "clock": self._clock,
            "pid": self._pid,
            "uniq": self._uniq,
            "rng": [version, list(internal), gauss],
        }

    def setstate(self, state: dict) -> None:
        self._clock = int(state["clock"])
        self._pid = int(state["pid"])
        self._uniq = int(state["uniq"])
        version, internal, gauss = state["rng"]
        self._rng.setstate((version, tuple(internal), gauss))

    def call(self, func: str, args: tuple) -> object:
        if func == "time":
            self._clock += 1
            return self._clock
        if func == "microtime":
            self._clock += 1
            return float(self._clock) + 0.5
        if func in ("rand", "mt_rand"):
            low = to_int(args[0]) if len(args) >= 1 else 0
            high = to_int(args[1]) if len(args) >= 2 else 2**31 - 1
            if low > high:
                raise WeblangError("rand() with min > max")
            return self._rng.randint(low, high)
        if func == "uniqid":
            self._uniq += 1
            return f"uid{self._uniq:08x}"
        if func == "getpid":
            return self._pid
        raise WeblangError(f"unknown non-deterministic builtin {func}")
