"""Adversarial executors: tamper operators for soundness testing (§2, §3.4).

Each operator takes an honest execution's trace/reports and produces a
corrupted variant, modeling a misbehaving executor that is trying to pass
the audit.  The soundness tests assert that the verifier rejects every one
of them (or, where the corruption is externally indistinguishable from a
valid execution, that it accepts — the paper's Soundness definition demands
nothing stronger).

All operators copy their inputs; the honest artifacts are never mutated.
"""

from __future__ import annotations


from repro.objects.base import OpRecord, OpType
from repro.server.reports import NondetRecord, Reports
from repro.trace.events import Event, EventKind, Response
from repro.trace.trace import Trace


def copy_trace(trace: Trace) -> Trace:
    return Trace(list(trace.events))


def tamper_response(trace: Trace, rid: str, new_body: str) -> Trace:
    """Deliver a different response body for ``rid`` (the basic attack:
    spurious output with unchanged reports)."""
    events = []
    for event in trace:
        if event.is_response and event.rid == rid:
            old: Response = event.payload
            events.append(
                Event(
                    EventKind.RESPONSE,
                    rid,
                    Response(rid, new_body, old.status, old.abort_info),
                    event.time,
                )
            )
        else:
            events.append(event)
    return Trace(events)


def drop_log_entry(reports: Reports, obj: str, position: int) -> Reports:
    """Remove one operation from an object log (hides a write/read)."""
    tampered = reports.deep_copy()
    log = tampered.op_logs[obj]
    del log[position]
    return tampered


def insert_log_entry(
    reports: Reports, obj: str, position: int, record: OpRecord
) -> Reports:
    """Insert a fabricated operation into an object log."""
    tampered = reports.deep_copy()
    tampered.op_logs.setdefault(obj, []).insert(position, record)
    return tampered


def swap_log_entries(
    reports: Reports, obj: str, first: int, second: int
) -> Reports:
    """Reorder two operations within an object log."""
    tampered = reports.deep_copy()
    log = tampered.op_logs[obj]
    log[first], log[second] = log[second], log[first]
    return tampered


def rewrite_log_entry(
    reports: Reports,
    obj: str,
    position: int,
    opcontents: tuple | None = None,
    optype: OpType | None = None,
    rid: str | None = None,
    opnum: int | None = None,
) -> Reports:
    """Alter fields of one log entry (e.g. the value of a logged write)."""
    tampered = reports.deep_copy()
    log = tampered.op_logs[obj]
    old = log[position]
    log[position] = OpRecord(
        rid if rid is not None else old.rid,
        opnum if opnum is not None else old.opnum,
        optype if optype is not None else old.optype,
        opcontents if opcontents is not None else old.opcontents,
    )
    return tampered


def tamper_op_count(reports: Reports, rid: str, delta: int) -> Reports:
    """Misreport M(rid)."""
    tampered = reports.deep_copy()
    tampered.op_counts[rid] = tampered.op_counts.get(rid, 0) + delta
    return tampered


def move_to_group(reports: Reports, rid: str, target_tag: str) -> Reports:
    """Claim ``rid`` has a different control flow."""
    tampered = reports.deep_copy()
    for tag in list(tampered.groups):
        if rid in tampered.groups[tag]:
            tampered.groups[tag] = [
                r for r in tampered.groups[tag] if r != rid
            ]
            if not tampered.groups[tag]:
                del tampered.groups[tag]
    tampered.groups.setdefault(target_tag, []).append(rid)
    return tampered


def drop_from_groups(reports: Reports, rid: str) -> Reports:
    """Omit ``rid`` from the groupings entirely (incomplete map, §3.1)."""
    tampered = reports.deep_copy()
    for tag in list(tampered.groups):
        if rid in tampered.groups[tag]:
            tampered.groups[tag] = [
                r for r in tampered.groups[tag] if r != rid
            ]
            if not tampered.groups[tag]:
                del tampered.groups[tag]
    return tampered


def duplicate_in_group(reports: Reports, rid: str) -> Reports:
    """List ``rid`` twice in its group (the verifier must tolerate or
    filter duplicates; §3.1: re-execution is idempotent)."""
    tampered = reports.deep_copy()
    for tag in tampered.groups:
        if rid in tampered.groups[tag]:
            tampered.groups[tag].append(rid)
            break
    return tampered


def tamper_nondet_value(
    reports: Reports, rid: str, index: int, value: object
) -> Reports:
    """Rewrite one recorded non-deterministic value."""
    tampered = reports.deep_copy()
    records = tampered.nondet[rid]
    old = records[index]
    records[index] = NondetRecord(old.func, old.args, value)
    return tampered


def drop_nondet_record(reports: Reports, rid: str, index: int) -> Reports:
    tampered = reports.deep_copy()
    del tampered.nondet[rid][index]
    return tampered


def tamper_transaction_flag(
    reports: Reports, obj: str, position: int, succeeded: bool
) -> Reports:
    """Flip a DB transaction's commit/abort flag (§4.6 discretion abuse)."""
    tampered = reports.deep_copy()
    log = tampered.op_logs[obj]
    old = log[position]
    queries, _ = old.opcontents
    log[position] = OpRecord(
        old.rid, old.opnum, old.optype, (queries, succeeded)
    )
    return tampered
