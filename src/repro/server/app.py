"""Application bundles and initial state.

An :class:`Application` is what the principal deploys: a set of weblang
scripts (the program), the database schema and seed data, and the names of
the shared objects.  Both the executor and the verifier hold the same
Application — "the verifier and the server need not run the same program —
only the same logic" (§7); here they run the same scripts through different
runtimes (plain vs accelerated).

:class:`InitialState` captures the shared objects' contents at the start of
the audited epoch.  The verifier needs it to replay from the epoch start
(§4.1, "Persistent objects"); between contiguous audits it is produced by
the previous audit's migration step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import Program
from repro.lang.interp import freeze_value
from repro.lang.parser import parse_program
from repro.sql.engine import Engine


@dataclass
class Application:
    """The deployed program plus its object configuration."""

    name: str
    scripts: dict[str, Program]
    db_setup: str = ""
    kv_initial: dict[str, object] = field(default_factory=dict)
    db_name: str = "db:main"
    kv_name: str = "kv:apc"
    session_cookie: str = "sess"

    @staticmethod
    def from_sources(
        name: str,
        sources: dict[str, str],
        db_setup: str = "",
        kv_initial: dict[str, object] | None = None,
    ) -> Application:
        """Compile script sources into an Application."""
        scripts = {
            script_name: parse_program(text, script_name)
            for script_name, text in sources.items()
        }
        frozen_kv = {
            key: freeze_value(value)
            for key, value in (kv_initial or {}).items()
        }
        return Application(name, scripts, db_setup, frozen_kv)

    def script(self, name: str) -> Program:
        program = self.scripts.get(name)
        if program is None:
            raise KeyError(f"application {self.name!r} has no script {name!r}")
        return program


@dataclass
class InitialState:
    """Shared-object contents at the start of the audited epoch.

    ``registers`` maps register name -> frozen value.  A register absent
    from the map is a fresh register whose initial value is ``None`` (a new
    session).
    """

    db_engine: Engine
    kv: dict[str, object] = field(default_factory=dict)
    registers: dict[str, object] = field(default_factory=dict)

    def copy(self) -> InitialState:
        return InitialState(
            self.db_engine.deep_copy(), dict(self.kv), dict(self.registers)
        )
