"""The well-behaved concurrent executor with the recording library.

Concurrency model (§3.2): each request runs in its own logical thread;
threads interleave arbitrarily; shared-object operations are blocking and
atomic.  The executor realizes this with cooperative scheduling at
operation boundaries: each admitted request is a suspended interpreter
generator, and one *step* = (perform the request's pending object
operation, resume it until its next operation or completion).  Because
threads can only influence each other through object operations, every
externally observable behaviour of the preemptive model corresponds to some
cooperative schedule, and vice versa.

Recording (the honest executor's side of the audit protocol):

* **opnum assignment**: a per-request counter; register and KV operations
  and auto-commit DB statements each take one opnum; a whole DB transaction
  takes exactly one (§4.4, §A.7).
* **operation logs**: register/KV ops are appended to per-object logs in
  admission order (the object is touched at that instant, so log order is
  the true serialization order); DB ops are logged by the
  :class:`~repro.sql.database.Database` into per-connection sub-logs merged
  by the stitching step (§4.7).
* **control-flow tags**: the plain interpreter's branch digest (§4.3).
* **non-determinism**: values from :class:`NondetSource` recorded per
  request in call order (§4.6).

A request whose script raises an error receives the fixed 500 response
body; an open transaction is rolled back first (and the rollback is logged,
so the audit can replay the same fate).  A request can also be *dropped*
mid-flight (``fail_rids``) to model client resets: the collector then
records a response with ``abort_info`` and no body, keeping the trace
balanced (§3).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.common.errors import WeblangError
from repro.lang.interp import (
    ExternalIntent,
    Interpreter,
    NondetIntent,
    StateOpIntent,
)
from repro.objects.base import OpRecord, OpType
from repro.objects.kvstore import KVStore
from repro.objects.register import AtomicRegister
from repro.server.app import Application, InitialState
from repro.server.nondet import NondetSource
from repro.server.reports import NondetRecord, Reports
from repro.server.scheduler import FifoScheduler, Scheduler
from repro.sql.database import Database
from repro.trace.collector import Collector
from repro.trace.events import ExternalRequest, Request, Response
from repro.trace.trace import Trace

ERROR_BODY = "500 Internal Server Error"


@dataclass
class ExecutionResult:
    """Everything the online phase hands to the audit (plus stats)."""

    trace: Trace
    reports: Reports
    initial_state: InitialState
    server_seconds: float = 0.0
    recording_seconds: float = 0.0
    steps: int = 0
    final_state: InitialState | None = None
    #: Trace event indexes of the quiescent epoch cuts the executor
    #: drained at (``epoch_size > 0``); audit-time shard boundaries.
    epoch_marks: list[int] = field(default_factory=list)


class _Task:
    __slots__ = ("rid", "request", "gen", "pending", "opnum", "started",
                 "done")

    def __init__(self, rid: str, request: Request, gen) -> None:
        self.rid = rid
        self.request = request
        self.gen = gen
        self.pending: object = None
        self.opnum = 0
        self.started = False
        self.done = False


class Executor:
    """Serves a request list concurrently and records reports."""

    def __init__(
        self,
        app: Application,
        scheduler: Scheduler | None = None,
        max_concurrency: int = 8,
        nondet: NondetSource | None = None,
        record: bool = True,
        fail_rids: set[str] | None = None,
        db_abort_hook=None,
        initial_state: InitialState | None = None,
        epoch_size: int = 0,
    ):
        self.app = app
        self.scheduler = scheduler or FifoScheduler()
        self.max_concurrency = max(1, max_concurrency)
        self.nondet = nondet or NondetSource()
        self.record = record
        self.fail_rids = fail_rids or set()
        self.db_abort_hook = db_abort_hook
        #: Start from this state instead of the app's setup scripts —
        #: used for continuous operation across audit epochs (§4.1).
        self.initial_state = initial_state
        #: Drain in-flight requests every N completions, creating a
        #: quiescent point in the trace (an *epoch mark*) the audit can
        #: shard at (§4.7).  0 disables draining.
        self.epoch_size = max(0, epoch_size)

    # -- main loop ----------------------------------------------------------

    def serve(self, requests: Sequence[Request]) -> ExecutionResult:
        app = self.app
        db = Database(app.db_name)
        kv = KVStore(app.kv_name)
        registers: dict[str, AtomicRegister] = {}
        if self.initial_state is not None:
            db.engine = self.initial_state.db_engine.deep_copy()
            kv.data.update(self.initial_state.kv)
            for name, value in self.initial_state.registers.items():
                registers[name] = AtomicRegister(name, value)
        else:
            if app.db_setup:
                db.setup(app.db_setup)
            kv.data.update(app.kv_initial)
        db.abort_hook = self.db_abort_hook

        initial_state = InitialState(
            db.initial_snapshot(),
            dict(kv.data),
            {name: reg.value for name, reg in registers.items()},
        )

        collector = Collector()
        reports = Reports()
        interp = Interpreter(
            db_name=app.db_name,
            kv_name=app.kv_name,
            session_cookie=app.session_cookie,
            record_flow=self.record,
        )

        queue: list[Request] = list(requests)
        queue_pos = 0
        inflight: dict[str, _Task] = {}
        order: list[str] = []  # admission order, for FIFO fairness
        steps = 0
        started_at = _time.perf_counter()
        recording_seconds = 0.0
        epoch_marks: list[int] = []
        epoch_index = 0
        completed_in_epoch = 0
        draining = False

        def admit() -> None:
            nonlocal queue_pos
            if draining:
                return
            while (
                queue_pos < len(queue)
                and len(inflight) < self.max_concurrency
            ):
                request = queue[queue_pos]
                queue_pos += 1
                program = app.script(request.script)
                task = _Task(
                    request.rid, request, interp.run(program, request)
                )
                inflight[request.rid] = task
                order.append(request.rid)
                collector.observe_request(request)

        def ready_rids() -> list[str]:
            ready = []
            for rid in order:
                task = inflight.get(rid)
                if task is None:
                    continue
                if not task.started:
                    ready.append(rid)
                    continue
                intent = task.pending
                if (
                    isinstance(intent, StateOpIntent)
                    and intent.kind.startswith("db_")
                    and db.would_block(rid)
                ):
                    continue  # parked until the DB object is released
                ready.append(rid)
            return ready

        def finish(task: _Task, body: str | None,
                   abort_info: str | None = None) -> None:
            nonlocal recording_seconds, completed_in_epoch
            completed_in_epoch += 1
            rid = task.rid
            task.done = True
            del inflight[rid]
            order.remove(rid)
            if abort_info is not None:
                collector.observe_response(
                    Response(rid, None, status=0, abort_info=abort_info)
                )
            else:
                collector.observe_response(Response(rid, body))
            if self.record:
                t0 = _time.perf_counter()
                reports.op_counts[rid] = task.opnum
                recording_seconds += _time.perf_counter() - t0

        def record_flow(rid: str, tag: str | None) -> None:
            nonlocal recording_seconds
            if not self.record or tag is None:
                return
            t0 = _time.perf_counter()
            if self.epoch_size:
                # Per-epoch grouping: a control-flow group never spans
                # an epoch cut, so sharded and unsharded audits see the
                # same group boundaries.  Grouping is a hint; narrowing
                # it is always sound.
                tag = f"e{epoch_index}:{tag}"
            reports.groups.setdefault(tag, []).append(rid)
            recording_seconds += _time.perf_counter() - t0

        def log_op(obj: str, record: OpRecord) -> None:
            nonlocal recording_seconds
            if not self.record:
                return
            t0 = _time.perf_counter()
            reports.op_logs.setdefault(obj, []).append(record)
            recording_seconds += _time.perf_counter() - t0

        def perform(task: _Task, intent: StateOpIntent) -> object:
            rid = task.rid
            kind = intent.kind
            if kind == "db_statement":
                sql = intent.args[0]
                if db.in_transaction(rid):
                    return db.execute(rid, task.opnum, sql)
                task.opnum += 1
                return db.execute(rid, task.opnum, sql)
            if kind == "db_begin":
                task.opnum += 1
                db.begin(rid, task.opnum)
                return None
            if kind == "db_commit":
                return db.commit(rid)
            if kind == "db_rollback":
                db.rollback(rid)
                return None
            if kind == "kv_get":
                task.opnum += 1
                key = intent.args[0]
                value = kv.get(key)
                log_op(
                    intent.obj,
                    OpRecord(rid, task.opnum, OpType.KV_GET, (key,)),
                )
                return value
            if kind == "kv_set":
                task.opnum += 1
                key, value = intent.args
                kv.set(key, value)
                log_op(
                    intent.obj,
                    OpRecord(rid, task.opnum, OpType.KV_SET, (key, value)),
                )
                return None
            if kind == "register_read":
                task.opnum += 1
                register = registers.get(intent.obj)
                if register is None:
                    register = AtomicRegister(intent.obj)
                    registers[intent.obj] = register
                value = register.read()
                log_op(
                    intent.obj,
                    OpRecord(rid, task.opnum, OpType.REGISTER_READ, ()),
                )
                return value
            if kind == "register_write":
                task.opnum += 1
                register = registers.get(intent.obj)
                if register is None:
                    register = AtomicRegister(intent.obj)
                    registers[intent.obj] = register
                value = intent.args[0]
                register.write(value)
                log_op(
                    intent.obj,
                    OpRecord(
                        rid, task.opnum, OpType.REGISTER_WRITE, (value,)
                    ),
                )
                return None
            raise WeblangError(f"unknown state op kind {kind}")

        def handle_nondet(task: _Task, intent: NondetIntent) -> object:
            nonlocal recording_seconds
            value = self.nondet.call(intent.func, intent.args)
            if self.record:
                t0 = _time.perf_counter()
                reports.nondet.setdefault(task.rid, []).append(
                    NondetRecord(intent.func, intent.args, value)
                )
                recording_seconds += _time.perf_counter() - t0
            return value

        def step(task: _Task) -> None:
            nonlocal steps
            steps += 1
            try:
                if not task.started:
                    task.started = True
                    task.pending = next(task.gen)
                else:
                    intent = task.pending
                    result = perform(task, intent)
                    task.pending = task.gen.send(result)
                # Non-deterministic calls and outbound externals are not
                # scheduling points: resolve them immediately (they touch
                # no shared state).
                while isinstance(task.pending, (NondetIntent,
                                                ExternalIntent)):
                    if isinstance(task.pending, ExternalIntent):
                        collector.observe_external(ExternalRequest(
                            task.rid, task.pending.service,
                            task.pending.content,
                        ))
                        task.pending = task.gen.send(True)
                    else:
                        value = handle_nondet(task, task.pending)
                        task.pending = task.gen.send(value)
            except StopIteration as stop:
                output = stop.value
                record_flow(task.rid, output.flow_tag)
                if task.rid in self.fail_rids:
                    finish(task, None, abort_info="client reset")
                else:
                    finish(task, output.body)
            except WeblangError:
                # Application error: roll back any open transaction and
                # deliver the fixed error page (deterministically
                # reproducible at audit time).
                if db.in_transaction(task.rid):
                    db.rollback(task.rid)
                record_flow(task.rid, f"error:{task.request.script}")
                finish(task, ERROR_BODY)

        admit()
        while inflight or queue_pos < len(queue):
            if (
                self.epoch_size
                and completed_in_epoch >= self.epoch_size
                and queue_pos < len(queue)
            ):
                draining = True
            if draining and not inflight:
                # Quiescent: everything admitted has responded and the
                # next epoch's requests arrive strictly after this
                # point.  Record the cut and open the next epoch.
                epoch_marks.append(len(collector.trace))
                epoch_index += 1
                completed_in_epoch = 0
                draining = False
            admit()
            ready = ready_rids()
            if not ready:  # pragma: no cover - single-DB model cannot jam
                raise RuntimeError("executor deadlock: no ready requests")
            rid = self.scheduler.pick(ready)
            step(inflight[rid])

        server_seconds = _time.perf_counter() - started_at

        if self.record:
            t0 = _time.perf_counter()
            db_log = db.stitch_log()
            if db_log:
                reports.op_logs[app.db_name] = db_log
            recording_seconds += _time.perf_counter() - t0

        final_state = InitialState(
            db.engine.deep_copy(),
            dict(kv.data),
            {name: reg.value for name, reg in registers.items()},
        )
        return ExecutionResult(
            trace=collector.trace,
            reports=reports,
            initial_state=initial_state,
            server_seconds=server_seconds,
            recording_seconds=recording_seconds,
            steps=steps,
            final_state=final_state,
            epoch_marks=epoch_marks,
        )
