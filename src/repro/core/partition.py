"""Epoch/shard partitioning of audit inputs (§4.7, §5.2).

The paper's deployment audits *epochs* independently: acc-PHP "audits
epochs independently" and keeps only migrated state between them.  This
module finds the places where one recorded epoch can be cut into several
independently auditable **shards** and performs the cut.

A cut position is sound only at a *quiescent point* of the trace: an
event index where every request that has arrived has also departed
(responded).  At such a point the time-precedence relation ``<Tr``
totally orders the two sides — every request before the cut precedes
every request after it — so

* each side's trace is balanced on its own;
* each object log splits into a contiguous prefix/suffix (an honest
  executor performs a request's operations strictly inside its
  arrival/departure window);
* the precedence graph of the whole trace is the union of the per-shard
  graphs plus forward-only cross edges, which cannot create new cycles.

State still flows across the cut, so shards are chained: shard *k*'s
initial state is shard *k-1*'s post-audit migrated state (§4.5).  The
chain makes acceptance inductive — shard *k*'s initial state is only
trusted because shard *k-1*'s logs were fully validated — which is the
same argument the paper uses for contiguous audit epochs.

Partitioning is **best-effort and never rejects**: when the untrusted
reports do not split cleanly (a log interleaves requests across a cut, a
report names an unknown request, ...) the partitioner raises
:class:`PartitionError` and the caller falls back to a single shard,
i.e. the ordinary unsharded audit.  Control-flow groups that span a cut
are split; grouping is an untrusted hint, so splitting is always sound
(it only reduces SIMD batching).

The executor emits quiescent points on purpose when configured with an
``epoch_size`` (it drains in-flight requests every N completions and
records the cut in ``ExecutionResult.epoch_marks``); traces served
without draining typically have no interior quiescent points and audit
as one shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.server.reports import Reports
from repro.trace.trace import Trace


class PartitionError(ValueError):
    """The inputs cannot be sharded at the requested cuts.

    Never a verdict: callers fall back to auditing a single shard.
    """


@dataclass
class Shard:
    """One independently auditable slice of a recorded epoch."""

    index: int
    trace: Trace
    reports: Reports
    rids: set[str] = field(default_factory=set)

    @property
    def request_count(self) -> int:
        return len(self.rids)


def quiescent_points(trace: Trace) -> list[int]:
    """Interior event indexes where no request is in flight.

    A returned index ``i`` means: after consuming events ``[0, i)`` every
    arrived request has departed.  Endpoints (0 and ``len(trace)``) are
    excluded — they are always quiescent and never useful cuts.
    """
    points: list[int] = []
    in_flight: set[str] = set()
    for position, event in enumerate(trace):
        if event.is_request:
            in_flight.add(event.rid)
        elif event.is_response:
            in_flight.discard(event.rid)
        if not in_flight and 0 < position + 1 < len(trace):
            points.append(position + 1)
    return points


def find_epoch_cuts(trace: Trace, epoch_size: int) -> list[int]:
    """Quiescent cuts spaced at least ``epoch_size`` requests apart.

    Returns event indexes suitable for :func:`partition_audit_inputs`;
    empty when the trace never quiesces (e.g. it was served without
    epoch draining) or ``epoch_size <= 0``.
    """
    if epoch_size <= 0:
        return []
    candidates = set(quiescent_points(trace))
    cuts: list[int] = []
    completed_since_cut = 0
    for position, event in enumerate(trace):
        if event.is_response:
            completed_since_cut += 1
        if position + 1 in candidates and completed_since_cut >= epoch_size:
            cuts.append(position + 1)
            completed_since_cut = 0
    return cuts


def validate_cuts(trace: Trace, cuts: Sequence[int]) -> list[int]:
    """Keep only cuts that are genuine quiescent points, sorted, deduped."""
    quiescent = set(quiescent_points(trace))
    return sorted({cut for cut in cuts if cut in quiescent})


def partition_trace(trace: Trace, cuts: Sequence[int]) -> list[Trace]:
    """Split the trace at the given (validated) event indexes."""
    segments: list[Trace] = []
    previous = 0
    for cut in list(cuts) + [len(trace)]:
        if cut <= previous:
            continue
        segments.append(Trace(trace.events[previous:cut]))
        previous = cut
    return segments


def partition_reports(
    reports: Reports, shard_of: dict[str, int], shard_count: int
) -> list[Reports]:
    """Split reports along the request→shard assignment.

    * op logs must split contiguously (entries' shard indexes
      non-decreasing), otherwise :class:`PartitionError`;
    * groups spanning shards are split per shard under the same tag;
    * any report entry naming a request outside ``shard_of`` raises
      :class:`PartitionError` (the unsharded audit will produce the
      reject verdict, if any).
    """
    shards = [Reports() for _ in range(shard_count)]

    for obj_name, log in reports.op_logs.items():
        highest = 0
        for record in log:
            shard = shard_of.get(record.rid)
            if shard is None:
                raise PartitionError(
                    f"log {obj_name} names unknown request {record.rid!r}"
                )
            if shard < highest:
                raise PartitionError(
                    f"log {obj_name} interleaves requests across the cut"
                )
            highest = shard
            shards[shard].op_logs.setdefault(obj_name, []).append(record)

    for tag, rids in reports.groups.items():
        for rid in rids:
            shard = shard_of.get(rid)
            if shard is None:
                raise PartitionError(
                    f"group {tag!r} names unknown request {rid!r}"
                )
            shards[shard].groups.setdefault(tag, []).append(rid)

    for rid, count in reports.op_counts.items():
        shard = shard_of.get(rid)
        if shard is None:
            raise PartitionError(f"op count for unknown request {rid!r}")
        shards[shard].op_counts[rid] = count

    for rid, records in reports.nondet.items():
        shard = shard_of.get(rid)
        if shard is None:
            raise PartitionError(f"nondet report for unknown request {rid!r}")
        shards[shard].nondet[rid] = records

    return shards


def partition_audit_inputs(
    trace: Trace,
    reports: Reports,
    epoch_size: int = 0,
    cuts: Sequence[int] | None = None,
) -> list[Shard]:
    """Split (trace, reports) into independently auditable shards.

    ``cuts`` (event indexes, e.g. the executor's epoch marks) wins over
    ``epoch_size``; invalid cut positions are dropped.  Returns a single
    shard covering everything when no usable cut exists or the reports
    refuse to split (:class:`PartitionError` is caught here — the caller
    always receives a usable shard list).
    """
    if cuts is not None:
        chosen = validate_cuts(trace, cuts)
    else:
        chosen = find_epoch_cuts(trace, epoch_size)
    if not chosen:
        return [_whole_shard(trace, reports)]

    segments = partition_trace(trace, chosen)
    shard_of: dict[str, int] = {}
    for index, segment in enumerate(segments):
        for rid in segment.request_ids():
            shard_of[rid] = index
    try:
        report_parts = partition_reports(reports, shard_of, len(segments))
    except PartitionError:
        return [_whole_shard(trace, reports)]
    return [
        Shard(
            index,
            segment,
            report_parts[index],
            set(segment.request_ids()),
        )
        for index, segment in enumerate(segments)
    ]


def _whole_shard(trace: Trace, reports: Reports) -> Shard:
    return Shard(0, trace, reports, set(trace.request_ids()))


def make_shard_summary(
    index: int, requests: int, events: int, result
) -> dict[str, object]:
    """One ``stats["shards"]`` entry for an audited shard/epoch.

    Every driver that reports per-shard outcomes — the serial chain,
    the concurrent epoch driver, and the incremental session — builds
    its entries here, so the summaries stay bit-for-bit comparable
    across them.  ``result`` is any object with ``accepted`` /
    ``phases`` / ``stats`` (an ``AuditResult``).
    """
    return {
        "shard": index,
        "requests": requests,
        "events": events,
        "accepted": result.accepted,
        "reexec_seconds": result.phases.get("reexec", 0.0),
        "groups": result.stats.get("groups", 0),
    }
