"""Out-of-order re-execution (Figure 13; Appendix A.4).

:func:`execute_one` re-executes a single request through the *plain*
interpreter, feeding object reads via simulate-and-check and
non-determinism via the recorded reports.  It is used three ways:

1. per-request fallback when a SIMD group diverges on an unsupported case
   (OROCHI's retry, §4.3);
2. :func:`simple_audit` — the non-accelerated baseline audit that the
   evaluation compares against (§5.1);
3. :func:`ooo_audit` — the literal OOOAudit of the correctness proofs: it
   follows an explicit op schedule, interleaving requests operation by
   operation; the equivalence tests (Lemma 8) check it agrees with the
   grouped audit.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.common.errors import AuditReject, RejectReason, WeblangError
from repro.core.graph import OPNUM_INF
from repro.core.process_reports import process_op_reports
from repro.core.simulate import NondetCursor, OpHandler, SimContext
from repro.lang.interp import (
    ExternalIntent,
    Interpreter,
    NondetIntent,
    StateOpIntent,
)
from repro.trace.events import ExternalRequest
from repro.server.app import Application, InitialState
from repro.server.executor import ERROR_BODY
from repro.server.reports import Reports
from repro.trace.events import Request
from repro.trace.trace import Trace, check_balanced


def execute_one(
    app: Application, request: Request, ctx: SimContext,
    interp=None,
) -> str:
    """Re-execute one request to completion against the logs.

    Returns the produced body.  A deterministic application error
    reproduces the executor's fixed 500 page (and the handler checks the
    log shows the matching rollback).  ``interp`` swaps in another
    engine with the :meth:`Interpreter.run` generator contract (the
    ``compinterp`` backend passes its compiled-program runner); ``None``
    means the plain interpreter.
    """
    handler = OpHandler(ctx, request.rid)
    cursor = NondetCursor(
        request.rid, ctx.reports.nondet.get(request.rid, [])
    )
    if interp is None:
        interp = Interpreter(
            db_name=app.db_name,
            kv_name=app.kv_name,
            session_cookie=app.session_cookie,
            record_flow=False,
        )
    program = app.script(request.script)
    gen = interp.run(program, request)
    try:
        intent = next(gen)
        while True:
            if isinstance(intent, StateOpIntent):
                result = handler.handle(intent.kind, intent.obj, intent.args)
            elif isinstance(intent, NondetIntent):
                result = cursor.next(intent.func, intent.args)
            elif isinstance(intent, ExternalIntent):
                ctx.produced_externals.setdefault(request.rid, []).append(
                    ExternalRequest(request.rid, intent.service,
                                    intent.content)
                )
                result = True
            else:  # pragma: no cover - interpreter yields only intents
                raise AuditReject(
                    RejectReason.UNEXPECTED_EVENT,
                    f"unknown intent {intent!r}",
                )
            intent = gen.send(result)
    except StopIteration as stop:
        handler.finish()
        return stop.value.body
    except WeblangError:
        handler.finish_error()
        return ERROR_BODY


@dataclass
class OooResult:
    accepted: bool
    reason: RejectReason | None = None
    detail: str = ""
    produced: dict[str, str] = field(default_factory=dict)
    seconds: float = 0.0


def simple_audit(
    app: Application,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    strict_registers: bool = False,
) -> OooResult:
    """The non-accelerated audit: re-execute every request individually,
    in trace arrival order, then compare outputs.

    This is the "simple re-execution" baseline of §5.1 (given, as the
    paper's baseline is, the trace and the non-determinism reports).
    """
    started = _time.perf_counter()
    try:
        check_balanced(trace)
        _, opmap = process_op_reports(trace, reports)
        ctx = SimContext(app, reports, opmap, initial_state,
                         strict_registers)
        ctx.build_versioned_stores()
        produced: dict[str, str] = {}
        requests = trace.requests()
        for rid in trace.request_ids():
            produced[rid] = execute_one(app, requests[rid], ctx)
        _compare_outputs(trace, produced)
        _compare_externals(trace, ctx)
    except AuditReject as reject:
        return OooResult(
            False, reject.reason, reject.detail,
            seconds=_time.perf_counter() - started,
        )
    return OooResult(
        True, produced=produced, seconds=_time.perf_counter() - started
    )


def _compare_outputs(trace: Trace, produced: dict[str, str]) -> None:
    """Figure 12, lines 55-57 (aborted responses carry no body to check)."""
    for rid, response in trace.responses().items():
        if response.abort_info is not None:
            continue
        body = produced.get(rid)
        if body is None or body != response.body:
            raise AuditReject(
                RejectReason.OUTPUT_MISMATCH,
                f"request {rid}: produced output does not match the trace",
            )


def _compare_externals(trace: Trace, ctx: SimContext) -> None:
    """§5.5 extension: regenerated outbound externals must match the
    trace's EXTERNAL events, per request and in order."""
    observed = trace.externals()
    produced = ctx.produced_externals
    for rid in set(observed) | set(produced):
        got = [(e.service, e.content) for e in produced.get(rid, [])]
        want = [(e.service, e.content) for e in observed.get(rid, [])]
        if got != want:
            raise AuditReject(
                RejectReason.EXTERNAL_MISMATCH,
                f"request {rid}: regenerated external requests do not "
                f"match the trace ({len(got)} produced, {len(want)} "
                "observed)",
            )


# --------------------------------------------------------------------------
# Schedule-driven OOOAudit (Figure 13, for the Lemma 8 equivalence tests)
# --------------------------------------------------------------------------

ScheduleEntry = tuple[str, object]  # (rid, opnum) with opnum int or inf


class _OooTask:
    __slots__ = ("rid", "gen", "pending", "done", "body", "handler",
                 "cursor", "errored", "started", "emitted")

    def __init__(self, rid, gen, handler, cursor):
        self.rid = rid
        self.gen = gen
        self.pending = None
        self.done = False
        self.body: str | None = None
        self.handler = handler
        self.cursor = cursor
        self.errored = False
        self.started = False
        self.emitted = False  # (rid, inf) processed: output written out


def ooo_audit(
    app: Application,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    schedule: list[ScheduleEntry] | None = None,
    strict_registers: bool = False,
) -> OooResult:
    """OOOAudit (Definition 5): re-execute following an op schedule.

    ``schedule`` must be a well-formed op schedule — a permutation of G's
    nodes respecting program order.  ``None`` means "use a topological sort
    of G" (the proofs' canonical choice; rejects already detected cycles).
    """
    started = _time.perf_counter()
    try:
        check_balanced(trace)
        graph, opmap = process_op_reports(trace, reports)
        if schedule is None:
            order = graph.topo_sort()
            assert order is not None  # no cycle: has_cycle passed
            schedule = order
        ctx = SimContext(app, reports, opmap, initial_state,
                         strict_registers)
        ctx.build_versioned_stores()
        produced = _run_schedule(app, trace, reports, ctx, schedule)
        _compare_outputs(trace, produced)
        _compare_externals(trace, ctx)
    except AuditReject as reject:
        return OooResult(
            False, reject.reason, reject.detail,
            seconds=_time.perf_counter() - started,
        )
    return OooResult(
        True, produced=produced, seconds=_time.perf_counter() - started
    )


def _run_schedule(
    app: Application,
    trace: Trace,
    reports: Reports,
    ctx: SimContext,
    schedule: list[ScheduleEntry],
) -> dict[str, str]:
    interp = Interpreter(
        db_name=app.db_name,
        kv_name=app.kv_name,
        session_cookie=app.session_cookie,
        record_flow=False,
    )
    requests = trace.requests()
    tasks: dict[str, _OooTask] = {}

    def advance(task: _OooTask, result: object) -> None:
        """Send ``result`` in (or start); buffer the next state-op intent,
        resolving non-determinism inline (it is not a scheduling point)."""
        try:
            if not task.started:
                task.started = True
                intent = next(task.gen)
            else:
                intent = task.gen.send(result)
            while isinstance(intent, (NondetIntent, ExternalIntent)):
                if isinstance(intent, ExternalIntent):
                    ctx.produced_externals.setdefault(
                        task.rid, []
                    ).append(ExternalRequest(task.rid, intent.service,
                                             intent.content))
                    intent = task.gen.send(True)
                else:
                    value = task.cursor.next(intent.func, intent.args)
                    intent = task.gen.send(value)
            task.pending = intent
        except StopIteration as stop:
            task.done = True
            task.body = stop.value.body
        except WeblangError:
            task.done = True
            task.errored = True
            task.body = ERROR_BODY

    for rid, opnum in schedule:
        if opnum == 0:
            # Read in inputs; allocate program structures (Figure 13 l.6-8).
            if rid not in requests:
                raise AuditReject(
                    RejectReason.GROUP_UNKNOWN_RID,
                    f"schedule names unknown request {rid!r}",
                )
            request = requests[rid]
            handler = OpHandler(ctx, rid)
            cursor = NondetCursor(rid, reports.nondet.get(rid, []))
            tasks[rid] = _OooTask(
                rid, interp.run(app.script(request.script), request),
                handler, cursor,
            )
            continue
        task = tasks.get(rid)
        if task is None:
            raise AuditReject(
                RejectReason.UNEXPECTED_EVENT,
                f"schedule uses {rid} before its (rid, 0) entry",
            )
        if opnum == OPNUM_INF:
            # Run to output (Figure 13, lines 10-14).
            if not task.started:
                advance(task, None)
            if not task.done:
                raise AuditReject(
                    RejectReason.UNEXPECTED_EVENT,
                    f"request {rid}: state operation where the schedule "
                    "expects the response",
                )
            if task.errored:
                task.handler.finish_error()
            else:
                task.handler.finish()
            task.emitted = True  # Figure 13 line 14: write out the output
            continue
        # A numbered operation (Figure 13, lines 16-23).  One schedule slot
        # covers one *operation*: for a DB transaction that means all its
        # statements, begin through commit/rollback (§A.7) — the object is
        # held for the duration, so the transaction is atomic either way.
        if not task.started:
            advance(task, None)  # run up to the first operation
        start_opnum = task.handler.opnum
        while True:
            if task.done or not isinstance(task.pending, StateOpIntent):
                raise AuditReject(
                    RejectReason.UNEXPECTED_EVENT,
                    f"request {rid}: schedule expects operation {opnum} "
                    "but the program produced none",
                )
            intent = task.pending
            task.pending = None
            result = task.handler.handle(
                intent.kind, intent.obj, intent.args
            )
            advance(task, result)
            if task.handler.opnum > start_opnum and task.handler.tx is None:
                break
            if task.done:
                break

    produced: dict[str, str] = {}
    for rid, task in tasks.items():
        if task.emitted and task.body is not None:
            produced[rid] = task.body
    return produced
