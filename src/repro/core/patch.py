"""Patch-based auditing (§7; the Poirot [53] use case).

"Here, one replays prior requests against patched code to see if the
responses are now different."  Given an accepted trace from the *original*
application, :func:`patch_audit` re-executes every request against a
*patched* application and classifies each request:

* ``unchanged`` — the patched code produces the same response;
* ``changed`` — the patched code produces a different response (these are
  the requests the operator must review: e.g., users who saw the
  pre-patch, vulnerable behaviour);
* ``incomparable`` — the patched code's interaction with shared objects
  diverges from the logged one, so its reads cannot be fed from this
  epoch's logs (Poirot handles this with query templates; we report it).

Mechanics: re-execution uses a *lenient* operation handler.  Reads are
still fed by position from the logs/versioned stores, but mismatching
write operands do not reject — the patch is allowed to write different
values; what matters is where its reads land.  A patched request that
issues a different *sequence* of operations (extra, missing, or
retargeted ops) is incomparable.

This supports the common patch shape — rendering/logic changes that
preserve the state-operation sequence — and degrades explicitly
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import AuditReject, RejectReason, WeblangError
from repro.core.ooo import execute_one
from repro.core.process_reports import process_op_reports
from repro.core.simulate import NondetCursor, OpHandler, SimContext
from repro.lang.interp import (
    ExternalIntent,
    Interpreter,
    NondetIntent,
    StateOpIntent,
)
from repro.objects.base import OpType
from repro.server.app import Application, InitialState
from repro.server.executor import ERROR_BODY
from repro.server.reports import Reports
from repro.trace.trace import Trace, check_balanced


class _LenientOpHandler(OpHandler):
    """CheckOp that tolerates different write *operands* (not different
    operation sequences)."""

    def __init__(self, ctx: SimContext, rid: str):
        super().__init__(ctx, rid)
        self.comparable = True

    def handle(self, kind: str, obj: str, args: tuple) -> object:
        try:
            return super().handle(kind, obj, args)
        except AuditReject as reject:
            if reject.reason is not RejectReason.OP_MISMATCH:
                raise
            return self._lenient(kind, obj, args, reject)

    def _lenient(self, kind: str, obj: str, args: tuple,
                 reject: AuditReject) -> object:
        """Resolve an operand mismatch: writes pass through; anything
        structural marks the request incomparable."""
        from repro.sql.ast import Select
        from repro.sql.parser import parse_sql
        from repro.sql.versioned import MAXQ

        if kind in ("register_write", "kv_set"):
            # The opnum was already consumed by the failed super().handle.
            obj_hat, _, record = self.ctx.lookup_op(self.rid, self.opnum)
            expected = {
                "register_write": OpType.REGISTER_WRITE,
                "kv_set": OpType.KV_SET,
            }[kind]
            if obj_hat == obj and record.optype is expected:
                return None  # same op, different operand: a patch effect
            raise _Incomparable()
        if kind == "db_statement":
            if self.tx is not None:
                tx = self.tx
                if tx.q >= len(tx.queries) - 1:
                    raise _Incomparable()
                logged_sql = tx.queries[tx.q]
                ts = tx.seq * MAXQ + tx.q + 1

                def advance():
                    tx.q += 1
            else:
                # Auto-commit: super().handle already bumped opnum.
                obj_hat, seq, record = self.ctx.lookup_op(
                    self.rid, self.opnum
                )
                if obj_hat != obj or record.optype is not OpType.DB_OP:
                    raise _Incomparable()
                queries, _succeeded = record.opcontents
                if len(queries) != 1:
                    raise _Incomparable()
                logged_sql = queries[0]
                ts = seq * MAXQ + 1

                def advance():
                    pass
            try:
                patched_is_read = isinstance(parse_sql(args[0]), Select)
                logged_is_read = isinstance(parse_sql(logged_sql), Select)
            except Exception:
                raise _Incomparable() from None
            if patched_is_read or logged_is_read:
                # A read moved or changed: its value cannot be derived
                # from this epoch's logs (Poirot uses templates here).
                raise _Incomparable()
            advance()
            return self.ctx.db_write_result(obj, ts)
        raise _Incomparable()


class _Incomparable(Exception):
    pass


@dataclass
class PatchAuditResult:
    """Outcome of re-auditing a trace against patched code (§7)."""

    accepted_original: bool
    unchanged: list[str] = field(default_factory=list)
    changed: dict[str, tuple[str | None, str | None]] = field(
        default_factory=dict
    )  # rid -> (original body, patched body)
    incomparable: list[str] = field(default_factory=list)
    reason: RejectReason | None = None
    detail: str = ""


def patch_audit(
    original: Application,
    patched: Application,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
) -> PatchAuditResult:
    """Replay the audited epoch against ``patched`` and report which
    responses change.

    The trace+reports must first pass the ordinary audit against
    ``original`` (a corrupt epoch cannot be patch-audited); we run the
    per-request audit for that, reusing its context for the replay.
    """
    result = PatchAuditResult(accepted_original=False)
    try:
        check_balanced(trace)
        _, opmap = process_op_reports(trace, reports)
        ctx = SimContext(original, reports, opmap, initial_state)
        ctx.build_versioned_stores()
        requests = trace.requests()
        originals: dict[str, str] = {}
        for rid in trace.request_ids():
            originals[rid] = execute_one(original, requests[rid], ctx)
            observed = trace.responses()[rid]
            if observed.abort_info is None and \
                    originals[rid] != observed.body:
                raise AuditReject(
                    RejectReason.OUTPUT_MISMATCH,
                    f"request {rid}: the epoch fails the original audit",
                )
        result.accepted_original = True
    except AuditReject as reject:
        result.reason = reject.reason
        result.detail = reject.detail
        return result

    patched_ctx = SimContext(patched, reports, opmap, initial_state)
    patched_ctx.build_versioned_stores()
    for rid in trace.request_ids():
        request = requests[rid]
        try:
            body = _execute_patched(patched, request, patched_ctx, reports)
        except _Incomparable:
            result.incomparable.append(rid)
            continue
        except AuditReject:
            result.incomparable.append(rid)
            continue
        if body == originals[rid]:
            result.unchanged.append(rid)
        else:
            result.changed[rid] = (originals[rid], body)
    return result


def _execute_patched(
    app: Application,
    request,
    ctx: SimContext,
    reports: Reports,
) -> str:
    handler = _LenientOpHandler(ctx, request.rid)
    cursor = NondetCursor(
        request.rid, reports.nondet.get(request.rid, [])
    )
    interp = Interpreter(
        db_name=app.db_name,
        kv_name=app.kv_name,
        session_cookie=app.session_cookie,
        record_flow=False,
    )
    gen = interp.run(app.script(request.script), request)
    try:
        intent = next(gen)
        while True:
            if isinstance(intent, StateOpIntent):
                result = handler.handle(intent.kind, intent.obj,
                                        intent.args)
            elif isinstance(intent, NondetIntent):
                result = cursor.next(intent.func, intent.args)
            elif isinstance(intent, ExternalIntent):
                result = True
            else:  # pragma: no cover
                raise _Incomparable()
            intent = gen.send(result)
    except StopIteration as stop:
        return stop.value.body
    except WeblangError:
        return ERROR_BODY
