"""The epoch work unit: one encoding shared by every epoch driver.

An **epoch work unit** is the pickled tuple ``(app, trace slice,
reports slice, initial state, options)`` — exactly the prepass
artifacts the redo-only state precompute materializes per epoch
(``docs/epoch_workers.md`` documents the payload format).  Its
**outcome** is a plain :class:`~repro.core.pipeline.AuditResult`: a
rejection is a *result* carrying whatever stats the pipeline
accumulated before failing (the same partial-stats discipline as
``reexec._worker_run_chunk``), never an exception — so a verdict
produced on another host merges bit-identically to one produced in a
local worker process.

Three executors consume this unit:

* the serial fallback (:func:`run_epoch_inline`, in the calling
  thread);
* the persistent per-run :class:`~repro.core.epochpool.EpochPool`
  (:func:`run_work_unit` in a pool worker process);
* the distributed fleet (:mod:`repro.fleet`), which ships the same
  pickled payload inside ``WORK`` frames and the same pickled
  :class:`AuditResult` back inside ``RESULT`` frames
  (:func:`encode_work_frame` / :func:`encode_result_frame` below —
  base64 wraps the pickle because the frame payloads are JSON).

Keeping the encode/decode here — instead of inside any one driver —
is what guarantees the drivers cannot diverge: they run byte-identical
payloads through one entry point.
"""

from __future__ import annotations

import base64
import pickle
from dataclasses import replace
from typing import Any

__all__ = [
    "epoch_worker_options",
    "run_epoch_inline",
    "encode_work_unit",
    "decode_work_unit",
    "run_work_unit",
    "encode_work_frame",
    "decode_work_frame",
    "encode_result_frame",
    "encode_error_frame",
    "decode_result_frame",
]


def epoch_worker_options(options):
    """The knob set one epoch work unit runs under.

    The serial chain's per-shard options with no further sharding and
    the same ``workers`` count — the chunk *plan* must match the serial
    chain's bit for bit.  ``inline_reexec`` executes that plan serially
    inside the worker process instead of fanning out a nested pool.
    ``migrate`` is off: the chain state is produced by the parent's
    redo-only prepass, so a worker-side §4.5 compaction would be built
    only to be thrown away.  MigratePhase never rejects and emits no
    stats (it still appears as a zero-cost phase timer), so disabling
    it cannot change verdicts, bodies, or deterministic stats.  The
    fleet knobs are cleared for the same reason ``epoch_processes``
    is: a worker must never recursively open its own fleet.
    """
    return replace(
        options,
        epoch_size=0,
        epoch_cuts=None,
        epoch_workers=1,
        migrate=False,
        offload_reexec=False,
        inline_reexec=True,
        epoch_processes=False,
        prepass_depth=0,
        fleet_listen=None,
        fleet_min_workers=0,
        fleet_redundancy=1,
    )


def run_epoch_inline(app, trace, reports, initial_state, options):
    """One full pipeline pass over an epoch slice, in this process.

    The worker-side entry points (process pool and fleet daemon) and
    the serial fallback all run through here, so the paths cannot
    diverge.  ``next_initial`` is dropped: the drivers chain state
    through the redo-only prepass, and a migrated store has no
    business crossing the process boundary.
    """
    from repro.core.pipeline import AuditContext, default_pipeline

    actx = AuditContext(app, trace, reports, initial_state, options)
    result = default_pipeline(options).run(actx)
    result.next_initial = None
    return result


# -- pickle payload ------------------------------------------------------------


def encode_work_unit(app, trace, reports, initial_state, options) -> bytes:
    """Pickle one epoch work unit.  Raises the pickle family of errors
    for unpicklable inputs — the caller decides whether that degrades
    to an inline run (it always should)."""
    return pickle.dumps((app, trace, reports, initial_state, options))


def decode_work_unit(payload: bytes):
    """The inverse of :func:`encode_work_unit`."""
    return pickle.loads(payload)


def run_work_unit(payload: bytes):
    """Executor entry point: decode one epoch work unit and audit it.
    Raises only on genuine crashes (a rejection is a result, never an
    exception — the pipeline converts :class:`AuditReject`)."""
    app, trace, reports, initial_state, options = decode_work_unit(payload)
    return run_epoch_inline(app, trace, reports, initial_state, options)


# -- fleet wire payloads (JSON frame bodies over repro.net) --------------------


def encode_work_frame(epoch: int, payload: bytes) -> dict:
    """``WORK`` frame body: the epoch's feed-order index plus the
    byte-identical pickled work unit, base64-wrapped for JSON."""
    return {
        "epoch": int(epoch),
        "unit": base64.b64encode(payload).decode("ascii"),
    }


def decode_work_frame(obj: Any) -> tuple[int, bytes]:
    """Validate and unpack a ``WORK`` frame body."""
    if not isinstance(obj, dict):
        raise ValueError(f"WORK body must be an object, got {type(obj).__name__}")
    epoch = obj.get("epoch")
    unit = obj.get("unit")
    if not isinstance(epoch, int) or not isinstance(unit, str):
        raise ValueError("WORK body needs integer 'epoch' and base64 'unit'")
    try:
        payload = base64.b64decode(unit.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ValueError(f"WORK unit is not valid base64: {exc}") from exc
    return epoch, payload


def encode_result_frame(epoch: int, result) -> dict:
    """``RESULT`` frame body for a completed epoch: the pickled
    :class:`AuditResult` verbatim.  REJECT verdicts travel this path
    too — the pickle carries the partial stats the pipeline accumulated
    before rejecting, so a remote REJECT merges with the same stats as
    a local one."""
    return {
        "epoch": int(epoch),
        "ok": True,
        "result": base64.b64encode(pickle.dumps(result)).decode("ascii"),
    }


def encode_error_frame(epoch: int, error: str) -> dict:
    """``RESULT`` frame body for an epoch the worker could not execute
    (a crash, not a verdict).  The coordinator treats this as an
    infrastructure failure and re-runs the epoch itself."""
    return {"epoch": int(epoch), "ok": False, "error": str(error)}


def decode_result_frame(obj: Any) -> tuple[int, bool, Any, str | None]:
    """Validate and unpack a ``RESULT`` body.

    Returns ``(epoch, ok, result, error)`` — ``result`` is the
    unpickled :class:`AuditResult` when ``ok``, else ``None`` with
    ``error`` set.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"RESULT body must be an object, got {type(obj).__name__}")
    epoch = obj.get("epoch")
    if not isinstance(epoch, int):
        raise ValueError("RESULT body needs an integer 'epoch'")
    if not obj.get("ok"):
        error = obj.get("error")
        return epoch, False, None, str(error) if error is not None else "unknown"
    blob = obj.get("result")
    if not isinstance(blob, str):
        raise ValueError("RESULT body needs a base64 'result' when ok")
    try:
        result = pickle.loads(base64.b64decode(blob.encode("ascii"),
                                               validate=True))
    except Exception as exc:
        raise ValueError(f"RESULT payload is not a pickled result: {exc}") from exc
    return epoch, True, result, None
