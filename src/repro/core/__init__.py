"""SSCO: the audit algorithms (Sections 3, A; Figures 3, 5, 6, 12, 13).

Public entry points:

* :func:`repro.core.verifier.ssco_audit` — the full SSCO_AUDIT2 pipeline
  (balance check, consistent-ordering verification, versioned-store builds,
  SIMD-on-demand re-execution with simulate-and-check, output comparison).
* :func:`repro.core.ooo.simple_audit` — the out-of-order, per-request
  audit (Figure 13's OOOExec), used as the non-accelerated baseline and in
  the Lemma 8 equivalence tests.
* :func:`repro.core.timeprec.create_time_precedence_graph` — the streaming
  frontier algorithm (Figure 6).
"""

from repro.core.verifier import AuditResult, ssco_audit
from repro.core.ooo import ooo_audit, simple_audit
from repro.core.timeprec import create_time_precedence_graph

__all__ = [
    "AuditResult",
    "create_time_precedence_graph",
    "ooo_audit",
    "simple_audit",
    "ssco_audit",
]
