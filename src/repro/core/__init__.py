"""SSCO: the audit algorithms (Sections 3, A; Figures 3, 5, 6, 12, 13).

Public entry points:

* :func:`repro.core.verifier.ssco_audit` — the full SSCO_AUDIT2 pipeline
  (balance check, consistent-ordering verification, versioned-store builds,
  SIMD-on-demand re-execution with simulate-and-check, output comparison).
* :func:`repro.core.ooo.simple_audit` — the out-of-order, per-request
  audit (Figure 13's OOOExec), used as the non-accelerated baseline and in
  the Lemma 8 equivalence tests.
* :func:`repro.core.timeprec.create_time_precedence_graph` — the streaming
  frontier algorithm (Figure 6).
* :mod:`repro.core.pipeline` — the phased audit engine
  (:class:`~repro.core.pipeline.AuditPipeline` of composable
  :class:`~repro.core.pipeline.AuditPhase` objects) every entry point
  above is built on, plus the epoch-sharded driver.
* :mod:`repro.core.partition` — quiescent-cut epoch partitioning of
  audit inputs.
* :mod:`repro.core.auditor` — the service API: a long-lived
  :class:`~repro.core.auditor.Auditor` bound to a validated
  :class:`~repro.core.config.AuditConfig`, with incremental epoch
  :class:`~repro.core.auditor.AuditSession` feeding (the paper's
  continuous deployment, §4.1).
* :mod:`repro.core.reexec` — the re-execution engines behind the
  pipeline's :class:`~repro.core.pipeline.ReExecPhase`, pluggable via
  :func:`~repro.core.reexec.register_reexec_backend`.
"""

from repro.core.pipeline import (
    AuditContext,
    AuditOptions,
    AuditPipeline,
    AuditPhase,
    default_pipeline,
    precompute_epoch_states,
    run_audit,
    sharded_audit,
    state_precompute_pipeline,
)
from repro.core.auditor import AuditSession, Auditor, EpochResult
from repro.core.epochpool import EpochPool
from repro.core.config import AuditConfig
from repro.core.partition import Shard, find_epoch_cuts, partition_audit_inputs
from repro.core.reexec import (
    DEFAULT_BACKEND,
    available_backends,
    default_backend,
    register_reexec_backend,
)
from repro.core.profile import group_profile, summarize_triples
from repro.core.verifier import AuditResult, ssco_audit
from repro.core.ooo import ooo_audit, simple_audit
from repro.core.timeprec import create_time_precedence_graph

__all__ = [
    "AuditConfig",
    "AuditContext",
    "AuditOptions",
    "AuditPhase",
    "AuditPipeline",
    "AuditResult",
    "AuditSession",
    "Auditor",
    "DEFAULT_BACKEND",
    "EpochPool",
    "EpochResult",
    "Shard",
    "available_backends",
    "create_time_precedence_graph",
    "default_backend",
    "default_pipeline",
    "find_epoch_cuts",
    "ooo_audit",
    "partition_audit_inputs",
    "precompute_epoch_states",
    "register_reexec_backend",
    "group_profile",
    "run_audit",
    "sharded_audit",
    "simple_audit",
    "ssco_audit",
    "summarize_triples",
    "state_precompute_pipeline",
]
