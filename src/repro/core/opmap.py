"""OpMap: the index of the operation logs (Figures 3, 5, 12).

``OpMap : (requestID, opnum) -> (object_name, seqnum)`` — built by
CheckLogs while it validates the logs (Figure 5, line 38), then consulted
by every CheckOp during re-execution.  ``seqnum`` is the 1-based position
of the operation within its object's log.
"""

from __future__ import annotations


Entry = tuple[str, int]  # (object name, 1-based log position)


class OpMap:
    """Thin dict wrapper; exists to make intent explicit and to give the
    tamper tests a stable surface."""

    def __init__(self) -> None:
        self._map: dict[tuple[str, int], Entry] = {}

    def insert(self, rid: str, opnum: int, obj: str, seq: int) -> None:
        self._map[(rid, opnum)] = (obj, seq)

    def get(self, rid: str, opnum: int) -> Entry | None:
        return self._map.get((rid, opnum))

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._map

    def __len__(self) -> int:
        return len(self._map)
