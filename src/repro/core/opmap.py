"""OpMap: the index of the operation logs (Figures 3, 5, 12).

``OpMap : (requestID, opnum) -> (object_name, seqnum)`` — built by
CheckLogs while it validates the logs (Figure 5, line 38), then consulted
by every CheckOp during re-execution.  ``seqnum`` is the 1-based position
of the operation within its object's log.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

Entry = Tuple[str, int]  # (object name, 1-based log position)


class OpMap:
    """Thin dict wrapper; exists to make intent explicit and to give the
    tamper tests a stable surface."""

    def __init__(self) -> None:
        self._map: Dict[Tuple[str, int], Entry] = {}

    def insert(self, rid: str, opnum: int, obj: str, seq: int) -> None:
        self._map[(rid, opnum)] = (obj, seq)

    def get(self, rid: str, opnum: int) -> Optional[Entry]:
        return self._map.get((rid, opnum))

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._map

    def __len__(self) -> int:
        return len(self._map)
