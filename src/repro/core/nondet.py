"""Plausibility checks on non-determinism reports (Section 4.6).

The reports are untrusted, and unlike object operations they cannot be
cross-checked against re-execution output (the paper: "we cannot give
rigorous guarantees about the efficacy of these checks").  The verifier
nevertheless rejects reports that are *internally* implausible:

* ``time``/``microtime`` values must be non-decreasing within a request;
* ``getpid`` must be constant within a request;
* ``rand(lo, hi)`` values must lie in the recorded argument range;
* ``uniqid`` values must be unique across the whole report set.
"""

from __future__ import annotations


from repro.common.errors import AuditReject, RejectReason
from repro.lang.values import to_int
from repro.server.reports import Reports


def validate_nondet_reports(
    reports: Reports, seen_uniq: set[str] | None = None
) -> None:
    """Raise :class:`AuditReject` on implausible non-determinism reports.

    ``seen_uniq`` lets incremental callers (an epoch-fed
    :class:`~repro.core.auditor.AuditSession`) thread the set of
    ``uniqid()`` values across epochs, so the whole-report-set uniqueness
    check still spans the full stream; the set is updated in place.
    """
    if seen_uniq is None:
        seen_uniq = set()
    for rid, records in reports.nondet.items():
        last_time: float = float("-inf")
        pid: object = None
        for index, record in enumerate(records):
            where = f"request {rid}, nondet #{index + 1}"
            if record.func in ("time", "microtime"):
                if not isinstance(record.value, (int, float)) or isinstance(
                    record.value, bool
                ):
                    raise AuditReject(
                        RejectReason.NONDET_IMPLAUSIBLE,
                        f"{where}: non-numeric {record.func}()",
                    )
                if record.value < last_time:
                    raise AuditReject(
                        RejectReason.NONDET_IMPLAUSIBLE,
                        f"{where}: time went backwards",
                    )
                last_time = float(record.value)
            elif record.func in ("rand", "mt_rand"):
                low = to_int(record.args[0]) if len(record.args) >= 1 else 0
                high = (
                    to_int(record.args[1])
                    if len(record.args) >= 2
                    else 2**31 - 1
                )
                if (
                    not isinstance(record.value, int)
                    or isinstance(record.value, bool)
                    or not (low <= record.value <= high)
                ):
                    raise AuditReject(
                        RejectReason.NONDET_IMPLAUSIBLE,
                        f"{where}: rand() outside [{low}, {high}]",
                    )
            elif record.func == "getpid":
                if pid is None:
                    pid = record.value
                elif record.value != pid:
                    raise AuditReject(
                        RejectReason.NONDET_IMPLAUSIBLE,
                        f"{where}: pid changed within the request",
                    )
            elif record.func == "uniqid":
                if not isinstance(record.value, str):
                    raise AuditReject(
                        RejectReason.NONDET_IMPLAUSIBLE,
                        f"{where}: non-string uniqid()",
                    )
                if record.value in seen_uniq:
                    raise AuditReject(
                        RejectReason.NONDET_IMPLAUSIBLE,
                        f"{where}: duplicate uniqid() {record.value!r}",
                    )
                seen_uniq.add(record.value)
            else:
                raise AuditReject(
                    RejectReason.NONDET_IMPLAUSIBLE,
                    f"{where}: unknown non-deterministic builtin "
                    f"{record.func!r}",
                )
