"""The audit graph G (Section 3.5).

Nodes are events: ``(rid, 0)`` is the request's arrival, ``(rid, opnum)``
for ``1 <= opnum <= M(rid)`` are its alleged operations, and
``(rid, OPNUM_INF)`` is the departure of its response.  Edges are
precedence.  The only queries the audit needs are "add node/edge",
"has cycle?", and "topological order" (the proofs' implied schedule, used
by the OOO audit and the equivalence tests).

Cycle detection is an iterative three-color DFS (the standard algorithm
the paper cites, [32, Ch. 22]), implemented without recursion so that
traces with hundreds of thousands of events do not hit Python's stack
limit.
"""

from __future__ import annotations

from collections.abc import Iterable

#: The ``∞`` opnum marking the response-departure node.
OPNUM_INF = float("inf")

Node = tuple[str, object]  # (rid, opnum) with opnum int or OPNUM_INF


class Graph:
    """Directed graph over event nodes, adjacency-list based."""

    def __init__(self) -> None:
        self.adj: dict[Node, list[Node]] = {}

    # -- construction -------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node not in self.adj:
            self.adj[node] = []

    def add_edge(self, src: Node, dst: Node) -> None:
        self.add_node(src)
        self.add_node(dst)
        self.adj[src].append(dst)

    # -- queries --------------------------------------------------------------

    @property
    def nodes(self) -> Iterable[Node]:
        return self.adj.keys()

    def node_count(self) -> int:
        return len(self.adj)

    def edge_count(self) -> int:
        return sum(len(out) for out in self.adj.values())

    def has_cycle(self) -> bool:
        """Three-color DFS, iterative."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[Node, int] = {node: WHITE for node in self.adj}
        for start in self.adj:
            if color[start] != WHITE:
                continue
            # Stack holds (node, iterator over successors).
            stack: list[tuple[Node, int]] = [(start, 0)]
            color[start] = GRAY
            while stack:
                node, index = stack[-1]
                successors = self.adj[node]
                if index < len(successors):
                    stack[-1] = (node, index + 1)
                    nxt = successors[index]
                    state = color.get(nxt, WHITE)
                    if state == GRAY:
                        return True
                    if state == WHITE:
                        color[nxt] = GRAY
                        stack.append((nxt, 0))
                else:
                    color[node] = BLACK
                    stack.pop()
        return False

    def topo_sort(self) -> list[Node] | None:
        """Kahn's algorithm; None if the graph has a cycle."""
        indegree: dict[Node, int] = {node: 0 for node in self.adj}
        for out in self.adj.values():
            for dst in out:
                indegree[dst] += 1
        ready = [node for node, deg in indegree.items() if deg == 0]
        order: list[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for dst in self.adj[node]:
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    ready.append(dst)
        if len(order) != len(self.adj):
            return None
        return order

    def reachable_from(self, start: Node) -> set:
        """All nodes reachable from ``start`` (test helper)."""
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in self.adj.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen
