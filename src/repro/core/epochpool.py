"""Process-level epoch execution: one persistent pool per audit run.

The concurrent epoch drivers (``sharded_audit`` with ``epoch_workers >
1`` and the :class:`~repro.core.auditor.AuditSession` epoch-workers
mode) historically finished each primed epoch on a *thread*, moving the
re-execution CPU off the GIL by routing every epoch's chunks through a
freshly created one-worker process pool (``offload_reexec``).  That
design pays pool creation per epoch audit and keeps every phase except
re-execution itself GIL-bound.

This module promotes the epoch to the unit of process-level work:

* an **epoch work unit** is the pickled tuple ``(app, trace slice,
  reports slice, initial state, options)`` — exactly the prepass
  artifacts the redo-only state precompute materializes per epoch
  (``docs/epoch_workers.md`` documents the payload format);
* :class:`EpochPool` owns **one persistent**
  :class:`~concurrent.futures.ProcessPoolExecutor` shared by *all*
  epochs of one audit run.  Workers are stateless: each work unit
  carries everything the epoch's full pipeline pass needs, so the pool
  outlives any individual epoch and is created exactly once per run;
* the worker runs the stock pipeline over the slice with the *same
  chunk plan* the serial chain would use (``inline_reexec`` executes
  the plan serially in-process — epoch-level parallelism already owns
  the cores, so no nested re-exec pools are created) and ships back a
  plain :class:`~repro.core.pipeline.AuditResult`.  Verdicts, produced
  bodies, and deterministic stats are therefore bit-identical to the
  serial chain's per-epoch passes.

Failure policy (unchanged in spirit from the chunk-level driver):
infrastructure failures are never verdicts.  A worker killed mid-epoch
(``BrokenProcessPool``) breaks the shared executor, so
:meth:`EpochPool.run_epoch` *recreates* the pool — generation-guarded,
exactly once per breakage, so concurrently failing epochs do not
thrash — and re-runs its own epoch serially in the calling thread.
Other epochs in flight on the broken pool observe the same
``BrokenProcessPool`` from their futures and take the same fallback:
no epoch's work is ever lost, and later epochs submit to the fresh
pool.  Unpicklable payloads and workers that cannot rebuild the
backend (e.g. one registered only in the parent, under a spawn start
method) degrade to the same serial re-run.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.core.epochwork import (
    encode_work_unit,
    epoch_worker_options,
    run_epoch_inline,
    run_work_unit,
)
from repro.core.reexec import _POOL_LOCK

__all__ = ["EpochPool", "epoch_worker_options", "pools_created_total"]

#: Pools ever created in this process — test instrumentation: the
#: lifecycle tests assert one audit run creates exactly one pool (plus
#: one per recreation after a worker loss).
_POOLS_CREATED = 0


def pools_created_total() -> int:
    """Process-wide pool creation count (monotonic; for tests)."""
    return _POOLS_CREATED


# The work-unit encoding and the inline executor live in
# repro.core.epochwork so the process pool, the serial fallback, and
# the distributed fleet all run byte-identical payloads through one
# entry point.  The private aliases keep historical imports working.
_run_epoch_inline = run_epoch_inline


def _run_epoch_payload(payload: bytes):
    """Worker-process entry point: unpickle one epoch work unit and
    audit it.  Raises only on genuine crashes (a rejection is a result,
    never an exception — the pipeline converts :class:`AuditReject`).

    Kept as a module-level function (not just an alias) so the name
    submitted to the :class:`ProcessPoolExecutor` pickles by reference
    from this module, matching what historical worker processes import.
    """
    return run_work_unit(payload)


class EpochPool:
    """One persistent process pool shared by all epochs of a run.

    Thread-safe: the concurrent drivers call :meth:`run_epoch` from
    several epoch threads at once.  The underlying executor is created
    lazily on first use (under the re-exec module's pool lock, so epoch
    workers are never forked mid-way through another driver's chunk
    handoff) and replaced at most once per breakage.
    """

    def __init__(self, max_workers: int):
        self.max_workers = max(1, max_workers)
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._generation = 0
        self._closed = False
        self._disabled = False
        #: Executors this instance created (tests assert 1 per run).
        self.pools_created = 0
        #: Epochs that fell back to a serial in-process re-run.
        self.serial_fallbacks = 0

    # -- pool lifecycle ---------------------------------------------------

    def _ensure_pool(self):
        """The live executor and its generation, creating it if needed.
        Returns ``(None, generation)`` when process pools are unusable
        on this platform (the caller runs the epoch inline)."""
        global _POOLS_CREATED
        with self._lock:
            if self._closed:
                raise RuntimeError("epoch pool is closed")
            if self._pool is None and not self._disabled:
                try:
                    with _POOL_LOCK:
                        self._pool = ProcessPoolExecutor(
                            max_workers=self.max_workers)
                        # Bumped under the *global* lock: two pools
                        # creating executors concurrently must not
                        # lose an increment.
                        self.pools_created += 1
                        _POOLS_CREATED += 1
                except (OSError, ValueError):
                    # No process support at all: every epoch of this
                    # run degrades to the in-thread serial path.
                    self._disabled = True
            return self._pool, self._generation

    def _retire(self, generation: int) -> None:
        """Drop a broken executor so the next epoch gets a fresh one.

        Generation-guarded: when several in-flight epochs observe the
        same ``BrokenProcessPool``, only the first retires it; the rest
        see the bumped generation and leave the replacement alone.
        """
        with self._lock:
            if self._generation != generation or self._pool is None:
                return
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._generation += 1

    def close(self) -> None:
        """Shut the executor down.  Idempotent; callers must have
        drained their in-flight epochs first."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- the epoch work unit ----------------------------------------------

    def run_epoch(self, app, trace, reports, initial_state, options):
        """Audit one epoch slice on the shared pool; blocks for the
        result.  Returns the epoch's :class:`AuditResult`; never raises
        on infrastructure failure (worker loss, unpicklable payload) —
        those re-run the epoch serially in the calling thread.
        """
        try:
            payload = encode_work_unit(app, trace, reports, initial_state,
                                       options)
        except (pickle.PickleError, TypeError, AttributeError):
            return self._run_inline(app, trace, reports, initial_state,
                                    options)
        pool, generation = self._ensure_pool()
        if pool is None:
            return self._run_inline(app, trace, reports, initial_state,
                                    options)
        try:
            with _POOL_LOCK:
                # Workers are forked/spawned lazily at submit time;
                # serialize that moment against the chunk-level pools'
                # state handoffs (see repro.core.reexec).
                future = pool.submit(_run_epoch_payload, payload)
            return future.result()
        except BrokenProcessPool:
            # A worker died mid-epoch.  Recreate the shared pool for
            # everyone else, then finish *this* epoch serially —
            # infrastructure failures never become verdicts, and other
            # epochs' futures fail over through this same path.
            self._retire(generation)
            return self._run_inline(app, trace, reports, initial_state,
                                    options)
        except Exception:
            # The worker could not run the payload at all (e.g. a
            # backend registered only in the parent, under spawn).  The
            # serial re-run reproduces any genuine deterministic crash,
            # so real bugs still surface — from the fallback.
            return self._run_inline(app, trace, reports, initial_state,
                                    options)

    def _run_inline(self, app, trace, reports, initial_state, options):
        self.serial_fallbacks += 1
        return run_epoch_inline(app, trace, reports, initial_state,
                                options)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EpochPool workers={self.max_workers} "
                f"created={self.pools_created} "
                f"fallbacks={self.serial_fallbacks}>")
