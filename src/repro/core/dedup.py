"""Read-query deduplication (Section 4.5).

Within one control-flow group, re-executed SELECTs are clustered by their
SQL text.  Two queries P and Q with the same text can share one execution
if the tables they touch were not modified between P's and Q's versions
(timestamps).  The versioned DB's per-table write-timestamp index
(:meth:`~repro.sql.versioned.VersionedDB.writes_between`) answers that.

The cache lives for the duration of one group's re-execution (the paper
clusters "all queries in a control flow group").
"""

from __future__ import annotations

import bisect
from functools import lru_cache

from repro.sql.ast import Select, tables_touched
from repro.sql.engine import StmtResult
from repro.sql.parser import parse_sql
from repro.sql.versioned import VersionedDB


@lru_cache(maxsize=4096)
def _parsed_select(sql: str) -> tuple[Select, tuple[str, ...]]:
    """Parsed ``Select`` + touched tables, memoized per SQL text.

    The cache is keyed by the query text — exactly the key the dedup
    cache already clusters by — so re-parsing the same SELECT for every
    occurrence across groups and shards is pure waste.  Non-SELECT text
    raises (and is never cached: ``lru_cache`` does not cache raises).
    """
    stmt = parse_sql(sql)
    if not isinstance(stmt, Select):
        raise ValueError("dedup cache only handles SELECT")
    return stmt, tuple(tables_touched(stmt))


class QueryDedup:
    """Per-group SELECT result cache keyed by (SQL text, version window)."""

    def __init__(self, vdb: VersionedDB):
        self._vdb = vdb
        # sql text -> parallel sorted lists of timestamps and results.
        self._ts: dict[str, list[int]] = {}
        self._results: dict[str, list[StmtResult]] = {}
        self.hits = 0
        self.misses = 0

    def select(self, sql: str, ts: int) -> StmtResult:
        """Result of ``sql`` at version ``ts``, reusing a neighbouring
        execution when no intervening table writes exist."""
        stmt, tables = _parsed_select(sql)
        ts_list = self._ts.get(sql)
        if ts_list:
            position = bisect.bisect_left(ts_list, ts)
            # Exact hit.
            if position < len(ts_list) and ts_list[position] == ts:
                self.hits += 1
                return self._results[sql][position]
            # Earlier neighbour: reuse if no writes in (neighbour_ts, ts].
            if position > 0:
                neighbour_ts = ts_list[position - 1]
                if not any(
                    self._vdb.writes_between(table, neighbour_ts, ts)
                    for table in tables
                ):
                    self.hits += 1
                    return self._results[sql][position - 1]
            # Later neighbour: reuse if no writes in (ts, neighbour_ts].
            if position < len(ts_list):
                neighbour_ts = ts_list[position]
                if not any(
                    self._vdb.writes_between(table, ts, neighbour_ts)
                    for table in tables
                ):
                    self.hits += 1
                    return self._results[sql][position]
        self.misses += 1
        result = self._vdb.do_select(stmt, ts)
        if ts_list is None:
            self._ts[sql] = [ts]
            self._results[sql] = [result]
        else:
            position = bisect.bisect_left(ts_list, ts)
            ts_list.insert(position, ts)
            self._results[sql].insert(position, result)
        return result
