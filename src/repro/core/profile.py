"""Per-group (n, α, ℓ) profiles captured during an audit.

Every audited control-flow group already yields the triple the paper's
cost model is built on — ``n`` (requests in the group), ``α`` (the
deduplication fraction: ``1 - multivalent_steps / steps``), and ``ℓ``
(re-executed steps) — as ``stats["group_alphas"]``.  This module turns
those triples into a stable JSON profile document: the scenario
factory emits one per synthesized bundle, and a future size-aware
chunk scheduler consumes them as its training/planning input
(ROADMAP: the factory doubles as the profile source).
"""

from __future__ import annotations

from typing import Mapping

PROFILE_FORMAT = "ssco-group-profile"
PROFILE_VERSION = 1


def group_profile(stats: Mapping, meta: Mapping | None = None) -> dict:
    """Build the profile document from merged audit ``stats``.

    ``meta`` (workload name, scale, seed, ...) is carried through
    verbatim under ``"source"``; the triples are kept in audit order so
    a profile is reproducible byte-for-byte from the same bundle.
    """
    triples = [
        [int(n), round(float(alpha), 6), int(ell)]
        for n, alpha, ell in stats.get("group_alphas", [])
    ]
    requests = sum(t[0] for t in triples)
    steps = sum(t[2] for t in triples)
    profile: dict = {
        "profile": PROFILE_FORMAT,
        "version": PROFILE_VERSION,
        "groups": len(triples),
        "requests": requests,
        "n_alpha_ell": triples,
        "summary": summarize_triples(triples),
        "source": dict(meta) if meta else {},
    }
    profile["summary"]["steps"] = steps
    return profile


def summarize_triples(triples: list[list]) -> dict:
    """Aggregate moments a scheduler can use without the full list."""
    if not triples:
        return {
            "mean_n": 0.0, "max_n": 0, "mean_alpha": 0.0,
            "mean_ell": 0.0, "max_ell": 0, "singleton_fraction": 0.0,
        }
    count = len(triples)
    singletons = sum(1 for n, _, _ in triples if n == 1)
    # α averaged over *requests*, not groups: a thousand-request group
    # with high dedup should dominate a thousand singletons.
    weighted_alpha = sum(n * alpha for n, alpha, _ in triples)
    total_n = sum(n for n, _, _ in triples)
    return {
        "mean_n": round(total_n / count, 6),
        "max_n": max(n for n, _, _ in triples),
        "mean_alpha": round(
            weighted_alpha / total_n if total_n else 0.0, 6
        ),
        "mean_ell": round(
            sum(ell for _, _, ell in triples) / count, 6
        ),
        "max_ell": max(ell for _, _, ell in triples),
        "singleton_fraction": round(singletons / count, 6),
    }
