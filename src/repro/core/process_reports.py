"""ProcessOpReports (Figure 5): consistent ordering verification.

Builds the audit graph G with three kinds of edges —

* time-precedence edges from the trace (via the Figure 6 frontier
  algorithm, then SplitNodes);
* program-order edges (AddProgramEdges);
* alleged log-order edges (AddStateEdges);

— validates the logs against the op-count reports while building the OpMap
(CheckLogs), and rejects if G has a cycle: a cycle means no schedule can
order all events consistently with the trace and the alleged operations
(the Figure 4 examples).
"""

from __future__ import annotations


from repro.common.errors import AuditReject, RejectReason
from repro.core.graph import Graph, OPNUM_INF
from repro.core.opmap import OpMap
from repro.core.timeprec import (
    TimePrecedenceGraph,
    create_time_precedence_graph,
)
from repro.server.reports import Reports
from repro.trace.trace import Trace


def split_nodes(gtr: TimePrecedenceGraph) -> Graph:
    """SplitNodes (Figure 5, lines 14-19): each request becomes an arrival
    node (rid, 0) and a departure node (rid, ∞); GTr's edges become
    (r1, ∞) -> (r2, 0)."""
    graph = Graph()
    for rid in gtr.nodes:
        graph.add_node((rid, 0))
        graph.add_node((rid, OPNUM_INF))
    for child, parents in gtr.parents.items():
        for parent in parents:
            graph.add_edge((parent, OPNUM_INF), (child, 0))
    return graph


def add_program_edges(
    graph: Graph, trace: Trace, op_counts: dict[str, int]
) -> None:
    """AddProgramEdges (Figure 5, lines 21-26): chain each request's
    alleged operations between its arrival and departure nodes."""
    for rid in trace.request_ids():
        count = op_counts.get(rid, 0)
        if count < 0:
            raise AuditReject(
                RejectReason.LOG_BAD_OPNUM, f"negative op count for {rid}"
            )
        previous = (rid, 0)
        for opnum in range(1, count + 1):
            node = (rid, opnum)
            graph.add_edge(previous, node)
            previous = node
        graph.add_edge(previous, (rid, OPNUM_INF))


def check_logs(trace: Trace, reports: Reports) -> OpMap:
    """CheckLogs (Figure 5, lines 28-42): validate log entries against the
    trace and the op counts; build the OpMap; ensure the logs cover exactly
    the claimed operations."""
    trace_rids = set(trace.request_ids())
    op_counts = reports.op_counts
    opmap = OpMap()
    for obj_name in sorted(reports.op_logs):
        log = reports.op_logs[obj_name]
        for position, record in enumerate(log):
            seq = position + 1
            if record.rid not in trace_rids:
                raise AuditReject(
                    RejectReason.LOG_UNKNOWN_RID,
                    f"log {obj_name}[{seq}] names unknown request "
                    f"{record.rid!r}",
                )
            if record.opnum <= 0:
                raise AuditReject(
                    RejectReason.LOG_BAD_OPNUM,
                    f"log {obj_name}[{seq}] has opnum {record.opnum}",
                )
            if record.opnum > op_counts.get(record.rid, 0):
                raise AuditReject(
                    RejectReason.LOG_BAD_OPNUM,
                    f"log {obj_name}[{seq}] opnum {record.opnum} exceeds "
                    f"M({record.rid}) = {op_counts.get(record.rid, 0)}",
                )
            if (record.rid, record.opnum) in opmap:
                raise AuditReject(
                    RejectReason.LOG_DUPLICATE_OP,
                    f"operation ({record.rid}, {record.opnum}) appears in "
                    "two log positions",
                )
            opmap.insert(record.rid, record.opnum, obj_name, seq)
    for rid in trace_rids:
        for opnum in range(1, op_counts.get(rid, 0) + 1):
            if (rid, opnum) not in opmap:
                raise AuditReject(
                    RejectReason.LOG_MISSING_OP,
                    f"operation ({rid}, {opnum}) is claimed by M but "
                    "appears in no log",
                )
    return opmap


def add_state_edges(graph: Graph, reports: Reports) -> None:
    """AddStateEdges (Figure 5, lines 44-54): adjacent log entries from
    different requests are ordered; same-request entries must have
    non-decreasing opnums (program order already covers their edge)."""
    for obj_name in sorted(reports.op_logs):
        log = reports.op_logs[obj_name]
        for position in range(1, len(log)):
            previous = log[position - 1]
            current = log[position]
            if previous.rid != current.rid:
                graph.add_edge(
                    (previous.rid, previous.opnum),
                    (current.rid, current.opnum),
                )
            elif previous.opnum > current.opnum:
                raise AuditReject(
                    RejectReason.LOG_OPNUM_NOT_INCREASING,
                    f"log {obj_name}[{position + 1}]: opnum regressed for "
                    f"request {current.rid}",
                )


def process_op_reports(
    trace: Trace, reports: Reports
) -> tuple[Graph, OpMap]:
    """ProcessOpReports (Figure 5, lines 2-12).

    Returns (G, OpMap) or raises :class:`AuditReject`.
    """
    gtr = create_time_precedence_graph(trace)
    graph = split_nodes(gtr)
    add_program_edges(graph, trace, reports.op_counts)
    opmap = check_logs(trace, reports)
    add_state_edges(graph, reports)
    if graph.has_cycle():
        raise AuditReject(
            RejectReason.ORDERING_CYCLE,
            "events cannot be consistently ordered",
        )
    return graph, opmap
