"""The top-level verifier: SSCO_AUDIT2 (Figure 12).

Pipeline::

    check_balanced      (Section 3: balanced trace, unique requestIDs)
    validate nondet     (Section 4.6 plausibility checks)
    ProcessOpReports    (Figure 5: ordering + OpMap)           } ProcOpRep
    kv.Build / db.Build (Figure 12 lines 5-6: versioned redo)  } DB redo
    ReExec2             (grouped SIMD-on-demand + simulate-and-check)
    output comparison   (Figure 12 lines 55-57)

The phase timers feed the Figure 9 decomposition; the per-group
(n, α, ℓ) triples feed Figure 11; the dedup counters feed §5.2.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import AuditReject, RejectReason
from repro.core.ooo import _compare_externals, _compare_outputs
from repro.core.process_reports import process_op_reports
from repro.core.reexec import DEFAULT_MAX_GROUP, reexec_groups
from repro.core.nondet import validate_nondet_reports
from repro.core.simulate import SimContext
from repro.server.app import Application, InitialState
from repro.server.reports import Reports
from repro.trace.trace import Trace, check_balanced


@dataclass
class AuditResult:
    """Outcome of an SSCO audit, with instrumentation."""

    accepted: bool
    reason: Optional[RejectReason] = None
    detail: str = ""
    #: Phase wall-clock seconds: proc_op_reports, db_redo, reexec,
    #: db_query (subset of reexec), output_compare, total.
    phases: Dict[str, float] = field(default_factory=dict)
    #: groups, grouped_requests, fallback_requests, dedup hits/misses,
    #: steps, multi_steps, db_queries_issued, versioned sizes ...
    stats: Dict[str, object] = field(default_factory=dict)
    produced: Dict[str, str] = field(default_factory=dict)
    #: Post-audit compacted state (the next epoch's initial state), only
    #: populated on accept when ``migrate=True``.
    next_initial: Optional[InitialState] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.accepted


def ssco_audit(
    app: Application,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    strict: bool = True,
    dedup: bool = True,
    collapse: bool = True,
    strict_registers: bool = False,
    max_group_size: int = DEFAULT_MAX_GROUP,
    migrate: bool = False,
) -> AuditResult:
    """Run the full audit; never raises :class:`AuditReject`.

    Args:
        app: the program (scripts + object configuration) — trusted.
        trace: the collector's trace — trusted to be accurate.
        reports: the executor's reports — untrusted.
        initial_state: shared-object state at epoch start — trusted
            (kept by the verifier; §4.1).
        strict: reject on control-flow divergence within a group (the
            paper's Figure 12 line 39) instead of retrying per-request.
        dedup: enable read-query deduplication (§4.5).
        collapse: enable multivalue collapse (§4.3) — ablation hook.
        strict_registers: reject register reads with no logged write and
            no initial value (the paper's literal SimOp).
        max_group_size: chunk groups beyond this size (§4.7).
        migrate: on accept, compact the versioned store into the next
            epoch's initial state (§4.5 migration).
    """
    result = AuditResult(accepted=False)
    total_start = _time.perf_counter()
    ctx: Optional[SimContext] = None
    try:
        check_balanced(trace)
        validate_nondet_reports(reports)

        t0 = _time.perf_counter()
        graph, opmap = process_op_reports(trace, reports)
        result.phases["proc_op_reports"] = _time.perf_counter() - t0
        result.stats["graph_nodes"] = graph.node_count()
        result.stats["graph_edges"] = graph.edge_count()

        ctx = SimContext(app, reports, opmap, initial_state,
                         strict_registers)
        t0 = _time.perf_counter()
        ctx.build_versioned_stores()
        result.phases["db_redo"] = _time.perf_counter() - t0

        t0 = _time.perf_counter()
        produced = reexec_groups(
            app, trace, reports, ctx,
            strict=strict, dedup=dedup, collapse=collapse,
            max_group_size=max_group_size,
        )
        result.phases["reexec"] = _time.perf_counter() - t0
        result.phases["db_query"] = ctx.db_query_seconds

        t0 = _time.perf_counter()
        _compare_outputs(trace, produced)
        _compare_externals(trace, ctx)
        result.phases["output_compare"] = _time.perf_counter() - t0

        result.produced = produced
        result.accepted = True
        if migrate:
            vdb = ctx.vdb[app.db_name]
            vkv = ctx.vkv[app.kv_name]
            registers = dict(initial_state.registers)
            registers.update(_final_registers(reports))
            kv_state = dict(initial_state.kv)
            kv_state.update(vkv.latest_state())
            result.next_initial = InitialState(
                vdb.latest_engine(), kv_state, registers
            )
    except AuditReject as reject:
        result.accepted = False
        result.reason = reject.reason
        result.detail = reject.detail
    finally:
        result.phases["total"] = _time.perf_counter() - total_start
        if ctx is not None:
            result.stats.update(
                {
                    "db_queries_issued": ctx.db_queries_issued,
                    "dedup_hits": ctx.dedup_hits,
                    "dedup_misses": ctx.dedup_misses,
                }
            )
            vdb = ctx.vdb.get(app.db_name)
            if vdb is not None:
                result.stats["versioned_db_bytes"] = vdb.size_bytes()
                result.stats["versioned_db_versions"] = vdb.version_count()
                result.stats["redo_statements"] = vdb.redo_statements
            stats = getattr(ctx, "reexec_stats", None)
            if stats is not None:
                result.stats.update(
                    {
                        "groups": stats.groups,
                        "grouped_requests": stats.grouped_requests,
                        "fallback_requests": stats.fallback_requests,
                        "divergences": stats.divergences,
                        "steps": stats.steps,
                        "multi_steps": stats.multi_steps,
                        "group_alphas": stats.group_alphas,
                    }
                )
    return result


def _final_registers(reports: Reports) -> Dict[str, object]:
    """Last written value of every register appearing in the logs."""
    final: Dict[str, object] = {}
    from repro.objects.base import OpType

    for obj_name, log in reports.op_logs.items():
        if not obj_name.startswith("reg:"):
            continue
        for record in log:
            if record.optype is OpType.REGISTER_WRITE:
                final[obj_name] = record.opcontents[0]
    return final
