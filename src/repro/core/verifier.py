"""The top-level verifier: SSCO_AUDIT2 (Figure 12).

Pipeline::

    check_balanced      (Section 3: balanced trace, unique requestIDs)
    validate nondet     (Section 4.6 plausibility checks)
    ProcessOpReports    (Figure 5: ordering + OpMap)           } ProcOpRep
    kv.Build / db.Build (Figure 12 lines 5-6: versioned redo)  } DB redo
    ReExec2             (grouped SIMD-on-demand + simulate-and-check)
    output comparison   (Figure 12 lines 55-57)

The phases are first-class objects since the :mod:`repro.core.pipeline`
refactor; :func:`ssco_audit` is the stable entry point, now a thin
wrapper over :func:`repro.core.pipeline.run_audit`.  The phase timers
feed the Figure 9 decomposition; the per-group (n, α, ℓ) triples feed
Figure 11; the dedup counters feed §5.2.

Scaling knobs (all default off, preserving the paper's serial audit):

* ``workers`` — fan group re-execution out over N worker processes;
* ``epoch_size`` / ``epoch_cuts`` — shard the audit at quiescent trace
  cuts and chain the shards through §4.5 state migration;
* ``epoch_workers`` — audit the epoch shards concurrently after a
  redo-only state precompute materializes each shard's initial state.
"""

from __future__ import annotations

from collections.abc import Sequence

# Re-exported for compatibility: AuditResult historically lived here.
from repro.core.pipeline import (  # noqa: F401
    AuditOptions,
    AuditResult,
    _final_registers,
    run_audit,
)
from repro.core.reexec import DEFAULT_MAX_GROUP, default_backend
from repro.server.app import Application, InitialState
from repro.server.reports import Reports
from repro.trace.trace import Trace


def ssco_audit(
    app: Application,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    strict: bool = True,
    dedup: bool = True,
    collapse: bool = True,
    strict_registers: bool = False,
    max_group_size: int = DEFAULT_MAX_GROUP,
    migrate: bool = False,
    workers: int = 1,
    epoch_size: int = 0,
    epoch_cuts: Sequence[int] | None = None,
    backend: str | None = None,
    plan_hints: bool = False,
    epoch_workers: int = 1,
    epoch_processes: bool = True,
    prepass_depth: int = 0,
    fleet_listen: str | None = None,
    fleet_min_workers: int = 0,
    fleet_task_timeout: float | None = None,
    fleet_redundancy: int = 1,
) -> AuditResult:
    """Run the full audit; never raises :class:`AuditReject`.

    Args:
        app: the program (scripts + object configuration) — trusted.
        trace: the collector's trace — trusted to be accurate.
        reports: the executor's reports — untrusted.
        initial_state: shared-object state at epoch start — trusted
            (kept by the verifier; §4.1).
        strict: reject on control-flow divergence within a group (the
            paper's Figure 12 line 39) instead of retrying per-request.
        dedup: enable read-query deduplication (§4.5).
        collapse: enable multivalue collapse (§4.3) — ablation hook.
        strict_registers: reject register reads with no logged write and
            no initial value (the paper's literal SimOp).
        max_group_size: chunk groups beyond this size (§4.7).
        migrate: on accept, compact the versioned store into the next
            epoch's initial state (§4.5 migration).
        workers: worker processes for group re-execution (<= 1: serial).
            Parallel audits produce bit-identical bodies, and identical
            verdicts on honest executions; the parallel planner
            subdivides large groups, which in *strict* mode can narrow
            the window in which a bogus grouping's internal divergence
            is observed (see :mod:`repro.core.reexec`).
        epoch_size: shard the audit at quiescent cuts every ~N requests
            (0 disables).  Shards chain through migrated state.
        epoch_cuts: explicit cut positions (event indexes, e.g. the
            executor's recorded epoch marks); overrides ``epoch_size``.
        backend: registered re-execution backend running each group
            chunk (``"accinterp"`` is the paper's accelerated
            interpreter, ``"interp"`` the plain per-request reference;
            see :func:`repro.core.reexec.register_reexec_backend`).
            ``None`` resolves ``REPRO_BACKEND`` at call time.
        plan_hints: consult the static analyzer's divergence-hazard
            report during chunk planning (non-strict audits only);
            never changes produced bodies or verdicts.
        epoch_workers: audit the epoch shards concurrently, this many
            at a time (<= 1 keeps the serial chain).  A redo-only
            state precompute materializes each shard's initial state
            first; verdicts, produced bodies, and per-shard stats are
            bit-identical to the serial chain (see
            :func:`repro.core.pipeline.sharded_audit`).  Only
            meaningful together with ``epoch_size``/``epoch_cuts``.
        epoch_processes: run whole epochs in worker *processes* on one
            persistent pool shared across the run (the default; see
            :mod:`repro.core.epochpool`).  ``False`` keeps the older
            thread-based epoch driver.  Results are bit-identical
            either way.
        prepass_depth: bound on in-flight primed epochs — how far the
            speculative prepass may run ahead of the slowest
            unfinished epoch audit (0 means ``2 * epoch_workers``).
        fleet_listen: listen for ``repro worker`` daemons on
            ``HOST:PORT`` and fan the epoch work units out to them
            (see :mod:`repro.fleet`); verdicts, bodies, and stats are
            bit-identical to the single-host run.
        fleet_min_workers: wait for this many registered workers
            before the first dispatch.
        fleet_task_timeout: per-epoch straggler deadline on a worker;
            past it the epoch is re-dispatched.
        fleet_redundancy: dispatch each epoch to this many workers and
            cross-check the verdicts (1 disables).

    For long-lived / incremental use, prefer the object API:
    ``Auditor(app, AuditConfig(...))`` (see :mod:`repro.core.auditor`) —
    this function is its one-shot equivalent and remains stable.
    """
    options = AuditOptions(
        strict=strict,
        dedup=dedup,
        collapse=collapse,
        strict_registers=strict_registers,
        max_group_size=max_group_size,
        migrate=migrate,
        workers=workers,
        epoch_size=epoch_size,
        epoch_cuts=epoch_cuts,
        backend=backend if backend is not None else default_backend(),
        plan_hints=plan_hints,
        epoch_workers=epoch_workers,
        epoch_processes=epoch_processes,
        prepass_depth=prepass_depth,
        fleet_listen=fleet_listen,
        fleet_min_workers=fleet_min_workers,
        fleet_task_timeout=fleet_task_timeout,
        fleet_redundancy=fleet_redundancy,
    )
    return run_audit(app, trace, reports, initial_state, options)
