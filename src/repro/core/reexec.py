"""ReExec2: grouped SIMD-on-demand re-execution (Figure 12, lines 29-53).

Re-executes the trace in control-flow groups according to the (untrusted)
groupings ``C``.  Each group runs once through the accelerated interpreter;
at every group state operation the driver loops over the group's requests
("for all rid in the group", line 43), applying CheckOp and — for reads —
SimOp via each request's :class:`~repro.core.simulate.OpHandler`.

Divergence policy:

* ``strict=True`` (the paper's Figure 12, line 39): control-flow
  divergence inside a group rejects the audit;
* ``strict=False``: divergence demotes the group to per-request
  re-execution (re-execution is idempotent, §3.1, so restarting is safe).

Unsupported-SIMD cases (:class:`MultivalueFallback`) and application
errors always demote, in both modes — they are implementation retry paths,
not verdicts (§4.3: acc-PHP "retries, by separately re-executing the
requests in sequence").

Groups larger than ``max_group_size`` are chunked, mirroring acc-PHP's
3,000-request group cap (§4.7).

Parallel driver (``workers > 1``): group chunks are embarrassingly
parallel — each chunk only *reads* the versioned stores, logs, and OpMap
and only *writes* its own produced bodies and counters — so
:func:`reexec_groups` can fan the chunk plan out over a
``ProcessPoolExecutor``.  On fork-capable platforms workers inherit the
parent's already-built simulation context copy-on-write (no pickling,
no per-worker redo); elsewhere each worker rebuilds it once from a
pickled payload.  The parent merges produced bodies, regenerated
externals, and :class:`ReExecStats` in submission order and surfaces
the *first* failure in that order.

Parallel/serial equivalence: produced bodies are identical by
construction (re-execution is idempotent per request and chunking is
invisible to it), and verdicts agree on every honest execution.  The
parallel planner *does* subdivide large single-script groups below
``max_group_size`` to spread them across workers — chunk granularity
was already an audit-configuration knob (§4.7's group cap), and every
CheckOp/SimOp/output check still runs per request, so subdivision never
weakens soundness; it only narrows the window in which a *strict-mode*
divergence of a bogus grouping is observed group-wide.

Pluggable backends: the re-execution engine that runs one chunk is a
registered component (:func:`register_reexec_backend`), selected by
name through ``AuditConfig.backend`` / ``ssco_audit(backend=...)``.
Two backends ship:

* ``"accinterp"`` (default) — the SIMD-on-demand grouped interpreter
  (:class:`~repro.accel.accinterp.AccInterpreter`), the paper's
  acceleration;
* ``"interp"`` — a reference backend that re-executes every request of
  the chunk individually through the plain :mod:`repro.lang.interp`
  interpreter.  Same simulate-and-check, same produced bodies and
  verdicts on honest executions; no SIMD batching (and therefore no
  in-group divergence detection — a bogus grouping is still caught by
  the per-request output checks).  It is the oracle the equivalence
  tests compare against and the template for future engines (bytecode,
  subinterpreters, remote workers).

Backends only replace the *re-execution engine*; chunk planning, the
process-pool fan-out, and result merging are shared.  A backend name is
what crosses the process boundary, so third-party backends registered
at import time work with both pool start methods.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import (
    AuditReject,
    DivergenceError,
    MultivalueFallback,
    RejectReason,
    WeblangError,
)
from repro.accel.accinterp import (
    AccInterpreter,
    GroupExternalIntent,
    GroupNondetIntent,
    GroupStateOpIntent,
)
from repro.trace.events import ExternalRequest
from repro.core.dedup import QueryDedup
from repro.core.ooo import execute_one
from repro.core.simulate import NondetCursor, OpHandler, SimContext
from repro.server.app import Application
from repro.server.reports import Reports
from repro.trace.trace import Trace

#: acc-PHP's group size cap (§4.7).
DEFAULT_MAX_GROUP = 3000

#: The stock re-execution backend (the paper's accelerated interpreter).
DEFAULT_BACKEND = "accinterp"


@dataclass
class ReExecStats:
    groups: int = 0
    grouped_requests: int = 0
    fallback_requests: int = 0
    divergences: int = 0
    steps: int = 0
    multi_steps: int = 0
    group_alphas: List[tuple] = field(default_factory=list)
    #: (n_c, alpha_c, ell_c) per group, for Figure 11.


# -- backend registry --------------------------------------------------------


class ReexecBackend:
    """One re-execution engine: runs a single chunk of a group.

    A backend is constructed per audit pass (and once per worker process
    in parallel mode) via its registered factory —
    ``factory(app, collapse=...)`` — and then driven chunk by chunk.
    :meth:`run_chunk` must apply every per-request check (CheckOp /
    SimOp via :class:`~repro.core.simulate.OpHandler`, nondet cursors,
    regenerated externals) and fill ``produced`` / ``stats``; it raises
    :class:`AuditReject` to fail the audit.
    """

    #: Registry key; set by subclasses.
    name = "?"

    def run_chunk(
        self,
        app: Application,
        rids: List[str],
        requests,
        reports: Reports,
        ctx: SimContext,
        strict: bool,
        dedup: bool,
        produced: Dict[str, str],
        stats: ReExecStats,
    ) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


#: name -> factory(app, collapse=...) -> ReexecBackend.
_BACKENDS: Dict[str, object] = {}


def register_reexec_backend(name: str, factory) -> None:
    """Register (or replace) a re-execution backend under ``name``.

    ``factory(app, collapse=...)`` must return an object with the
    :class:`ReexecBackend` interface.  The name becomes selectable via
    ``AuditConfig.backend``, ``ssco_audit(backend=...)``, and the CLI's
    ``--backend``; it must be importable-at-registration in worker
    processes too (register at module import time, not conditionally).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string: {name!r}")
    _BACKENDS[name] = factory


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def get_reexec_backend(name: str):
    """The factory registered under ``name``; raises :class:`ValueError`
    (naming the available backends) for unknown names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown re-exec backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        ) from None


def make_backend(name: str, app: Application, collapse: bool = True):
    """Instantiate the named backend for one audit pass."""
    return get_reexec_backend(name)(app, collapse=collapse)


class AccInterpBackend(ReexecBackend):
    """The paper's SIMD-on-demand grouped interpreter (§4.2-4.3)."""

    name = "accinterp"

    def __init__(self, app: Application, collapse: bool = True):
        self.acc = AccInterpreter(
            db_name=app.db_name,
            kv_name=app.kv_name,
            session_cookie=app.session_cookie,
            collapse_enabled=collapse,
        )

    def run_chunk(self, app, rids, requests, reports, ctx, strict, dedup,
                  produced, stats) -> None:
        _run_chunk(app, self.acc, rids, requests, reports, ctx, strict,
                   dedup, produced, stats)


class PlainInterpBackend(ReexecBackend):
    """Reference backend: per-request re-execution via the plain
    interpreter (no SIMD batching, no query dedup).

    Every simulate-and-check and output check still runs per request, so
    verdicts and produced bodies match the accelerated backend on honest
    executions; requests are accounted as ``fallback_requests``.  The
    mixed-script strict check is kept — a grouping that mixes scripts is
    bogus regardless of engine.
    """

    name = "interp"

    def __init__(self, app: Application, collapse: bool = True):
        del app, collapse  # per-request execution needs no shared engine

    def run_chunk(self, app, rids, requests, reports, ctx, strict, dedup,
                  produced, stats) -> None:
        stats.groups += 1
        scripts = {requests[rid].script for rid in rids}
        if len(scripts) > 1 and strict:
            raise AuditReject(
                RejectReason.GROUP_DIVERGED,
                f"group mixes scripts {sorted(scripts)}",
            )
        _fallback(app, rids, requests, ctx, produced, stats)


register_reexec_backend(AccInterpBackend.name, AccInterpBackend)
register_reexec_backend(PlainInterpBackend.name, PlainInterpBackend)


#: Parallel planning: aim for this many chunks per worker (load
#: balancing headroom) without dropping below this chunk size (SIMD
#: batching is what makes grouped re-execution fast in the first place).
_CHUNKS_PER_WORKER = 4
_MIN_PARALLEL_CHUNK = 32


def plan_chunks(
    reports: Reports,
    requests: Dict[str, object],
    max_group_size: int = DEFAULT_MAX_GROUP,
    workers: int = 1,
) -> List[List[str]]:
    """The deterministic chunk plan the drivers execute.

    Groups are visited in sorted-tag order; duplicate rids within one
    group are dropped (re-execution is idempotent, but duplicate slots
    would double-consume nondet cursors); oversized groups are chunked
    at ``max_group_size`` (§4.7).  With ``workers > 1``, single-script
    groups are further subdivided toward ``workers *
    _CHUNKS_PER_WORKER`` chunks overall so one dominant group does not
    serialize the pool (mixed-script groups keep the serial chunking —
    their group-wide strict check must see them whole).  Raises
    :class:`AuditReject` when a grouping names a request outside the
    trace.
    """
    groups: List[List[str]] = []
    grouped_total = 0
    for tag in sorted(reports.groups):
        rids_raw = reports.groups[tag]
        seen = set()
        rids: List[str] = []
        for rid in rids_raw:
            if rid not in seen:
                seen.add(rid)
                rids.append(rid)
        for rid in rids:
            if rid not in requests:
                raise AuditReject(
                    RejectReason.GROUP_UNKNOWN_RID,
                    f"grouping names unknown request {rid!r}",
                )
        groups.append(rids)
        grouped_total += len(rids)

    parallel_chunk = max_group_size
    if workers > 1 and grouped_total:
        target = workers * _CHUNKS_PER_WORKER
        parallel_chunk = max(
            _MIN_PARALLEL_CHUNK, -(-grouped_total // target)
        )
    chunks: List[List[str]] = []
    for rids in groups:
        chunk_size = max_group_size
        if parallel_chunk < chunk_size and len(
            {requests[rid].script for rid in rids}
        ) == 1:
            chunk_size = parallel_chunk
        for start in range(0, len(rids), chunk_size):
            chunks.append(rids[start : start + chunk_size])
    return chunks


def reexec_groups(
    app: Application,
    trace: Trace,
    reports: Reports,
    ctx: SimContext,
    strict: bool = True,
    dedup: bool = True,
    collapse: bool = True,
    max_group_size: int = DEFAULT_MAX_GROUP,
    workers: int = 1,
    backend: str = DEFAULT_BACKEND,
) -> Dict[str, str]:
    """Re-execute all groups; returns rid -> produced body.

    ``workers > 1`` fans the chunk plan out over a process pool; the
    serial path is preserved verbatim for ``workers <= 1``.  ``backend``
    names the registered re-execution engine that runs each chunk.
    Raises :class:`AuditReject` on any failed check.
    """
    requests = trace.requests()
    chunks = plan_chunks(reports, requests, max_group_size, workers)
    if workers > 1 and len(chunks) > 1:
        return _reexec_parallel(
            app, requests, reports, ctx, chunks, strict, dedup, collapse,
            workers, backend,
        )
    produced: Dict[str, str] = {}
    stats = ctx.reexec_stats = ReExecStats()
    engine = make_backend(backend, app, collapse)
    for chunk in chunks:
        engine.run_chunk(app, chunk, requests, reports, ctx, strict,
                         dedup, produced, stats)
    return produced


def _run_chunk(
    app: Application,
    acc: AccInterpreter,
    rids: List[str],
    requests,
    reports: Reports,
    ctx: SimContext,
    strict: bool,
    dedup: bool,
    produced: Dict[str, str],
    stats: ReExecStats,
) -> None:
    stats.groups += 1
    scripts = {requests[rid].script for rid in rids}
    if len(scripts) > 1:
        # Control flow includes the script identity; mixed groups can only
        # come from a bogus grouping report.
        if strict:
            raise AuditReject(
                RejectReason.GROUP_DIVERGED,
                f"group mixes scripts {sorted(scripts)}",
            )
        _fallback(app, rids, requests, ctx, produced, stats)
        return
    program = app.script(next(iter(scripts)))
    group_requests = [requests[rid] for rid in rids]
    for rid in rids:
        # A rid listed in several groups re-executes idempotently; its
        # regenerated externals must not accumulate across runs.
        ctx.produced_externals.pop(rid, None)
    handlers = {rid: OpHandler(ctx, rid) for rid in rids}
    cursors = {
        rid: NondetCursor(rid, reports.nondet.get(rid, [])) for rid in rids
    }
    vdb = ctx.vdb.get(app.db_name)
    ctx.dedup = QueryDedup(vdb) if (dedup and vdb is not None) else None
    try:
        gen = acc.run_group(program, group_requests)
        intent = next(gen)
        while True:
            if isinstance(intent, GroupStateOpIntent):
                results = [
                    handlers[rid].handle(
                        intent.kind, intent.objs[slot], intent.args[slot]
                    )
                    for slot, rid in enumerate(rids)
                ]
            elif isinstance(intent, GroupNondetIntent):
                results = [
                    cursors[rid].next(intent.func, intent.args[slot])
                    for slot, rid in enumerate(rids)
                ]
            elif isinstance(intent, GroupExternalIntent):
                for slot, rid in enumerate(rids):
                    ctx.produced_externals.setdefault(rid, []).append(
                        ExternalRequest(rid, intent.services[slot],
                                        intent.contents[slot])
                    )
                results = [True] * len(rids)
            else:  # pragma: no cover
                raise AuditReject(
                    RejectReason.UNEXPECTED_EVENT,
                    f"unknown group intent {intent!r}",
                )
            intent = gen.send(results)
    except StopIteration as stop:
        output = stop.value
        for slot, rid in enumerate(rids):
            handlers[rid].finish()
            produced[rid] = output.bodies[slot]
        stats.grouped_requests += len(rids)
        stats.steps += output.steps
        stats.multi_steps += output.multi_steps
        alpha = (
            1.0 - output.multi_steps / output.steps if output.steps else 1.0
        )
        stats.group_alphas.append((len(rids), alpha, output.steps))
    except DivergenceError as diverged:
        stats.divergences += 1
        if strict:
            raise AuditReject(RejectReason.GROUP_DIVERGED, diverged.detail)
        _fallback(app, rids, requests, ctx, produced, stats)
    except (MultivalueFallback, WeblangError):
        # Retry path (§4.3): not a verdict about the executor.
        _fallback(app, rids, requests, ctx, produced, stats)
    finally:
        ctx.dedup = None


# -- parallel driver ---------------------------------------------------------

#: Per-process simulation state, built once by the pool initializer.
_WORKER = None

#: Fork handoff: the parent parks its live state here just before
#: creating a fork-context pool; children inherit it copy-on-write, so
#: nothing is pickled and the versioned stores are not rebuilt.
_FORK_HANDOFF = None


class _WorkerState:
    """Everything one worker process needs to run chunks."""

    def __init__(self, app, requests, reports, ctx, strict, dedup,
                 collapse, backend=DEFAULT_BACKEND):
        self.app = app
        self.requests = requests
        self.reports = reports
        self.strict = strict
        self.dedup = dedup
        self.ctx = ctx
        self.engine = make_backend(backend, app, collapse)


def _worker_init_fork() -> None:
    """Pool initializer on fork platforms: adopt the inherited state."""
    global _WORKER
    (app, requests, reports, ctx, strict, dedup, collapse,
     backend) = _FORK_HANDOFF
    _WORKER = _WorkerState(app, requests, reports, ctx, strict, dedup,
                           collapse, backend)


def _worker_init_spawn(payload: bytes) -> None:
    """Pool initializer elsewhere: rebuild the context from a pickle
    (one versioned redo per worker, amortized over its chunks)."""
    global _WORKER
    (app, requests, reports, opmap, initial_state, strict_registers,
     strict, dedup, collapse, backend) = pickle.loads(payload)
    ctx = SimContext(app, reports, opmap, initial_state, strict_registers)
    ctx.build_versioned_stores()
    _WORKER = _WorkerState(app, requests, reports, ctx, strict, dedup,
                           collapse, backend)


def _worker_run_chunk(rids: List[str]) -> Tuple[bool, object]:
    """Run one chunk in the worker; returns (ok, outcome).

    On success the outcome carries the chunk's produced bodies,
    regenerated externals, stats, and counter deltas; on a failed check
    it carries the reject (reason, detail) — exceptions never cross the
    process boundary raw, so the parent controls failure ordering.
    """
    state = _WORKER
    ctx = state.ctx
    before = ctx.counter_snapshot()
    stats = ReExecStats()
    produced: Dict[str, str] = {}
    try:
        state.engine.run_chunk(state.app, rids, state.requests,
                               state.reports, ctx, state.strict,
                               state.dedup, produced, stats)
    except AuditReject as reject:
        return False, (reject.reason.value, reject.detail)
    externals = {
        rid: ctx.produced_externals.pop(rid)
        for rid in rids
        if rid in ctx.produced_externals
    }
    return True, (produced, externals, stats, ctx.counter_delta(before))


def _reexec_parallel(
    app: Application,
    requests,
    reports: Reports,
    ctx: SimContext,
    chunks: List[List[str]],
    strict: bool,
    dedup: bool,
    collapse: bool,
    workers: int,
    backend: str = DEFAULT_BACKEND,
) -> Dict[str, str]:
    """Fan the chunk plan out over a process pool and merge the results.

    Outcomes are merged in submission order, so the first failure the
    parent raises is the same failure the serial driver would raise.
    """
    global _FORK_HANDOFF
    produced: Dict[str, str] = {}
    stats = ctx.reexec_stats = ReExecStats()
    workers = min(workers, len(chunks))
    use_fork = "fork" in multiprocessing.get_all_start_methods()
    try:
        if use_fork:
            _FORK_HANDOFF = (app, requests, reports, ctx, strict, dedup,
                             collapse, backend)
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_worker_init_fork,
            )
        else:
            payload = pickle.dumps((
                app, requests, reports, ctx.opmap, ctx.initial,
                ctx.strict_registers, strict, dedup, collapse, backend,
            ))
            pool = ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init_spawn,
                initargs=(payload,),
            )
    except (OSError, ValueError, TypeError, AttributeError,
            pickle.PickleError):
        # No process support (or an unpicklable payload on a spawn
        # platform): stay serial — ssco_audit must never raise.
        _FORK_HANDOFF = None
        engine = make_backend(backend, app, collapse)
        for chunk in chunks:
            engine.run_chunk(app, chunk, requests, reports, ctx, strict,
                             dedup, produced, stats)
        return produced
    try:
        with pool:
            futures = [pool.submit(_worker_run_chunk, chunk)
                       for chunk in chunks]
            for future in futures:
                ok, outcome = future.result()
                if not ok:
                    reason_value, detail = outcome
                    raise AuditReject(RejectReason(reason_value), detail)
                chunk_produced, externals, chunk_stats, counters = outcome
                produced.update(chunk_produced)
                for rid, items in externals.items():
                    ctx.produced_externals[rid] = items
                _merge_stats(stats, chunk_stats)
                ctx.add_counters(counters)
    finally:
        _FORK_HANDOFF = None
    return produced


def _merge_stats(into: ReExecStats, delta: ReExecStats) -> None:
    into.groups += delta.groups
    into.grouped_requests += delta.grouped_requests
    into.fallback_requests += delta.fallback_requests
    into.divergences += delta.divergences
    into.steps += delta.steps
    into.multi_steps += delta.multi_steps
    into.group_alphas.extend(delta.group_alphas)


def _fallback(
    app: Application,
    rids: List[str],
    requests,
    ctx: SimContext,
    produced: Dict[str, str],
    stats: ReExecStats,
) -> None:
    """Re-execute each request of the group individually (fresh handlers:
    partial group progress is discarded; checks are idempotent reads)."""
    ctx.dedup = None
    for rid in rids:
        ctx.produced_externals.pop(rid, None)  # discard partial progress
        produced[rid] = execute_one(app, requests[rid], ctx)
        stats.fallback_requests += 1
