"""ReExec2: grouped SIMD-on-demand re-execution (Figure 12, lines 29-53).

Re-executes the trace in control-flow groups according to the (untrusted)
groupings ``C``.  Each group runs once through the accelerated interpreter;
at every group state operation the driver loops over the group's requests
("for all rid in the group", line 43), applying CheckOp and — for reads —
SimOp via each request's :class:`~repro.core.simulate.OpHandler`.

Divergence policy:

* ``strict=True`` (the paper's Figure 12, line 39): control-flow
  divergence inside a group rejects the audit;
* ``strict=False``: divergence demotes the group to per-request
  re-execution (re-execution is idempotent, §3.1, so restarting is safe).

Unsupported-SIMD cases (:class:`MultivalueFallback`) and application
errors always demote, in both modes — they are implementation retry paths,
not verdicts (§4.3: acc-PHP "retries, by separately re-executing the
requests in sequence").  So does divergence inside an ``error:<script>``
group: the executor groups errored requests by script, not by the path
taken before the error, so such groups diverge on honest executions.

Groups larger than ``max_group_size`` are chunked, mirroring acc-PHP's
3,000-request group cap (§4.7).

Parallel driver (``workers > 1``, or ``offload=True``): group chunks
are embarrassingly parallel — each chunk only *reads* the versioned
stores, logs, and OpMap and only *writes* its own produced bodies and
counters — so :func:`reexec_groups` can fan the chunk plan out over a
``ProcessPoolExecutor``.  On fork-capable platforms workers inherit the
parent's already-built simulation context copy-on-write (no pickling,
no per-worker redo); elsewhere each worker rebuilds it once from a
pickled payload.  The parent merges produced bodies, regenerated
externals, and :class:`ReExecStats` in submission order and surfaces
the *first* failure in that order.

The driver is safe to run concurrently from several threads of one
process (pipelined audit sessions, the concurrent epoch driver): each
pool receives its state explicitly through its initializer arguments —
for fork pools these are handed over in-memory, never pickled — and
pool creation plus chunk submission (the moments worker processes are
actually forked/spawned) are serialized under a module lock, so two
drivers can never interleave their handoffs.  A worker killed
mid-chunk (``BrokenProcessPool``) is not a verdict: the driver re-runs
the lost chunks serially in the parent — infrastructure failures never
escape ``ssco_audit``.

Parallel/serial equivalence: produced bodies are identical by
construction (re-execution is idempotent per request and chunking is
invisible to it), and verdicts agree on every honest execution.  The
parallel planner *does* subdivide large single-script groups below
``max_group_size`` to spread them across workers — chunk granularity
was already an audit-configuration knob (§4.7's group cap), and every
CheckOp/SimOp/output check still runs per request, so subdivision never
weakens soundness; it only narrows the window in which a *strict-mode*
divergence of a bogus grouping is observed group-wide.

Pluggable backends: the re-execution engine that runs one chunk is a
registered component (:func:`register_reexec_backend`), selected by
name through ``AuditConfig.backend`` / ``ssco_audit(backend=...)``.
Four backends ship:

* ``"accinterp"`` (default) — the SIMD-on-demand grouped interpreter
  (:class:`~repro.accel.accinterp.AccInterpreter`), the paper's
  acceleration;
* ``"interp"`` — a reference backend that re-executes every request of
  the chunk individually through the plain :mod:`repro.lang.interp`
  interpreter.  Same simulate-and-check, same produced bodies and
  verdicts on honest executions; no SIMD batching (and therefore no
  in-group divergence detection — a bogus grouping is still caught by
  the per-request output checks).  It is the oracle the equivalence
  tests compare against and the template for future engines (bytecode,
  subinterpreters, remote workers);
* ``"compinterp"`` — the compiling engine (:mod:`repro.lang.compile`):
  same per-request discipline as ``"interp"``, but each script's AST is
  compiled to closure chains once per process and cached, so repeated
  re-execution pays no per-node dispatch;
* ``"hybrid"`` — ``accinterp`` for genuine groups, ``compinterp`` for
  the per-request paths (singleton groups and demotions), so the
  workload's grouped fraction gets SIMD and its ungrouped fraction gets
  compiled dispatch.

Backends only replace the *re-execution engine*; chunk planning, the
process-pool fan-out, and result merging are shared.  A backend name is
what crosses the process boundary, so third-party backends registered
at import time work with both pool start methods.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.common.errors import (
    AuditReject,
    DivergenceError,
    MultivalueFallback,
    RejectReason,
    WeblangError,
)
from repro.accel.accinterp import (
    AccInterpreter,
    GroupExternalIntent,
    GroupNondetIntent,
    GroupStateOpIntent,
)
from repro.lang.analysis import divergence_hazards
from repro.lang.compile import CompInterpreter
from repro.trace.events import ExternalRequest
from repro.core.dedup import QueryDedup
from repro.core.ooo import execute_one
from repro.core.simulate import NondetCursor, OpHandler, SimContext
from repro.server.app import Application
from repro.server.reports import Reports
from repro.trace.trace import Trace

#: acc-PHP's group size cap (§4.7).
DEFAULT_MAX_GROUP = 3000

#: The stock re-execution backend (the paper's accelerated interpreter).
_FALLBACK_BACKEND = "accinterp"


def default_backend() -> str:
    """The process-wide default re-execution backend.

    ``REPRO_BACKEND`` overrides it and is read *at call time*, so
    subprocess tests and CI matrix steps that set the variable after
    this module is imported are honored.  Every seam that used to bake
    the default in (function defaults, ``AuditConfig`` fields, worker
    initializers) now passes ``backend=None`` and resolves it here.  An
    unknown name fails with the registry's clean "unknown re-exec
    backend" error on first use.
    """
    return os.environ.get("REPRO_BACKEND", _FALLBACK_BACKEND)


#: Deprecated alias: the env var as read at import time.  Kept for
#: callers that imported the old constant; new code should call
#: :func:`default_backend` (or pass ``backend=None``) so late changes to
#: ``REPRO_BACKEND`` are honored.
DEFAULT_BACKEND = os.environ.get("REPRO_BACKEND", _FALLBACK_BACKEND)


@dataclass
class ReExecStats:
    groups: int = 0
    grouped_requests: int = 0
    fallback_requests: int = 0
    divergences: int = 0
    steps: int = 0
    multi_steps: int = 0
    group_alphas: list[tuple] = field(default_factory=list)
    #: (n_c, alpha_c, ell_c) per group, for Figure 11.


# -- backend registry --------------------------------------------------------


class ReexecBackend:
    """One re-execution engine: runs a single chunk of a group.

    A backend is constructed per audit pass (and once per worker process
    in parallel mode) via its registered factory —
    ``factory(app, collapse=...)`` — and then driven chunk by chunk.
    :meth:`run_chunk` must apply every per-request check (CheckOp /
    SimOp via :class:`~repro.core.simulate.OpHandler`, nondet cursors,
    regenerated externals) and fill ``produced`` / ``stats``; it raises
    :class:`AuditReject` to fail the audit.
    """

    #: Registry key; set by subclasses.
    name = "?"

    def run_chunk(
        self,
        app: Application,
        rids: list[str],
        requests,
        reports: Reports,
        ctx: SimContext,
        strict: bool,
        dedup: bool,
        produced: dict[str, str],
        stats: ReExecStats,
    ) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


#: name -> factory(app, collapse=...) -> ReexecBackend.
_BACKENDS: dict[str, object] = {}


def register_reexec_backend(name: str, factory) -> None:
    """Register (or replace) a re-execution backend under ``name``.

    ``factory(app, collapse=...)`` must return an object with the
    :class:`ReexecBackend` interface.  The name becomes selectable via
    ``AuditConfig.backend``, ``ssco_audit(backend=...)``, and the CLI's
    ``--backend``; it must be importable-at-registration in worker
    processes too (register at module import time, not conditionally).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string: {name!r}")
    _BACKENDS[name] = factory


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def get_reexec_backend(name: str):
    """The factory registered under ``name``; raises :class:`ValueError`
    (naming the available backends) for unknown names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown re-exec backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        ) from None


def make_backend(name: str, app: Application, collapse: bool = True):
    """Instantiate the named backend for one audit pass."""
    return get_reexec_backend(name)(app, collapse=collapse)


class AccInterpBackend(ReexecBackend):
    """The paper's SIMD-on-demand grouped interpreter (§4.2-4.3)."""

    name = "accinterp"

    def __init__(self, app: Application, collapse: bool = True):
        self.acc = AccInterpreter(
            db_name=app.db_name,
            kv_name=app.kv_name,
            session_cookie=app.session_cookie,
            collapse_enabled=collapse,
        )

    def run_chunk(self, app, rids, requests, reports, ctx, strict, dedup,
                  produced, stats) -> None:
        _run_chunk(app, self.acc, rids, requests, reports, ctx, strict,
                   dedup, produced, stats)


class PlainInterpBackend(ReexecBackend):
    """Reference backend: per-request re-execution via the plain
    interpreter (no SIMD batching, no query dedup).

    Every simulate-and-check and output check still runs per request, so
    verdicts and produced bodies match the accelerated backend on honest
    executions; requests are accounted as ``fallback_requests``.  The
    mixed-script strict check is kept — a grouping that mixes scripts is
    bogus regardless of engine.
    """

    name = "interp"

    def __init__(self, app: Application, collapse: bool = True):
        del app, collapse  # per-request execution needs no shared engine

    def run_chunk(self, app, rids, requests, reports, ctx, strict, dedup,
                  produced, stats) -> None:
        stats.groups += 1
        scripts = {requests[rid].script for rid in rids}
        if len(scripts) > 1 and strict:
            raise AuditReject(
                RejectReason.GROUP_DIVERGED,
                f"group mixes scripts {sorted(scripts)}",
            )
        _fallback(app, rids, requests, ctx, produced, stats)


class CompInterpBackend(ReexecBackend):
    """Per-request re-execution through the compiling engine
    (:mod:`repro.lang.compile`).

    Same per-request simulate-and-check discipline as the ``interp``
    reference backend — and therefore bit-identical produced bodies,
    verdicts, and stats accounting — but each script's AST is compiled
    to closure chains once per process and reused across every chunk,
    group, and epoch (the compile cache is keyed by program identity,
    so pool workers compile on first use after unpickling the app)."""

    name = "compinterp"

    def __init__(self, app: Application, collapse: bool = True):
        del collapse  # per-request execution has no SIMD to collapse
        self.interp = CompInterpreter(
            db_name=app.db_name,
            kv_name=app.kv_name,
            session_cookie=app.session_cookie,
            record_flow=False,
        )

    def run_chunk(self, app, rids, requests, reports, ctx, strict, dedup,
                  produced, stats) -> None:
        stats.groups += 1
        scripts = {requests[rid].script for rid in rids}
        if len(scripts) > 1 and strict:
            raise AuditReject(
                RejectReason.GROUP_DIVERGED,
                f"group mixes scripts {sorted(scripts)}",
            )
        ctx.dedup = None
        for rid in rids:
            ctx.produced_externals.pop(rid, None)
            produced[rid] = execute_one(app, requests[rid], ctx,
                                        interp=self.interp)
            stats.fallback_requests += 1


class HybridBackend(ReexecBackend):
    """SIMD-on-demand for real groups, the compiling engine for
    everything that runs per request anyway.

    Singleton groups gain nothing from SIMD batching (every step is a
    multi-step of width one), and demoted groups re-execute per request
    by definition — both paths go through the compiled closure chains
    instead of the tree-walking interpreter, while genuine groups keep
    the accelerated interpreter.  Produced bodies and verdicts match
    ``accinterp`` on honest executions; accounting differs only where
    the engines do (singletons count as ``fallback_requests``)."""

    name = "hybrid"

    def __init__(self, app: Application, collapse: bool = True):
        self.acc = AccInterpreter(
            db_name=app.db_name,
            kv_name=app.kv_name,
            session_cookie=app.session_cookie,
            collapse_enabled=collapse,
        )
        self.comp = CompInterpreter(
            db_name=app.db_name,
            kv_name=app.kv_name,
            session_cookie=app.session_cookie,
            record_flow=False,
        )

    def run_chunk(self, app, rids, requests, reports, ctx, strict, dedup,
                  produced, stats) -> None:
        if len(rids) == 1:
            stats.groups += 1
            ctx.dedup = None
            rid = rids[0]
            ctx.produced_externals.pop(rid, None)
            produced[rid] = execute_one(app, requests[rid], ctx,
                                        interp=self.comp)
            stats.fallback_requests += 1
            return
        _run_chunk(app, self.acc, rids, requests, reports, ctx, strict,
                   dedup, produced, stats, interp=self.comp)


register_reexec_backend(AccInterpBackend.name, AccInterpBackend)
register_reexec_backend(PlainInterpBackend.name, PlainInterpBackend)
register_reexec_backend(CompInterpBackend.name, CompInterpBackend)
register_reexec_backend(HybridBackend.name, HybridBackend)


#: Parallel planning: aim for this many chunks per worker (load
#: balancing headroom) without dropping below this chunk size (SIMD
#: batching is what makes grouped re-execution fast in the first place).
_CHUNKS_PER_WORKER = 4
_MIN_PARALLEL_CHUNK = 32


def plan_chunks(
    reports: Reports,
    requests: dict[str, object],
    max_group_size: int = DEFAULT_MAX_GROUP,
    workers: int = 1,
    app: Application | None = None,
    plan_hints: bool = False,
    strict: bool = True,
) -> list[list[str]]:
    """The deterministic chunk plan the drivers execute.

    Groups are visited in sorted-tag order; duplicate rids within one
    group are dropped (re-execution is idempotent, but duplicate slots
    would double-consume nondet cursors); oversized groups are chunked
    at ``max_group_size`` (§4.7).  With ``workers > 1``, single-script
    groups are further subdivided toward ``workers *
    _CHUNKS_PER_WORKER`` chunks overall so one dominant group does not
    serialize the pool (mixed-script groups keep the serial chunking —
    their group-wide strict check must see them whole).  Raises
    :class:`AuditReject` when a grouping names a request outside the
    trace.

    With ``plan_hints`` enabled (and ``app`` provided), groups of
    scripts the static analyzer flags as divergence hazards
    (:func:`repro.lang.analysis.divergence_hazards`) are pre-demoted to
    singleton chunks: grouped SIMD re-execution of such scripts tends to
    diverge and restart per request anyway, so planning the demotion
    avoids the doomed group pass.  The hint only applies in non-strict
    mode — under ``strict`` a real divergence is a *verdict* (REJECT),
    and pre-demotion would skip the group-wide check that produces it.
    Produced bodies and verdicts are unchanged either way (equivalence-
    tested); only the grouped/fallback accounting moves.
    """
    groups: list[list[str]] = []
    grouped_total = 0
    for tag in sorted(reports.groups):
        rids_raw = reports.groups[tag]
        seen = set()
        rids: list[str] = []
        for rid in rids_raw:
            if rid not in seen:
                seen.add(rid)
                rids.append(rid)
        for rid in rids:
            if rid not in requests:
                raise AuditReject(
                    RejectReason.GROUP_UNKNOWN_RID,
                    f"grouping names unknown request {rid!r}",
                )
        groups.append(rids)
        grouped_total += len(rids)

    hazards: frozenset = frozenset()
    if plan_hints and not strict and app is not None:
        hazards = divergence_hazards(app)

    parallel_chunk = max_group_size
    if workers > 1 and grouped_total:
        target = workers * _CHUNKS_PER_WORKER
        parallel_chunk = max(
            _MIN_PARALLEL_CHUNK, -(-grouped_total // target)
        )
    chunks: list[list[str]] = []
    for rids in groups:
        chunk_size = max_group_size
        scripts = {requests[rid].script for rid in rids}
        if len(scripts) == 1:
            if len(rids) > 1 and next(iter(scripts)) in hazards:
                # Hopeless group: pre-demote to singletons.
                chunks.extend([rid] for rid in rids)
                continue
            if parallel_chunk < chunk_size:
                chunk_size = parallel_chunk
        for start in range(0, len(rids), chunk_size):
            chunks.append(rids[start : start + chunk_size])
    return chunks


def reexec_groups(
    app: Application,
    trace: Trace,
    reports: Reports,
    ctx: SimContext,
    strict: bool = True,
    dedup: bool = True,
    collapse: bool = True,
    max_group_size: int = DEFAULT_MAX_GROUP,
    workers: int = 1,
    backend: str | None = None,
    offload: bool = False,
    inline: bool = False,
    plan_hints: bool = False,
) -> dict[str, str]:
    """Re-execute all groups; returns rid -> produced body.

    ``workers > 1`` fans the chunk plan out over a process pool; the
    serial path is preserved verbatim for ``workers <= 1``.  ``backend``
    names the registered re-execution engine that runs each chunk
    (``None`` resolves :func:`default_backend` at call time);
    ``plan_hints`` lets the chunk plan consult the static analyzer's
    divergence hazards (see :func:`plan_chunks`; non-strict mode only).
    ``offload=True`` routes the chunks through the worker pool even when
    ``workers == 1`` — the chunk *plan* stays the serial one, so
    produced bodies, verdicts, and deterministic stats are unchanged;
    only the re-execution CPU moves to a worker process (the concurrent
    epoch driver uses this to run epochs off the GIL).  ``inline=True``
    is the converse: keep the (possibly parallel-shaped, ``workers``-
    sized) chunk plan but execute it serially in this process, never
    creating a pool — the process-level epoch driver sets it inside its
    worker processes, where epoch parallelism already owns the cores
    and chunk-plan parity with the serial chain is what matters.
    Raises :class:`AuditReject` on any failed check.
    """
    backend = backend if backend is not None else default_backend()
    requests = trace.requests()
    chunks = plan_chunks(reports, requests, max_group_size, workers,
                         app=app, plan_hints=plan_hints, strict=strict)
    if chunks and not inline and (
            (workers > 1 and len(chunks) > 1) or offload):
        return _reexec_parallel(
            app, requests, reports, ctx, chunks, strict, dedup, collapse,
            workers, backend,
        )
    produced: dict[str, str] = {}
    stats = ctx.reexec_stats = ReExecStats()
    _run_chunks_serial(app, chunks, requests, reports, ctx, strict,
                       dedup, collapse, backend, produced, stats)
    return produced


def _run_chunks_serial(
    app: Application,
    chunks: list[list[str]],
    requests,
    reports: Reports,
    ctx: SimContext,
    strict: bool,
    dedup: bool,
    collapse: bool,
    backend: str,
    produced: dict[str, str],
    stats: ReExecStats,
) -> None:
    """The serial chunk loop (also the parallel driver's fallback)."""
    engine = make_backend(backend, app, collapse)
    for chunk in chunks:
        engine.run_chunk(app, chunk, requests, reports, ctx, strict,
                         dedup, produced, stats)


def _run_chunk(
    app: Application,
    acc: AccInterpreter,
    rids: list[str],
    requests,
    reports: Reports,
    ctx: SimContext,
    strict: bool,
    dedup: bool,
    produced: dict[str, str],
    stats: ReExecStats,
    interp=None,
) -> None:
    stats.groups += 1
    scripts = {requests[rid].script for rid in rids}
    if len(scripts) > 1:
        # Control flow includes the script identity; mixed groups can only
        # come from a bogus grouping report.
        if strict:
            raise AuditReject(
                RejectReason.GROUP_DIVERGED,
                f"group mixes scripts {sorted(scripts)}",
            )
        _fallback(app, rids, requests, ctx, produced, stats, interp=interp)
        return
    program = app.script(next(iter(scripts)))
    group_requests = [requests[rid] for rid in rids]
    for rid in rids:
        # A rid listed in several groups re-executes idempotently; its
        # regenerated externals must not accumulate across runs.
        ctx.produced_externals.pop(rid, None)
    handlers = {rid: OpHandler(ctx, rid) for rid in rids}
    cursors = {
        rid: NondetCursor(rid, reports.nondet.get(rid, [])) for rid in rids
    }
    vdb = ctx.vdb.get(app.db_name)
    ctx.dedup = QueryDedup(vdb) if (dedup and vdb is not None) else None
    try:
        gen = acc.run_group(program, group_requests)
        intent = next(gen)
        while True:
            if isinstance(intent, GroupStateOpIntent):
                results = [
                    handlers[rid].handle(
                        intent.kind, intent.objs[slot], intent.args[slot]
                    )
                    for slot, rid in enumerate(rids)
                ]
            elif isinstance(intent, GroupNondetIntent):
                results = [
                    cursors[rid].next(intent.func, intent.args[slot])
                    for slot, rid in enumerate(rids)
                ]
            elif isinstance(intent, GroupExternalIntent):
                for slot, rid in enumerate(rids):
                    ctx.produced_externals.setdefault(rid, []).append(
                        ExternalRequest(rid, intent.services[slot],
                                        intent.contents[slot])
                    )
                results = [True] * len(rids)
            else:  # pragma: no cover
                raise AuditReject(
                    RejectReason.UNEXPECTED_EVENT,
                    f"unknown group intent {intent!r}",
                )
            intent = gen.send(results)
    except StopIteration as stop:
        output = stop.value
        for slot, rid in enumerate(rids):
            handlers[rid].finish()
            produced[rid] = output.bodies[slot]
        stats.grouped_requests += len(rids)
        stats.steps += output.steps
        stats.multi_steps += output.multi_steps
        alpha = (
            1.0 - output.multi_steps / output.steps if output.steps else 1.0
        )
        stats.group_alphas.append((len(rids), alpha, output.steps))
    except DivergenceError as diverged:
        stats.divergences += 1
        if strict and not _in_error_group(reports, rids[0]):
            raise AuditReject(
                RejectReason.GROUP_DIVERGED, diverged.detail
            ) from diverged
        _fallback(app, rids, requests, ctx, produced, stats, interp=interp)
    except (MultivalueFallback, WeblangError):
        # Retry path (§4.3): not a verdict about the executor.
        _fallback(app, rids, requests, ctx, produced, stats, interp=interp)
    finally:
        ctx.dedup = None


# -- parallel driver ---------------------------------------------------------

#: Per-process simulation state, built once by the pool initializer.
#: Worker processes are single-threaded, so this global is race-free
#: *inside* a worker; the parent process never sets it.
_WORKER = None

#: Serializes pool creation and chunk submission in the parent.  Worker
#: processes are forked/spawned lazily at submit time; without the lock,
#: two drivers running on different threads of one process (pipelined
#: sessions, concurrent epochs) could fork mid-way through each other's
#: setup.  Each pool's state travels explicitly via ``initargs`` — there
#: is no shared handoff global left to race on.
_POOL_LOCK = threading.Lock()


def available_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def fork_inherits_context() -> bool:
    """True when worker pools can inherit the parent's simulation
    context via fork (no pickling, no per-worker redo).  Callers use
    this to decide whether offloading serial re-exec to a worker
    process is free — on spawn platforms it would re-run the versioned
    redo per pool, which defeats the state precompute."""
    return _use_fork()


def _use_fork() -> bool:
    """Fork pools need the platform to support fork *and* the process
    default to still be fork (tests/CI force spawn to cover the
    pickled-payload path on fork-capable hosts)."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    return multiprocessing.get_start_method(allow_none=True) in (
        None, "fork")


class _WorkerState:
    """Everything one worker process needs to run chunks."""

    def __init__(self, app, requests, reports, ctx, strict, dedup,
                 collapse, backend=None):
        backend = backend if backend is not None else default_backend()
        self.app = app
        self.requests = requests
        self.reports = reports
        self.strict = strict
        self.dedup = dedup
        self.ctx = ctx
        self.engine = make_backend(backend, app, collapse)


def _worker_init_fork(state: tuple) -> None:
    """Pool initializer on fork platforms: adopt the parent's live state.

    The tuple arrives through ``initargs``, which fork-context children
    receive in-memory (no pickling, no per-worker redo) — each pool
    carries its own state, so concurrent pools cannot cross wires.
    """
    global _WORKER
    _WORKER = _WorkerState(*state)


def _worker_init_spawn(payload: bytes) -> None:
    """Pool initializer elsewhere: rebuild the context from a pickle
    (one versioned redo per worker, amortized over its chunks)."""
    global _WORKER
    (app, requests, reports, opmap, initial_state, strict_registers,
     strict, dedup, collapse, backend) = pickle.loads(payload)
    ctx = SimContext(app, reports, opmap, initial_state, strict_registers)
    ctx.build_versioned_stores()
    _WORKER = _WorkerState(app, requests, reports, ctx, strict, dedup,
                           collapse, backend)


def _worker_run_chunk(rids: list[str]) -> tuple[bool, object]:
    """Run one chunk in the worker; returns (ok, outcome).

    On success the outcome carries the chunk's produced bodies,
    regenerated externals, stats, and counter deltas; on a failed check
    it carries the reject (reason, detail) plus the partial stats and
    counters the chunk accumulated before failing — exactly what the
    serial driver would have folded into the context before raising —
    so rejected parallel audits report the same stats as serial ones.
    Exceptions never cross the process boundary raw, so the parent
    controls failure ordering.
    """
    state = _WORKER
    ctx = state.ctx
    before = ctx.counter_snapshot()
    stats = ReExecStats()
    produced: dict[str, str] = {}
    try:
        state.engine.run_chunk(state.app, rids, state.requests,
                               state.reports, ctx, state.strict,
                               state.dedup, produced, stats)
    except AuditReject as reject:
        return False, (reject.reason.value, reject.detail, stats,
                       ctx.counter_delta(before))
    externals = {
        rid: ctx.produced_externals.pop(rid)
        for rid in rids
        if rid in ctx.produced_externals
    }
    return True, (produced, externals, stats, ctx.counter_delta(before))


def _make_pool(app, requests, reports, ctx, strict, dedup, collapse,
               backend, workers) -> ProcessPoolExecutor:
    """One process pool with its state bound explicitly via initargs."""
    if _use_fork():
        state = (app, requests, reports, ctx, strict, dedup, collapse,
                 backend)
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"),
            initializer=_worker_init_fork,
            initargs=(state,),
        )
    payload = pickle.dumps((
        app, requests, reports, ctx.opmap, ctx.initial,
        ctx.strict_registers, strict, dedup, collapse, backend,
    ))
    return ProcessPoolExecutor(
        max_workers=workers, initializer=_worker_init_spawn,
        initargs=(payload,),
    )


def _reexec_parallel(
    app: Application,
    requests,
    reports: Reports,
    ctx: SimContext,
    chunks: list[list[str]],
    strict: bool,
    dedup: bool,
    collapse: bool,
    workers: int,
    backend: str | None = None,
) -> dict[str, str]:
    """Fan the chunk plan out over a process pool and merge the results.

    Outcomes are merged in submission order, so the first failure the
    parent raises is the same failure the serial driver would raise.
    Infrastructure failures (no process support, a worker killed
    mid-chunk) degrade to serial re-execution of the affected chunks —
    they are never verdicts and never escape as exceptions.
    """
    backend = backend if backend is not None else default_backend()
    produced: dict[str, str] = {}
    stats = ctx.reexec_stats = ReExecStats()
    workers = max(1, min(workers, len(chunks)))
    pool = None
    futures: list = []
    with _POOL_LOCK:
        # Creation *and* submission run under the lock: worker processes
        # are forked/spawned lazily at submit time, and concurrent
        # drivers in one process must not interleave those forks.
        try:
            pool = _make_pool(app, requests, reports, ctx, strict, dedup,
                              collapse, backend, workers)
            futures = [pool.submit(_worker_run_chunk, chunk)
                       for chunk in chunks]
        except (OSError, ValueError, TypeError, AttributeError,
                pickle.PickleError, BrokenProcessPool):
            # No process support (an unpicklable payload on a spawn
            # platform, or workers dying during startup): stay serial —
            # ssco_audit must never raise.
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
            pool = None
    if pool is None:
        _run_chunks_serial(app, chunks, requests, reports, ctx, strict,
                           dedup, collapse, backend, produced, stats)
        return produced
    remaining: list[list[str]] = []
    try:
        for index, future in enumerate(futures):
            try:
                ok, outcome = future.result()
            except BrokenProcessPool:
                # A worker was killed mid-chunk; this chunk's result and
                # everything after it are lost.  Re-execution is
                # idempotent, so finish those chunks serially below.
                remaining = chunks[index:]
                break
            if not ok:
                reason_value, detail, chunk_stats, counters = outcome
                # Fold in the failing chunk's partial accounting first —
                # the serial driver mutates the context before raising.
                _merge_stats(stats, chunk_stats)
                ctx.add_counters(counters)
                raise AuditReject(RejectReason(reason_value), detail)
            chunk_produced, externals, chunk_stats, counters = outcome
            produced.update(chunk_produced)
            for rid, items in externals.items():
                ctx.produced_externals[rid] = items
            _merge_stats(stats, chunk_stats)
            ctx.add_counters(counters)
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    if remaining:
        _run_chunks_serial(app, remaining, requests, reports, ctx, strict,
                           dedup, collapse, backend, produced, stats)
    return produced


def _merge_stats(into: ReExecStats, delta: ReExecStats) -> None:
    into.groups += delta.groups
    into.grouped_requests += delta.grouped_requests
    into.fallback_requests += delta.fallback_requests
    into.divergences += delta.divergences
    into.steps += delta.steps
    into.multi_steps += delta.multi_steps
    into.group_alphas.extend(delta.group_alphas)


def _in_error_group(reports: Reports, rid: str) -> bool:
    """Whether ``rid`` was grouped under an ``error:<script>`` tag.

    The executor groups every errored request of a script under one
    ``error:`` flow tag regardless of the path taken before the error,
    so divergence inside such a group is expected on honest executions
    — it must demote (the same retry path application errors already
    take), never reject, even in strict mode.  A bogus ``error:`` label
    buys an attacker nothing: demotion re-executes per request with
    every output check intact.
    """
    for tag, rids in reports.groups.items():
        if tag.startswith("error:") and rid in rids:
            return True
    return False


def _fallback(
    app: Application,
    rids: list[str],
    requests,
    ctx: SimContext,
    produced: dict[str, str],
    stats: ReExecStats,
    interp=None,
) -> None:
    """Re-execute each request of the group individually (fresh handlers:
    partial group progress is discarded; checks are idempotent reads).
    ``interp`` swaps in another per-request engine (the hybrid backend
    passes its compiled-program runner)."""
    ctx.dedup = None
    for rid in rids:
        ctx.produced_externals.pop(rid, None)  # discard partial progress
        produced[rid] = execute_one(app, requests[rid], ctx, interp=interp)
        stats.fallback_requests += 1
