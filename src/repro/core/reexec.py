"""ReExec2: grouped SIMD-on-demand re-execution (Figure 12, lines 29-53).

Re-executes the trace in control-flow groups according to the (untrusted)
groupings ``C``.  Each group runs once through the accelerated interpreter;
at every group state operation the driver loops over the group's requests
("for all rid in the group", line 43), applying CheckOp and — for reads —
SimOp via each request's :class:`~repro.core.simulate.OpHandler`.

Divergence policy:

* ``strict=True`` (the paper's Figure 12, line 39): control-flow
  divergence inside a group rejects the audit;
* ``strict=False``: divergence demotes the group to per-request
  re-execution (re-execution is idempotent, §3.1, so restarting is safe).

Unsupported-SIMD cases (:class:`MultivalueFallback`) and application
errors always demote, in both modes — they are implementation retry paths,
not verdicts (§4.3: acc-PHP "retries, by separately re-executing the
requests in sequence").

Groups larger than ``max_group_size`` are chunked, mirroring acc-PHP's
3,000-request group cap (§4.7).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import (
    AuditReject,
    DivergenceError,
    MultivalueFallback,
    RejectReason,
    WeblangError,
)
from repro.accel.accinterp import (
    AccInterpreter,
    GroupExternalIntent,
    GroupNondetIntent,
    GroupStateOpIntent,
)
from repro.trace.events import ExternalRequest
from repro.core.dedup import QueryDedup
from repro.core.ooo import execute_one
from repro.core.simulate import NondetCursor, OpHandler, SimContext
from repro.server.app import Application
from repro.server.reports import Reports
from repro.trace.trace import Trace

#: acc-PHP's group size cap (§4.7).
DEFAULT_MAX_GROUP = 3000


@dataclass
class ReExecStats:
    groups: int = 0
    grouped_requests: int = 0
    fallback_requests: int = 0
    divergences: int = 0
    steps: int = 0
    multi_steps: int = 0
    group_alphas: List[tuple] = field(default_factory=list)
    #: (n_c, alpha_c, ell_c) per group, for Figure 11.


def reexec_groups(
    app: Application,
    trace: Trace,
    reports: Reports,
    ctx: SimContext,
    strict: bool = True,
    dedup: bool = True,
    collapse: bool = True,
    max_group_size: int = DEFAULT_MAX_GROUP,
) -> Dict[str, str]:
    """Re-execute all groups; returns rid -> produced body.

    Raises :class:`AuditReject` on any failed check.
    """
    requests = trace.requests()
    produced: Dict[str, str] = {}
    stats = ctx.reexec_stats = ReExecStats()
    acc = AccInterpreter(
        db_name=app.db_name,
        kv_name=app.kv_name,
        session_cookie=app.session_cookie,
        collapse_enabled=collapse,
    )
    for tag in sorted(reports.groups):
        rids_raw = reports.groups[tag]
        # Duplicate rids within one group would make the superposed
        # execution re-run the same request in two slots; re-execution is
        # idempotent, but the slots would double-consume nondet cursors.
        # Deduplicate, preserving first occurrence.
        seen = set()
        rids: List[str] = []
        for rid in rids_raw:
            if rid not in seen:
                seen.add(rid)
                rids.append(rid)
        for rid in rids:
            if rid not in requests:
                raise AuditReject(
                    RejectReason.GROUP_UNKNOWN_RID,
                    f"grouping names unknown request {rid!r}",
                )
        for start in range(0, len(rids), max_group_size):
            chunk = rids[start : start + max_group_size]
            _run_chunk(app, acc, chunk, requests, reports, ctx, strict,
                       dedup, produced, stats)
    return produced


def _run_chunk(
    app: Application,
    acc: AccInterpreter,
    rids: List[str],
    requests,
    reports: Reports,
    ctx: SimContext,
    strict: bool,
    dedup: bool,
    produced: Dict[str, str],
    stats: ReExecStats,
) -> None:
    stats.groups += 1
    scripts = {requests[rid].script for rid in rids}
    if len(scripts) > 1:
        # Control flow includes the script identity; mixed groups can only
        # come from a bogus grouping report.
        if strict:
            raise AuditReject(
                RejectReason.GROUP_DIVERGED,
                f"group mixes scripts {sorted(scripts)}",
            )
        _fallback(app, rids, requests, ctx, produced, stats)
        return
    program = app.script(next(iter(scripts)))
    group_requests = [requests[rid] for rid in rids]
    for rid in rids:
        # A rid listed in several groups re-executes idempotently; its
        # regenerated externals must not accumulate across runs.
        ctx.produced_externals.pop(rid, None)
    handlers = {rid: OpHandler(ctx, rid) for rid in rids}
    cursors = {
        rid: NondetCursor(rid, reports.nondet.get(rid, [])) for rid in rids
    }
    vdb = ctx.vdb.get(app.db_name)
    ctx.dedup = QueryDedup(vdb) if (dedup and vdb is not None) else None
    try:
        gen = acc.run_group(program, group_requests)
        intent = next(gen)
        while True:
            if isinstance(intent, GroupStateOpIntent):
                results = [
                    handlers[rid].handle(
                        intent.kind, intent.objs[slot], intent.args[slot]
                    )
                    for slot, rid in enumerate(rids)
                ]
            elif isinstance(intent, GroupNondetIntent):
                results = [
                    cursors[rid].next(intent.func, intent.args[slot])
                    for slot, rid in enumerate(rids)
                ]
            elif isinstance(intent, GroupExternalIntent):
                for slot, rid in enumerate(rids):
                    ctx.produced_externals.setdefault(rid, []).append(
                        ExternalRequest(rid, intent.services[slot],
                                        intent.contents[slot])
                    )
                results = [True] * len(rids)
            else:  # pragma: no cover
                raise AuditReject(
                    RejectReason.UNEXPECTED_EVENT,
                    f"unknown group intent {intent!r}",
                )
            intent = gen.send(results)
    except StopIteration as stop:
        output = stop.value
        for slot, rid in enumerate(rids):
            handlers[rid].finish()
            produced[rid] = output.bodies[slot]
        stats.grouped_requests += len(rids)
        stats.steps += output.steps
        stats.multi_steps += output.multi_steps
        alpha = (
            1.0 - output.multi_steps / output.steps if output.steps else 1.0
        )
        stats.group_alphas.append((len(rids), alpha, output.steps))
    except DivergenceError as diverged:
        stats.divergences += 1
        if strict:
            raise AuditReject(RejectReason.GROUP_DIVERGED, diverged.detail)
        _fallback(app, rids, requests, ctx, produced, stats)
    except (MultivalueFallback, WeblangError):
        # Retry path (§4.3): not a verdict about the executor.
        _fallback(app, rids, requests, ctx, produced, stats)
    finally:
        ctx.dedup = None


def _fallback(
    app: Application,
    rids: List[str],
    requests,
    ctx: SimContext,
    produced: Dict[str, str],
    stats: ReExecStats,
) -> None:
    """Re-execute each request of the group individually (fresh handlers:
    partial group progress is discarded; checks are idempotent reads)."""
    ctx.dedup = None
    for rid in rids:
        ctx.produced_externals.pop(rid, None)  # discard partial progress
        produced[rid] = execute_one(app, requests[rid], ctx)
        stats.fallback_requests += 1
