"""Time-precedence materialization (Section 3.5, Figure 6, §A.8).

``r1 <Tr r2`` iff the trace shows r1's response departing before r2's
request arrives (Lamport's precedes relation on intervals).  The verifier
needs a graph whose paths are exactly ``<Tr``, with as few edges as
possible (Lemma 12: the frontier algorithm is edge-optimal).

Three implementations:

* :func:`create_time_precedence_graph` — the paper's streaming frontier
  algorithm, O(X + Z) (Figure 6);
* :func:`baseline_time_precedence` — an Anderson-et-al.-style offline
  algorithm: O(X log X + Z) because it first sorts the events by timestamp
  (the streaming algorithm instead consumes the collector's arrival order);
  used by the E6 benchmark;
* :func:`naive_precedence_relation` — O(X²) ground truth for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.trace import Trace


@dataclass
class TimePrecedenceGraph:
    """GTr: request-level precedence edges (before node splitting)."""

    nodes: list[str] = field(default_factory=list)
    #: child rid -> parent rids (the edges point parent -> child).
    parents: dict[str, list[str]] = field(default_factory=dict)

    def edges(self) -> list[tuple[str, str]]:
        return [
            (parent, child)
            for child, parent_list in self.parents.items()
            for parent in parent_list
        ]

    def edge_count(self) -> int:
        return sum(len(parent_list) for parent_list in self.parents.values())


def create_time_precedence_graph(trace: Trace) -> TimePrecedenceGraph:
    """CreateTimePrecedenceGraph (Figure 6): one pass, O(X + Z).

    Tracks the *frontier* — the set of latest, mutually concurrent,
    completed requests.  Every new arrival gets an edge from each frontier
    member; when a request's response departs, the request evicts its
    parents from the frontier and joins it.
    """
    gtr = TimePrecedenceGraph()
    frontier: set[str] = set()
    for event in trace:
        if event.is_request:
            rid = event.rid
            gtr.nodes.append(rid)
            gtr.parents[rid] = list(frontier)
        else:
            rid = event.rid
            for parent in gtr.parents.get(rid, ()):
                frontier.discard(parent)
            frontier.add(rid)
    return gtr


def baseline_time_precedence(trace: Trace) -> TimePrecedenceGraph:
    """An offline O(X log X + Z) construction in the style of Anderson et
    al. [14]: collect the events, sort them by timestamp (the log-factor
    step the streaming algorithm avoids), then sweep.

    Produces the same edge set as :func:`create_time_precedence_graph`;
    exists so the E6 benchmark can measure the asymptotic difference.
    """
    stamped = [(event.time, index, event) for index, event in
               enumerate(trace)]
    stamped.sort(key=lambda item: (item[0], item[1]))
    gtr = TimePrecedenceGraph()
    frontier: set[str] = set()
    for _, _, event in stamped:
        if event.is_request:
            rid = event.rid
            gtr.nodes.append(rid)
            gtr.parents[rid] = list(frontier)
        else:
            rid = event.rid
            for parent in gtr.parents.get(rid, ()):
                frontier.discard(parent)
            frontier.add(rid)
    return gtr


def naive_precedence_relation(trace: Trace) -> set[tuple[str, str]]:
    """Ground-truth ``<Tr``: (r1, r2) iff RESPONSE(r1) precedes
    REQUEST(r2) in the trace.  O(X²); tests only."""
    relation: set[tuple[str, str]] = set()
    responded: list[str] = []
    for event in trace:
        if event.is_request:
            for earlier in responded:
                relation.add((earlier, event.rid))
        else:
            responded.append(event.rid)
    return relation


def reachability(gtr: TimePrecedenceGraph) -> set[tuple[str, str]]:
    """All (ancestor, descendant) pairs in GTr.  O(X·Z); tests only."""
    children: dict[str, list[str]] = {}
    for child, parent_list in gtr.parents.items():
        for parent in parent_list:
            children.setdefault(parent, []).append(child)
    closure: set[tuple[str, str]] = set()
    for start in gtr.nodes:
        seen: set[str] = set()
        stack = list(children.get(start, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            closure.add((start, node))
            stack.extend(children.get(node, ()))
    return closure
