"""Simulate-and-check (Sections 3.3, 4.5; Figure 12 lines 10-28, §A.7).

:class:`SimContext` holds everything re-execution consults: the untrusted
logs and OpMap, the audit-time versioned stores, and the trusted initial
state.  :class:`OpHandler` applies CheckOp/SimOp for one request's
operation stream — it is shared verbatim by the grouped (SIMD) driver,
which holds one handler per request in the group, and the out-of-order
driver, which holds one.

Semantics implemented here:

* **CheckOp** (Figure 12 lines 10-15): the operation's (rid, opnum) must be
  in the OpMap, target the same object, and carry the same optype and
  program-generated opcontents as the log entry.
* **SimOp for registers**: walk backward from the op's position for the
  latest RegisterWrite; if none exists, fall back to the trusted initial
  state (strict mode rejects instead, which is the paper's literal SimOp —
  SSCO does not model pre-trace state).
* **SimOp for KV / DB**: versioned stores built at audit start (§4.5),
  with read-query dedup for SELECTs when a group cache is installed.
* **DB transactions** (§A.7): a transaction is one operation; its queries
  are checked one at a time against the log entry's query list, with
  version timestamps ``ts = s*MAXQ + q``; the commit/rollback marker and
  the executor's abort discretion (the ``succeeded`` flag, §4.6) are
  resolved at transaction close.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

from repro.common.errors import AuditReject, RejectReason
from repro.core.dedup import QueryDedup
from repro.core.opmap import OpMap
from repro.objects.base import OpRecord, OpType
from repro.objects.versioned_kv import VersionedKV
from repro.server.app import Application, InitialState
from repro.server.reports import NondetRecord, Reports
from repro.sql.ast import Select
from repro.sql.engine import StmtResult
from repro.sql.parser import parse_sql
from repro.sql.versioned import MAXQ, VersionedDB

#: Sentinel: reject reads of registers with no logged write (strict SSCO).
STRICT_REGISTERS = object()

_INTENT_OPTYPE = {
    "register_read": OpType.REGISTER_READ,
    "register_write": OpType.REGISTER_WRITE,
    "kv_get": OpType.KV_GET,
    "kv_set": OpType.KV_SET,
}


class SimContext:
    """Audit-wide simulation state (logs, OpMap, versioned stores)."""

    def __init__(
        self,
        app: Application,
        reports: Reports,
        opmap: OpMap,
        initial_state: InitialState,
        strict_registers: bool = False,
    ):
        self.app = app
        self.reports = reports
        self.op_logs = reports.op_logs
        self.opmap = opmap
        self.op_counts = reports.op_counts
        self.initial = initial_state
        self.strict_registers = strict_registers
        self.vkv: dict[str, VersionedKV] = {}
        self.vdb: dict[str, VersionedDB] = {}
        #: Installed by the group driver for the duration of one group.
        self.dedup: QueryDedup | None = None
        #: rid -> outbound externals regenerated during re-execution
        #: (the §5.5 extension; compared against the trace's EXTERNAL
        #: events by the verifier).
        self.produced_externals: dict[str, list] = {}
        # Instrumentation (Figure 9's "DB query" bar; §5.2 dedup stats).
        self.db_query_seconds = 0.0
        self.db_queries_issued = 0
        self.dedup_hits = 0
        self.dedup_misses = 0

    # -- instrumentation transfer (parallel re-execution) ------------------
    #
    # Worker processes hold their own SimContext (rebuilt from the
    # picklable inputs: app, reports, OpMap, initial state) and stream
    # per-chunk counter deltas back to the parent context.

    _COUNTERS = ("db_query_seconds", "db_queries_issued", "dedup_hits",
                 "dedup_misses")

    def counter_snapshot(self) -> dict[str, float]:
        """Current instrumentation counters, for delta accounting."""
        return {name: getattr(self, name) for name in self._COUNTERS}

    def counter_delta(self, before: dict[str, float]) -> dict[str, float]:
        """Counters accumulated since ``before`` (a prior snapshot)."""
        return {
            name: getattr(self, name) - before[name]
            for name in self._COUNTERS
        }

    def add_counters(self, delta: dict[str, float]) -> None:
        """Fold a worker's counter delta into this context."""
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + delta.get(name, 0))

    # -- construction of versioned stores (the "DB redo" phase) -----------

    def build_versioned_stores(self) -> None:
        """kv.Build / db.Build (Figure 12, lines 5-6)."""
        app = self.app
        kv_log = self.op_logs.get(app.kv_name, [])
        vkv = VersionedKV()
        self._seed_kv_initial(vkv)
        vkv.build(kv_log)
        self.vkv[app.kv_name] = vkv

        db_log = self.op_logs.get(app.db_name, [])
        vdb = VersionedDB()
        vdb.load_initial(self.initial.db_engine)
        vdb.build(db_log)
        self.vdb[app.db_name] = vdb

    def _seed_kv_initial(self, vkv: VersionedKV) -> None:
        """Initial KV contents behave as writes at sequence 0."""
        for key, value in self.initial.kv.items():
            vkv._seqs.setdefault(key, []).insert(0, 0)
            vkv._values.setdefault(key, []).insert(0, value)

    # -- CheckOp -------------------------------------------------------------

    def lookup_op(self, rid: str, opnum: int) -> tuple[str, int, OpRecord]:
        entry = self.opmap.get(rid, opnum)
        if entry is None:
            raise AuditReject(
                RejectReason.OP_NOT_IN_OPMAP,
                f"operation ({rid}, {opnum}) not in OpMap",
            )
        obj, seq = entry
        record = self.op_logs[obj][seq - 1]
        return obj, seq, record

    def check_op(
        self,
        rid: str,
        opnum: int,
        obj: str,
        optype: OpType,
        opcontents: tuple,
    ) -> int:
        """Figure 12, lines 10-15.  Returns the log sequence number."""
        obj_hat, seq, record = self.lookup_op(rid, opnum)
        if (
            obj != obj_hat
            or optype is not record.optype
            or opcontents != record.opcontents
        ):
            raise AuditReject(
                RejectReason.OP_MISMATCH,
                f"operation ({rid}, {opnum}): program generated "
                f"({obj}, {optype.value}, {opcontents!r}) but log has "
                f"({obj_hat}, {record.optype.value}, "
                f"{record.opcontents!r})",
            )
        return seq

    # -- SimOp ---------------------------------------------------------------

    def sim_register_read(self, obj: str, seq: int) -> object:
        """Walk backward in OL_obj from ``seq`` for the latest write
        (Figure 12, lines 19-23)."""
        log = self.op_logs.get(obj, [])
        for position in range(seq - 2, -1, -1):
            record = log[position]
            if record.optype is OpType.REGISTER_WRITE:
                return record.opcontents[0]
        # No logged write: the register's value is its epoch-start value.
        if self.strict_registers:
            if obj in self.initial.registers:
                return self.initial.registers[obj]
            raise AuditReject(
                RejectReason.NO_PRIOR_WRITE,
                f"read of register {obj} with no prior write",
            )
        return self.initial.registers.get(obj)

    def sim_kv_get(self, obj: str, key: str, seq: int) -> object:
        vkv = self.vkv.get(obj)
        if vkv is None:
            raise AuditReject(
                RejectReason.OP_MISMATCH, f"no KV store named {obj}"
            )
        return vkv.get(key, seq)

    def db_select(self, obj: str, sql: str, ts: int) -> StmtResult:
        """SELECT against the versioned DB, with optional group dedup."""
        started = _time.perf_counter()
        try:
            self.db_queries_issued += 1
            if self.dedup is not None:
                before_hits = self.dedup.hits
                result = self.dedup.select(sql, ts)
                if self.dedup.hits > before_hits:
                    self.dedup_hits += 1
                else:
                    self.dedup_misses += 1
                return result
            self.dedup_misses += 1
            return self.vdb[obj].do_query(sql, ts)
        finally:
            self.db_query_seconds += _time.perf_counter() - started

    def db_write_result(self, obj: str, ts: int) -> StmtResult:
        started = _time.perf_counter()
        try:
            return self.vdb[obj].result_at(ts)
        finally:
            self.db_query_seconds += _time.perf_counter() - started


@dataclass
class _OpenTx:
    seq: int
    queries: tuple[str, ...]
    succeeded: bool
    q: int = 0  # next query index


class OpHandler:
    """CheckOp/SimOp for one request's operation stream (Figure 12/13)."""

    def __init__(self, ctx: SimContext, rid: str):
        self.ctx = ctx
        self.rid = rid
        self.opnum = 0
        self.tx: _OpenTx | None = None

    # -- entry point ----------------------------------------------------------

    def handle(self, kind: str, obj: str, args: tuple) -> object:
        if kind == "db_statement":
            return self._db_statement(obj, args[0])
        if kind == "db_begin":
            return self._db_begin(obj)
        if kind == "db_commit":
            return self._db_close(obj, "COMMIT")
        if kind == "db_rollback":
            return self._db_close(obj, "ROLLBACK")
        optype = _INTENT_OPTYPE.get(kind)
        if optype is None:
            raise AuditReject(
                RejectReason.OP_MISMATCH, f"unknown operation kind {kind}"
            )
        self.opnum += 1
        if kind == "register_read":
            seq = self.ctx.check_op(
                self.rid, self.opnum, obj, OpType.REGISTER_READ, ()
            )
            return self.ctx.sim_register_read(obj, seq)
        if kind == "register_write":
            self.ctx.check_op(
                self.rid, self.opnum, obj, OpType.REGISTER_WRITE, args
            )
            return None
        if kind == "kv_get":
            seq = self.ctx.check_op(
                self.rid, self.opnum, obj, OpType.KV_GET, args
            )
            return self.ctx.sim_kv_get(obj, args[0], seq)
        # kv_set
        self.ctx.check_op(self.rid, self.opnum, obj, OpType.KV_SET, args)
        return None

    # -- DB operations ---------------------------------------------------------

    def _db_begin(self, obj: str) -> None:
        if self.tx is not None:
            raise AuditReject(
                RejectReason.OP_MISMATCH,
                f"request {self.rid}: nested transaction",
            )
        self.opnum += 1
        obj_hat, seq, record = self.ctx.lookup_op(self.rid, self.opnum)
        if obj_hat != obj or record.optype is not OpType.DB_OP:
            raise AuditReject(
                RejectReason.OP_MISMATCH,
                f"operation ({self.rid}, {self.opnum}): program begins a "
                f"transaction on {obj}, log has "
                f"({obj_hat}, {record.optype.value})",
            )
        queries, succeeded = record.opcontents
        if not queries or queries[-1] not in ("COMMIT", "ROLLBACK"):
            raise AuditReject(
                RejectReason.OP_MISMATCH,
                f"operation ({self.rid}, {self.opnum}): log entry is not a "
                "transaction",
            )
        self.tx = _OpenTx(seq, queries, bool(succeeded))
        return None

    def _db_statement(self, obj: str, sql: str) -> StmtResult:
        ctx = self.ctx
        if self.tx is not None:
            tx = self.tx
            if tx.q >= len(tx.queries) - 1:
                raise AuditReject(
                    RejectReason.OP_MISMATCH,
                    f"request {self.rid}: transaction issues more queries "
                    "than logged",
                )
            if sql != tx.queries[tx.q]:
                raise AuditReject(
                    RejectReason.OP_MISMATCH,
                    f"request {self.rid}: transaction query {tx.q} is "
                    f"{sql!r} but log has {tx.queries[tx.q]!r}",
                )
            ts = tx.seq * MAXQ + tx.q + 1  # 1-based query index (§A.7)
            tx.q += 1
            return self._db_result(obj, sql, ts)
        # Auto-commit single statement: one whole operation.
        self.opnum += 1
        seq = ctx.check_op(
            self.rid, self.opnum, obj, OpType.DB_OP, ((sql,), True)
        )
        return self._db_result(obj, sql, seq * MAXQ + 1)

    def _db_result(self, obj: str, sql: str, ts: int) -> StmtResult:
        stmt = parse_sql(sql)
        if isinstance(stmt, Select):
            return self.ctx.db_select(obj, sql, ts)
        return self.ctx.db_write_result(obj, ts)

    def _db_close(self, obj: str, marker: str) -> bool:
        tx = self.tx
        if tx is None:
            raise AuditReject(
                RejectReason.OP_MISMATCH,
                f"request {self.rid}: {marker} without a transaction",
            )
        if tx.q != len(tx.queries) - 1 or tx.queries[-1] != marker:
            raise AuditReject(
                RejectReason.OP_MISMATCH,
                f"request {self.rid}: transaction closed with {marker} "
                f"after {tx.q} queries, log has {len(tx.queries) - 1} "
                f"queries ending with {tx.queries[-1]!r}",
            )
        if marker == "ROLLBACK" and tx.succeeded:
            raise AuditReject(
                RejectReason.OP_MISMATCH,
                f"request {self.rid}: log marks a rolled-back transaction "
                "as succeeded",
            )
        self.tx = None
        # For COMMIT, the executor has discretion over aborts (§4.6): the
        # program observes the logged outcome.
        return tx.succeeded

    # -- completion -----------------------------------------------------------

    def finish(self) -> None:
        """Figure 12, line 51: the request must have issued all claimed
        operations (opnum > M is impossible — CheckOp would have failed)."""
        if self.tx is not None:
            raise AuditReject(
                RejectReason.OP_MISMATCH,
                f"request {self.rid}: ended with an open transaction",
            )
        claimed = self.ctx.op_counts.get(self.rid, 0)
        if self.opnum < claimed:
            raise AuditReject(
                RejectReason.OP_COUNT_TOO_LOW,
                f"request {self.rid}: issued {self.opnum} operations, "
                f"M claims {claimed}",
            )

    def finish_error(self) -> None:
        """The re-executed program raised (the deterministic 500 path).

        Online, the executor rolled back any open transaction; the log must
        therefore show this transaction closed by ROLLBACK right after the
        queries the program issued.
        """
        tx = self.tx
        if tx is not None:
            if (
                tx.q != len(tx.queries) - 1
                or tx.queries[-1] != "ROLLBACK"
                or tx.succeeded
            ):
                raise AuditReject(
                    RejectReason.OP_MISMATCH,
                    f"request {self.rid}: errored mid-transaction but the "
                    "log does not show the matching rollback",
                )
            self.tx = None
        claimed = self.ctx.op_counts.get(self.rid, 0)
        if self.opnum < claimed:
            raise AuditReject(
                RejectReason.OP_COUNT_TOO_LOW,
                f"request {self.rid}: errored after {self.opnum} "
                f"operations, M claims {claimed}",
            )


class NondetCursor:
    """Feeds recorded non-determinism to a re-executed request (§4.6)."""

    def __init__(self, rid: str, records: list[NondetRecord]):
        self.rid = rid
        self.records = records
        self.position = 0

    def next(self, func: str, args: tuple) -> object:
        if self.position >= len(self.records):
            raise AuditReject(
                RejectReason.NONDET_MISSING,
                f"request {self.rid}: {func}() call #{self.position + 1} "
                "has no recorded value",
            )
        record = self.records[self.position]
        self.position += 1
        if record.func != func or record.args != args:
            raise AuditReject(
                RejectReason.NONDET_IMPLAUSIBLE,
                f"request {self.rid}: program called {func}{args!r}, "
                f"report recorded {record.func}{record.args!r}",
            )
        return record.value
