"""The auditing service API: :class:`Auditor` and :class:`AuditSession`.

The paper's deployment is *continuous* (§4.1): the verifier audits epoch
N while the server records epoch N+1, and only migrated state crosses
epoch boundaries.  ``ssco_audit`` — one function call over one complete
bundle — cannot express that.  This module redesigns the audit phase
around a long-lived service object:

* :class:`Auditor` binds the trusted program and a validated
  :class:`~repro.core.config.AuditConfig`.  :meth:`Auditor.audit` is the
  one-shot entry point (exactly ``ssco_audit``); :meth:`Auditor.session`
  opens an **incremental epoch session**.
* :class:`AuditSession` consumes one epoch at a time:
  :meth:`~AuditSession.feed_epoch` audits a (trace slice, reports slice)
  pair against the state migrated out of the previous epoch and returns
  a per-epoch :class:`EpochResult`; :meth:`~AuditSession.close` returns
  the merged :class:`~repro.core.pipeline.AuditResult`.  Feeding the
  epochs of a bundle one by one produces verdicts, produced bodies, and
  deterministic stats identical to the one-shot
  :func:`~repro.core.pipeline.sharded_audit` over the same cuts — the
  session *is* the sharded audit, unrolled over time.
* With ``session(pipelined=True)``, :meth:`~AuditSession.feed_epoch_async`
  returns a :class:`PendingEpoch` immediately and audits in a background
  thread: the caller ingests (reads, parses) epoch N+1 while epoch N
  re-executes — and with ``config.workers > 1`` the re-execution itself
  runs in the existing process pool, so ingest genuinely overlaps audit
  CPU.  Epochs still audit strictly in feed order (state chains).

Soundness across epochs: the session chains each epoch's §4.5 migrated
state into the next (acceptance is inductive, as for contiguous audit
epochs), and threads the ``uniqid()``-uniqueness plausibility check's
state across feeds so the §4.6 whole-stream check is preserved.  After a
rejected epoch the chain is broken and every further feed returns a
*skipped* result carrying the original verdict.

The streaming front end lives in :mod:`repro.io`:
``BundleReader.epochs(follow=True)`` tails a live JSONL bundle and
yields exactly the slices :meth:`~AuditSession.feed_epoch` consumes.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.common.errors import AuditReject, RejectReason
from repro.core.config import AuditConfig
from repro.core.nondet import validate_nondet_reports
from repro.core.pipeline import (
    AuditContext,
    AuditPipeline,
    AuditResult,
    _merge_shard_result,
    default_pipeline,
    run_audit,
)
from repro.server.app import Application, InitialState
from repro.server.reports import Reports
from repro.trace.trace import Trace, check_balanced


@dataclass
class EpochResult:
    """Outcome of auditing one epoch inside a session."""

    #: Zero-based feed position.
    index: int
    accepted: bool
    reason: Optional[RejectReason] = None
    detail: str = ""
    #: Requests / events in this epoch's slice.
    requests: int = 0
    events: int = 0
    #: Phase timers and stats of this epoch's pipeline pass (same keys
    #: as a one-shot :class:`~repro.core.pipeline.AuditResult`).
    phases: Dict[str, float] = field(default_factory=dict)
    stats: Dict[str, object] = field(default_factory=dict)
    #: rid -> produced body for this epoch.
    produced: Dict[str, str] = field(default_factory=dict)
    #: True when the epoch was never audited because an earlier epoch
    #: already rejected (the chain's state is untrusted from there on).
    skipped: bool = False

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.accepted


class PendingEpoch:
    """Handle for an epoch fed asynchronously; :meth:`result` blocks."""

    def __init__(self, index: int, future: "Future[EpochResult]"):
        self.index = index
        self._future = future

    def result(self, timeout: Optional[float] = None) -> EpochResult:
        return self._future.result(timeout)

    def done(self) -> bool:
        return self._future.done()


class AuditSession:
    """One continuous audit: epochs in, per-epoch verdicts out.

    Sessions are created by :meth:`Auditor.session` and consumed either
    synchronously (:meth:`feed_epoch`) or pipelined
    (:meth:`feed_epoch_async`).  The session owns the chain state: the
    initial state it was opened with, then each accepted epoch's
    migrated state.  Use as a context manager to guarantee
    :meth:`close`.
    """

    def __init__(
        self,
        auditor: "Auditor",
        initial_state: InitialState,
        pipelined: bool = False,
    ):
        self._auditor = auditor
        self._state = initial_state
        self._pipelined = pipelined
        self._pool: Optional[ThreadPoolExecutor] = None
        if pipelined:
            # One thread: epochs must audit in feed order (state chains).
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="audit-session"
            )
        self._seen_uniq: set = set()
        self._epochs: List[EpochResult] = []
        self._summaries: List[Dict[str, object]] = []
        self._merged = AuditResult(accepted=False)
        self._pending: List["Future[EpochResult]"] = []
        self._audit_seconds = 0.0
        self._failure: Optional[EpochResult] = None
        self._fed = 0
        self._closed = False
        self._final: Optional[AuditResult] = None

    # -- feeding ----------------------------------------------------------

    def feed_epoch(self, trace: Trace, reports: Reports) -> EpochResult:
        """Audit the next epoch of the stream; returns its result.

        The slice must be self-contained: a balanced trace segment cut
        at a quiescent point, with the reports restricted to its
        requests (exactly what ``BundleReader.epochs()`` or
        :func:`repro.core.partition.partition_audit_inputs` yield).
        """
        return self.submit_epoch(trace, reports).result()

    def feed_epoch_async(self, trace: Trace,
                         reports: Reports) -> PendingEpoch:
        """Queue the next epoch and return immediately.

        Requires a ``pipelined=True`` session.  Epochs audit in feed
        order on the session's worker thread; the caller is free to
        ingest the next epoch meanwhile.
        """
        if not self._pipelined:
            raise RuntimeError(
                "feed_epoch_async requires a pipelined session: "
                "auditor.session(state, pipelined=True)"
            )
        return self.submit_epoch(trace, reports)

    def submit_epoch(self, trace: Trace, reports: Reports) -> PendingEpoch:
        """Common feed path: synchronous sessions run inline, pipelined
        sessions enqueue on the worker thread."""
        if self._closed:
            raise RuntimeError("audit session is closed")
        index = self._fed
        self._fed += 1
        if self._pool is not None:
            future = self._pool.submit(self._audit_epoch, index, trace,
                                       reports)
            # Remembered so close()/_drain can re-raise an unexpected
            # worker exception even if the caller drops the handle —
            # a session must never report ACCEPTED over an epoch whose
            # audit crashed.
            self._pending.append(future)
        else:
            future: "Future[EpochResult]" = Future()
            future.set_result(self._audit_epoch(index, trace, reports))
        return PendingEpoch(index, future)

    # -- the per-epoch audit (single-threaded by construction) ------------

    def _audit_epoch(self, index: int, trace: Trace,
                     reports: Reports) -> EpochResult:
        started = _time.perf_counter()
        try:
            return self._audit_epoch_inner(index, trace, reports)
        finally:
            # Time actually spent auditing — unlike wall-clock since
            # session start, this excludes waiting for epochs to arrive
            # (a follow session is mostly waiting).
            self._audit_seconds += _time.perf_counter() - started

    def _audit_epoch_inner(self, index: int, trace: Trace,
                           reports: Reports) -> EpochResult:
        if self._failure is not None:
            epoch = EpochResult(
                index=index,
                accepted=False,
                reason=self._failure.reason,
                detail=f"skipped: epoch {self._failure.index} already "
                       f"rejected ({self._failure.detail})",
                requests=len(trace.request_ids()),
                events=len(trace),
                skipped=True,
            )
            self._epochs.append(epoch)
            return epoch

        config = self._auditor.config
        # The §4.6 plausibility pre-check with whole-stream state: the
        # per-epoch pipeline re-checks internally, but only this shared
        # set catches a uniqid duplicated *across* epochs (sharded_audit
        # sees the whole report set at once and needs no threading).
        try:
            check_balanced(trace)
            validate_nondet_reports(reports, self._seen_uniq)
        except AuditReject as reject:
            epoch = EpochResult(
                index=index, accepted=False, reason=reject.reason,
                detail=reject.detail,
                requests=len(trace.request_ids()), events=len(trace),
            )
            self._record(epoch, None)
            return epoch

        options = config.to_options()
        options.epoch_size = 0
        options.epoch_cuts = None
        options.migrate = True  # the chain always needs the next state
        actx = AuditContext(self._auditor.app, trace, reports,
                            self._state, options)
        pipeline = self._auditor.pipeline or default_pipeline(options)
        result = pipeline.run(actx)
        epoch = EpochResult(
            index=index,
            accepted=result.accepted,
            reason=result.reason,
            detail=result.detail,
            requests=len(trace.request_ids()),
            events=len(trace),
            phases=result.phases,
            stats=result.stats,
            produced=result.produced,
        )
        self._record(epoch, result)
        return epoch

    def _record(self, epoch: EpochResult,
                result: Optional[AuditResult]) -> None:
        self._epochs.append(epoch)
        if result is not None:
            _merge_shard_result(self._merged, result)
            self._summaries.append({
                "shard": epoch.index,
                "requests": epoch.requests,
                "events": epoch.events,
                "accepted": epoch.accepted,
                "reexec_seconds": epoch.phases.get("reexec", 0.0),
                "groups": epoch.stats.get("groups", 0),
            })
        if not epoch.accepted:
            self._failure = epoch
            self._merged.produced = {}
            return
        if result is not None:
            if result.next_initial is None:
                raise ValueError(
                    "audit session needs a MigratePhase in the pipeline "
                    "to chain epoch state"
                )
            self._state = result.next_initial

    # -- lifecycle --------------------------------------------------------

    @property
    def current_state(self) -> InitialState:
        """The state the *next* epoch will be audited against (the last
        accepted epoch's migrated state)."""
        self._drain()
        return self._state

    @property
    def epochs(self) -> List[EpochResult]:
        """Per-epoch results so far (feed order)."""
        self._drain()
        return list(self._epochs)

    @property
    def rejected(self) -> bool:
        self._drain()
        return self._failure is not None

    def _drain(self) -> None:
        """Wait for queued pipelined epochs to finish, re-raising any
        unexpected exception a worker-thread audit hit (rejections are
        results, not exceptions — only genuine crashes surface here)."""
        if self._pool is None or self._closed:
            return
        pending, self._pending = self._pending, []
        for future in pending:
            future.result()

    def close(self) -> AuditResult:
        """Finish the session and return the merged result.

        The merged result has the same shape as one-shot
        ``ssco_audit(..., epoch_cuts=...)`` over the concatenated
        stream: summed phase timers and stats, per-epoch summaries under
        ``stats["shards"]``, the union of produced bodies, and — when
        the config asks for ``migrate`` — the final chained state in
        ``next_initial``.  ``phases["total"]`` is the summed per-epoch
        audit time, *not* wall-clock since the session opened (a follow
        session spends most of its life waiting for epochs).
        Idempotent.
        """
        if self._final is not None:
            return self._final
        try:
            self._drain()
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._closed = True
        merged = self._merged
        merged.accepted = self._failure is None
        if self._failure is not None:
            merged.reason = self._failure.reason
            merged.detail = self._failure.detail
        elif self._auditor.config.migrate:
            merged.next_initial = self._state
        merged.stats["shard_count"] = self._fed
        merged.stats["shards"] = self._summaries
        merged.phases["total"] = self._audit_seconds
        self._final = merged
        return merged

    #: ``result()`` is the reading most callers expect at the end.
    result = close

    def __enter__(self) -> "AuditSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Auditor:
    """A long-lived audit service for one application.

    ``Auditor(app, config)`` binds the trusted program to a validated
    :class:`~repro.core.config.AuditConfig` (keyword knobs build one:
    ``Auditor(app, workers=4, backend="accinterp")``).

    * :meth:`audit` — one-shot, exactly ``ssco_audit``;
    * :meth:`session` — incremental epoch-by-epoch auditing;
    * :meth:`audit_epochs` — drive a session over any iterable of epoch
      slices (e.g. ``BundleReader.epochs(follow=True)``).

    A custom :class:`~repro.core.pipeline.AuditPipeline` may replace the
    stock phase sequence; sessions require it to keep a ``MigratePhase``
    (state must chain).
    """

    def __init__(
        self,
        app: Application,
        config: Optional[AuditConfig] = None,
        pipeline: Optional[AuditPipeline] = None,
        **knobs,
    ):
        if config is not None and knobs:
            raise ValueError(
                "pass either a config object or keyword knobs, not both"
            )
        self.app = app
        self.config = config or AuditConfig(**knobs)
        self.pipeline = pipeline

    def audit(
        self,
        trace: Trace,
        reports: Reports,
        initial_state: InitialState,
    ) -> AuditResult:
        """Audit one complete bundle under this auditor's config."""
        self.config.validate_for_trace(trace)
        return run_audit(self.app, trace, reports, initial_state,
                         self.config.to_options(), pipeline=self.pipeline)

    def session(
        self,
        initial_state: InitialState,
        pipelined: bool = False,
    ) -> AuditSession:
        """Open an incremental epoch session starting from
        ``initial_state`` (the verifier's trusted state at stream start,
        §4.1)."""
        return AuditSession(self, initial_state, pipelined=pipelined)

    def audit_epochs(
        self,
        epochs: Iterable,
        initial_state: InitialState,
        pipelined: bool = False,
    ) -> AuditResult:
        """Feed every epoch slice of ``epochs`` through a session.

        Items may be ``(trace, reports)`` pairs or objects with
        ``.trace`` / ``.reports`` attributes (``BundleReader``'s
        :class:`~repro.io.EpochSlice`, the partitioner's
        :class:`~repro.core.partition.Shard`).  The whole iterable is
        consumed — epochs after a rejection come back as cheap *skipped*
        results, so the merged outcome (verdict, stats, shard count) is
        identical to the one-shot sharded audit over the same cuts.
        Returns the merged result.
        """
        with self.session(initial_state, pipelined=pipelined) as session:
            for item in epochs:
                if isinstance(item, tuple):
                    trace, reports = item
                else:
                    trace, reports = item.trace, item.reports
                # Enqueues on pipelined sessions (the iterable keeps
                # ingesting while earlier epochs audit); inline on
                # synchronous ones.
                session.submit_epoch(trace, reports)
            return session.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Auditor app={self.app.name!r} "
                f"{self.config.describe()}>")
