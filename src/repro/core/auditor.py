"""The auditing service API: :class:`Auditor` and :class:`AuditSession`.

The paper's deployment is *continuous* (§4.1): the verifier audits epoch
N while the server records epoch N+1, and only migrated state crosses
epoch boundaries.  ``ssco_audit`` — one function call over one complete
bundle — cannot express that.  This module redesigns the audit phase
around a long-lived service object:

* :class:`Auditor` binds the trusted program and a validated
  :class:`~repro.core.config.AuditConfig`.  :meth:`Auditor.audit` is the
  one-shot entry point (exactly ``ssco_audit``); :meth:`Auditor.session`
  opens an **incremental epoch session**.
* :class:`AuditSession` consumes one epoch at a time:
  :meth:`~AuditSession.feed_epoch` audits a (trace slice, reports slice)
  pair against the state migrated out of the previous epoch and returns
  a per-epoch :class:`EpochResult`; :meth:`~AuditSession.close` returns
  the merged :class:`~repro.core.pipeline.AuditResult`.  Feeding the
  epochs of a bundle one by one produces verdicts, produced bodies, and
  deterministic stats identical to the one-shot
  :func:`~repro.core.pipeline.sharded_audit` over the same cuts — the
  session *is* the sharded audit, unrolled over time.
* With ``session(pipelined=True)``, :meth:`~AuditSession.feed_epoch_async`
  returns a :class:`PendingEpoch` immediately and audits in a background
  thread: the caller ingests (reads, parses) epoch N+1 while epoch N
  re-executes — and with ``config.workers > 1`` the re-execution itself
  runs in the existing process pool, so ingest genuinely overlaps audit
  CPU.  Epochs still audit strictly in feed order (state chains).
* With ``config.epoch_workers > 1`` the chain itself is unrolled: at
  feed time only the cheap, serial part runs — the cross-epoch checks
  and the redo-only **state precompute**
  (:func:`~repro.core.pipeline.state_precompute_pipeline`), which
  migrates the next epoch's initial state without re-executing anything
  — and the heavy remainder (grouped re-execution, output comparison)
  is dispatched to a pool of ``epoch_workers`` threads.  Several epochs
  audit concurrently; results are merged strictly in feed order, so the
  per-epoch results and the merged outcome are bit-identical to the
  serial session (epochs after the first rejection come back *skipped*
  and their speculative audits are discarded).

Soundness across epochs: the session chains each epoch's §4.5 migrated
state into the next (acceptance is inductive, as for contiguous audit
epochs), and threads the ``uniqid()``-uniqueness plausibility check's
state across feeds so the §4.6 whole-stream check is preserved.  After a
rejected epoch the chain is broken and every further feed returns a
*skipped* result carrying the original verdict.

The streaming front end lives in :mod:`repro.io`:
``BundleReader.epochs(follow=True)`` tails a live JSONL bundle and
yields exactly the slices :meth:`~AuditSession.feed_epoch` consumes.
"""

from __future__ import annotations

import threading
import time as _time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.common.errors import AuditReject, RejectReason
from repro.core.config import AuditConfig
from repro.core.epochpool import EpochPool, epoch_worker_options
from repro.core.nondet import validate_nondet_reports
from repro.core.partition import make_shard_summary
from repro.core.pipeline import (
    AuditContext,
    AuditPipeline,
    AuditResult,
    _merge_shard_result,
    default_pipeline,
    finish_precomputed_audit,
    resolve_prepass_depth,
    run_audit,
    state_precompute_pipeline,
)
from repro.core.reexec import available_cpus, fork_inherits_context
from repro.server.app import Application, InitialState
from repro.server.reports import Reports
from repro.trace.trace import Trace, check_balanced


@dataclass
class EpochResult:
    """Outcome of auditing one epoch inside a session."""

    #: Zero-based feed position.
    index: int
    accepted: bool
    reason: RejectReason | None = None
    detail: str = ""
    #: Requests / events in this epoch's slice.
    requests: int = 0
    events: int = 0
    #: Phase timers and stats of this epoch's pipeline pass (same keys
    #: as a one-shot :class:`~repro.core.pipeline.AuditResult`).
    phases: dict[str, float] = field(default_factory=dict)
    stats: dict[str, object] = field(default_factory=dict)
    #: rid -> produced body for this epoch.
    produced: dict[str, str] = field(default_factory=dict)
    #: True when the epoch was never audited because an earlier epoch
    #: already rejected (the chain's state is untrusted from there on).
    skipped: bool = False

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.accepted


class PendingEpoch:
    """Handle for an epoch fed asynchronously; :meth:`result` blocks.

    In ``epoch_workers`` mode the handle resolves through the session's
    in-order merge (a ``resolver``/``done_fn`` pair) instead of a bare
    future, so the result a caller sees is always the *normalized* one
    — e.g. *skipped* when an earlier epoch's concurrent audit rejected.
    """

    def __init__(self, index: int,
                 future: "Future[EpochResult]" | None = None,
                 resolver=None, done_fn=None):
        self.index = index
        self._future = future
        self._resolver = resolver
        self._done_fn = done_fn

    def result(self, timeout: float | None = None) -> EpochResult:
        if self._resolver is not None:
            return self._resolver(timeout)
        return self._future.result(timeout)

    def done(self) -> bool:
        if self._done_fn is not None:
            return self._done_fn()
        return self._future.done()


class AuditSession:
    """One continuous audit: epochs in, per-epoch verdicts out.

    Sessions are created by :meth:`Auditor.session` and consumed either
    synchronously (:meth:`feed_epoch`) or pipelined
    (:meth:`feed_epoch_async`).  The session owns the chain state: the
    initial state it was opened with, then each accepted epoch's
    migrated state.  Use as a context manager to guarantee
    :meth:`close`.
    """

    def __init__(
        self,
        auditor: Auditor,
        initial_state: InitialState,
        pipelined: bool = False,
    ):
        self._auditor = auditor
        self._state = initial_state
        self._pipelined = pipelined
        self._pool: ThreadPoolExecutor | None = None
        self._epoch_pool: ThreadPoolExecutor | None = None
        config = auditor.config
        # Concurrent epoch mode needs the stock phase structure (the
        # prepass stands in for specific phases); custom pipelines keep
        # the serial chain.
        epoch_workers = (
            config.epoch_workers if auditor.pipeline is None else 1
        )
        fleet = (config.fleet_listen is not None
                 and auditor.pipeline is None)
        if fleet:
            # Fleet mode implies concurrent epochs: widen the driver so
            # every remote worker can hold an epoch even when
            # epoch_workers was left at 1.
            epoch_workers = max(epoch_workers,
                                config.fleet_min_workers, 2)
        self._process_pool: EpochPool | None = None
        if epoch_workers > 1:
            # Concurrent epoch mode: the cheap redo-only prepass chains
            # state serially at submit time; the heavy audits run in
            # this pool and are merged back strictly in feed order.
            # (The pipelined single worker thread is superseded — the
            # epoch pool already decouples feeding from auditing.)
            self._epoch_pool = ThreadPoolExecutor(
                max_workers=epoch_workers,
                thread_name_prefix="audit-epoch",
            )
            if fleet:
                # Remote epochs: the coordinator implements the same
                # run_epoch/close/serial_fallbacks contract as
                # EpochPool, so the merge discipline below is shared.
                # Imported lazily — the core layer only depends on the
                # fleet package when a fleet is actually requested.
                from repro.fleet.coordinator import FleetCoordinator

                self._process_pool = FleetCoordinator(
                    config.fleet_listen,
                    min_workers=config.fleet_min_workers,
                    task_timeout=config.fleet_task_timeout,
                    redundancy=config.fleet_redundancy,
                    heartbeat_timeout=config.net_idle_timeout,
                )
                self._offload = False
            elif config.epoch_processes:
                # Process-level epochs: one persistent pool shared by
                # every epoch of this session; the threads above only
                # submit work units and merge results.
                self._process_pool = EpochPool(epoch_workers)
                self._offload = False
            else:
                # Thread driver: offload each epoch's serial re-exec to
                # a worker process only where fork lets it inherit the
                # built stores; a spawn pool would re-run the redo the
                # precompute just did.
                self._offload = (config.workers == 1
                                 and available_cpus() > 1
                                 and fork_inherits_context())
            #: Backpressure: submit_epoch blocks once this many primed
            #: epochs are in flight (speculative prepass depth) —
            #: fleet-wide, since dispatches only happen from this
            #: bounded set of in-flight epochs.
            depth_options = config.to_options()
            depth_options.epoch_workers = epoch_workers
            self._prepass_depth = resolve_prepass_depth(depth_options)
            self._precompute_seconds = 0.0
            #: Feed-order merge queue: ("skipped"|"precheck"|"rejected"|
            #: "audit", payload, requests, events) per fed epoch.
            self._entries: list[tuple] = []
            self._merged_upto = 0
            #: Speculative chain state (redo-only); ``_state`` remains
            #: the *certified* chain, advanced only at merge time.
            self._prepass_state = initial_state
            self._prepass_failed = False
            self._merge_lock = threading.RLock()
        elif pipelined:
            # One thread: epochs must audit in feed order (state chains).
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="audit-session"
            )
        self._seen_uniq: set = set()
        self._epochs: list[EpochResult] = []
        self._summaries: list[dict[str, object]] = []
        self._merged = AuditResult(accepted=False)
        self._pending: list["Future[EpochResult]"] = []
        self._audit_seconds = 0.0
        self._failure: EpochResult | None = None
        self._fed = 0
        self._closed = False
        self._final: AuditResult | None = None
        #: Latched first crash (a non-AuditReject exception from an
        #: epoch's audit).  Every later drain/close re-raises it — a
        #: session that crashed can never fall through to ACCEPTED.
        self._crash: BaseException | None = None

    # -- feeding ----------------------------------------------------------

    def feed_epoch(self, trace: Trace, reports: Reports) -> EpochResult:
        """Audit the next epoch of the stream; returns its result.

        The slice must be self-contained: a balanced trace segment cut
        at a quiescent point, with the reports restricted to its
        requests (exactly what ``BundleReader.epochs()`` or
        :func:`repro.core.partition.partition_audit_inputs` yield).
        """
        return self.submit_epoch(trace, reports).result()

    def feed_epoch_async(self, trace: Trace,
                         reports: Reports) -> PendingEpoch:
        """Queue the next epoch and return immediately.

        Requires a ``pipelined=True`` session or an ``epoch_workers``
        session (which is natively asynchronous).  Epochs audit in feed
        order on the session's worker thread (concurrently, merged back
        in feed order, with ``epoch_workers``); the caller is free to
        ingest the next epoch meanwhile.
        """
        if not self._pipelined and self._epoch_pool is None:
            raise RuntimeError(
                "feed_epoch_async requires a pipelined session: "
                "auditor.session(state, pipelined=True) "
                "(or an epoch_workers > 1 config)"
            )
        return self.submit_epoch(trace, reports)

    def submit_epoch(self, trace: Trace, reports: Reports) -> PendingEpoch:
        """Common feed path: synchronous sessions run inline, pipelined
        sessions enqueue on the worker thread, ``epoch_workers``
        sessions prepass inline and dispatch to the epoch pool."""
        if self._closed:
            raise RuntimeError("audit session is closed")
        index = self._fed
        self._fed += 1
        if self._epoch_pool is not None:
            return self._submit_epoch_concurrent(index, trace, reports)
        if self._pool is not None:
            # Prune completed, exception-free futures so a long follow
            # session does not pin every finished epoch's future for
            # the stream's lifetime; futures that crashed are kept so
            # close()/_drain can still re-raise them.
            self._pending = [
                f for f in self._pending
                if not f.done() or f.exception() is not None
            ]
            future = self._pool.submit(self._audit_epoch, index, trace,
                                       reports)
            # Remembered so close()/_drain can re-raise an unexpected
            # worker exception even if the caller drops the handle —
            # a session must never report ACCEPTED over an epoch whose
            # audit crashed.
            self._pending.append(future)
        else:
            future: Future[EpochResult] = Future()
            future.set_result(self._audit_epoch(index, trace, reports))
        return PendingEpoch(index, future)

    # -- the concurrent (epoch_workers) feed path -------------------------

    def _submit_epoch_concurrent(self, index: int, trace: Trace,
                                 reports: Reports) -> PendingEpoch:
        """Feed-order half of the concurrent mode.

        The parts that must run serially happen here, in the caller's
        thread: the cross-epoch checks (balance, the §4.6 uniqid
        seen-set) and the redo-only prepass that migrates the next
        epoch's initial state.  The heavy remainder goes to the epoch
        pool.  EpochResults are constructed at merge time, strictly in
        feed order, so verdicts and stats match the serial session even
        when a rejection is discovered after later epochs were fed.

        Backpressure: before priming another epoch, the speculative
        prepass is held back until fewer than ``prepass_depth`` primed
        epochs are in flight — a follow/connect session feeding faster
        than the pool audits blocks here instead of accumulating
        unbounded speculative state.
        """
        requests = len(trace.request_ids())
        events = len(trace)
        while True:
            with self._merge_lock:
                if (self._prepass_failed or self._failure is not None
                        or len(self._entries) - self._merged_upto
                        < self._prepass_depth):
                    break
                oldest = self._merged_upto
            # Settle (and release) the oldest in-flight epoch before
            # priming more; the wait happens outside the merge lock.
            self._resolve(oldest)
        with self._merge_lock:
            if self._prepass_failed or self._failure is not None:
                self._entries.append(("skipped", None, requests, events))
            else:
                try:
                    entry = self._prepass_epoch(trace, reports, requests,
                                                events)
                except BaseException as crash:
                    # Keep the merge queue aligned with epoch indexes: a
                    # crashed prepass still occupies its slot, and the
                    # crash resurfaces at merge/close time too (a
                    # session must never report ACCEPTED over an epoch
                    # whose audit crashed).
                    self._prepass_failed = True
                    self._entries.append(("crashed", crash, requests,
                                          events))
                    raise
                self._entries.append(entry)
        return PendingEpoch(
            index,
            resolver=lambda timeout=None: self._resolve(index, timeout),
            done_fn=lambda: self._entry_done(index),
        )

    def _prepass_epoch(self, trace: Trace, reports: Reports,
                       requests: int, events: int) -> tuple:
        """One epoch's serial half; returns its merge-queue entry."""
        try:
            check_balanced(trace)
            validate_nondet_reports(reports, self._seen_uniq)
        except AuditReject as reject:
            self._prepass_failed = True
            return ("precheck", reject, requests, events)
        options = self._auditor.config.to_options()
        options.epoch_size = 0
        options.epoch_cuts = None
        options.epoch_workers = 1
        options.migrate = True  # the chain always needs the next state
        options.offload_reexec = self._offload
        epoch_state = self._prepass_state
        actx = AuditContext(self._auditor.app, trace, reports,
                            epoch_state, options)
        prepass_start = _time.perf_counter()
        pre = state_precompute_pipeline().run(actx)
        self._precompute_seconds += _time.perf_counter() - prepass_start
        if not pre.accepted:
            # The full audit would reject at the same phase with the
            # same reason — the prepass *is* that prefix of it — so its
            # result already carries the epoch's verdict and stats.
            self._prepass_failed = True
            return ("rejected", pre, requests, events)
        self._prepass_state = pre.next_initial
        if self._process_pool is not None:
            # Whole-epoch work unit on the shared persistent process
            # pool; the primed context's stores are released here (the
            # worker rebuilds its own from the pickled slices) — only
            # the migrated chain state extracted above is kept.
            worker_options = epoch_worker_options(options)
            future = self._epoch_pool.submit(
                self._process_pool.run_epoch, self._auditor.app, trace,
                reports, epoch_state, worker_options)
        else:
            future = self._epoch_pool.submit(finish_precomputed_audit,
                                             actx)
        return ("audit", (future, pre.next_initial), requests, events)

    def _resolve(self, index: int,
                 timeout: float | None = None) -> EpochResult:
        """Merge entries in feed order up to ``index``; returns its
        normalized :class:`EpochResult`.

        Pool futures are waited on *outside* the merge lock, so feeding
        and ``done()`` polls stay responsive while an epoch audits; the
        merges themselves happen under the lock.  ``timeout`` is an
        overall deadline for the whole call, not per predecessor epoch.
        """
        deadline = (None if timeout is None
                    else _time.monotonic() + timeout)
        while True:
            with self._merge_lock:
                if index < self._merged_upto:
                    return self._epochs[index]
                kind, payload = self._entries[self._merged_upto][:2]
                if (self._failure is not None or kind != "audit"
                        or payload[0].done()):
                    self._merge_next_entry()
                    continue
                future = payload[0]
            remaining = (None if deadline is None
                         else deadline - _time.monotonic())
            try:
                # Lock-free wait; raises TimeoutError past the deadline.
                # The merge happens under the lock on the next loop turn
                # (re-checked — another thread may have merged it first).
                future.exception(remaining)
            except CancelledError:
                # An earlier epoch rejected and cancelled this one; the
                # next turn takes the skipped path.
                pass

    def _entry_done(self, index: int) -> bool:
        """True only when ``result()`` would not block: every entry up
        to ``index`` must be mergeable without waiting (after a
        recorded failure, merging never waits — later audits are
        cancelled, not joined)."""
        with self._merge_lock:
            if index < self._merged_upto:
                return True
            if self._failure is not None:
                return True
            for position in range(self._merged_upto, index + 1):
                kind, payload = self._entries[position][:2]
                if kind == "audit" and not payload[0].done():
                    return False
            return True

    def _merge_next_entry(self) -> None:
        """Merge the next queued epoch (lock held by the caller; any
        pool future involved is already done)."""
        index = self._merged_upto
        kind, payload, requests, events = self._entries[index]
        if self._failure is not None:
            # Everything after the first rejection mirrors the serial
            # session's *skipped* results; a speculative audit that is
            # already running is discarded unseen.
            if kind == "audit":
                future, _ = payload
                future.cancel()
                future.add_done_callback(
                    lambda f: f.cancelled() or f.exception()
                )
            self._epochs.append(EpochResult(
                index=index,
                accepted=False,
                reason=self._failure.reason,
                detail=f"skipped: epoch {self._failure.index} already "
                       f"rejected ({self._failure.detail})",
                requests=requests,
                events=events,
                skipped=True,
            ))
        elif kind == "crashed":
            # Re-raise the feed-time crash (see _submit_epoch_concurrent)
            # so close()/_drain can never report ACCEPTED past it.
            raise payload
        elif kind == "precheck":
            epoch = EpochResult(
                index=index, accepted=False, reason=payload.reason,
                detail=payload.detail, requests=requests, events=events,
            )
            self._epochs.append(epoch)
            self._failure = epoch
            self._merged.produced = {}
        else:  # "rejected" (a prepass verdict) or "audit" (pool future)
            if kind == "audit":
                future, next_state = payload
                result = future.result()
            else:
                result, next_state = payload, None
            epoch = EpochResult(
                index=index,
                accepted=result.accepted,
                reason=result.reason,
                detail=result.detail,
                requests=requests,
                events=events,
                phases=result.phases,
                stats=result.stats,
                produced=result.produced,
            )
            self._epochs.append(epoch)
            _merge_shard_result(self._merged, result)
            self._summaries.append(
                make_shard_summary(index, requests, events, result)
            )
            self._audit_seconds += result.phases.get("total", 0.0)
            if not epoch.accepted:
                self._failure = epoch
                self._merged.produced = {}
            else:
                # Certify the prepass state: this epoch's full audit
                # validated the very logs the prepass migrated.
                self._state = next_state
        # Release the merged entry's payload (future + migrated-state
        # snapshot): a long follow session must hold one chain state,
        # not one per epoch.  ("crashed" entries never reach this line
        # — they re-raise above and keep their exception.)
        self._entries[index] = (kind, None, requests, events)
        self._merged_upto += 1

    # -- the per-epoch audit (single-threaded by construction) ------------

    def _audit_epoch(self, index: int, trace: Trace,
                     reports: Reports) -> EpochResult:
        started = _time.perf_counter()
        try:
            return self._audit_epoch_inner(index, trace, reports)
        finally:
            # Time actually spent auditing — unlike wall-clock since
            # session start, this excludes waiting for epochs to arrive
            # (a follow session is mostly waiting).
            self._audit_seconds += _time.perf_counter() - started

    def _audit_epoch_inner(self, index: int, trace: Trace,
                           reports: Reports) -> EpochResult:
        if self._failure is not None:
            epoch = EpochResult(
                index=index,
                accepted=False,
                reason=self._failure.reason,
                detail=f"skipped: epoch {self._failure.index} already "
                       f"rejected ({self._failure.detail})",
                requests=len(trace.request_ids()),
                events=len(trace),
                skipped=True,
            )
            self._epochs.append(epoch)
            return epoch

        config = self._auditor.config
        # The §4.6 plausibility pre-check with whole-stream state: the
        # per-epoch pipeline re-checks internally, but only this shared
        # set catches a uniqid duplicated *across* epochs (sharded_audit
        # sees the whole report set at once and needs no threading).
        try:
            check_balanced(trace)
            validate_nondet_reports(reports, self._seen_uniq)
        except AuditReject as reject:
            epoch = EpochResult(
                index=index, accepted=False, reason=reject.reason,
                detail=reject.detail,
                requests=len(trace.request_ids()), events=len(trace),
            )
            self._record(epoch, None)
            return epoch

        options = config.to_options()
        options.epoch_size = 0
        options.epoch_cuts = None
        options.migrate = True  # the chain always needs the next state
        actx = AuditContext(self._auditor.app, trace, reports,
                            self._state, options)
        pipeline = self._auditor.pipeline or default_pipeline(options)
        result = pipeline.run(actx)
        epoch = EpochResult(
            index=index,
            accepted=result.accepted,
            reason=result.reason,
            detail=result.detail,
            requests=len(trace.request_ids()),
            events=len(trace),
            phases=result.phases,
            stats=result.stats,
            produced=result.produced,
        )
        self._record(epoch, result)
        return epoch

    def _record(self, epoch: EpochResult,
                result: AuditResult | None) -> None:
        self._epochs.append(epoch)
        if result is not None:
            _merge_shard_result(self._merged, result)
            self._summaries.append(make_shard_summary(
                epoch.index, epoch.requests, epoch.events, result
            ))
        if not epoch.accepted:
            self._failure = epoch
            self._merged.produced = {}
            return
        if result is not None:
            if result.next_initial is None:
                raise ValueError(
                    "audit session needs a MigratePhase in the pipeline "
                    "to chain epoch state"
                )
            self._state = result.next_initial

    # -- lifecycle --------------------------------------------------------

    @property
    def current_state(self) -> InitialState:
        """The state the *next* epoch will be audited against (the last
        accepted epoch's migrated state)."""
        self._drain()
        return self._state

    @property
    def epochs(self) -> list[EpochResult]:
        """Per-epoch results so far (feed order)."""
        self._drain()
        return list(self._epochs)

    @property
    def rejected(self) -> bool:
        self._drain()
        return self._failure is not None

    def _drain(self) -> None:
        """Wait for queued epochs to finish, re-raising any unexpected
        exception an epoch's audit hit (rejections are results, not
        exceptions — only genuine crashes surface here).  A crash is
        latched: every later drain/close re-raises it, so a crashed
        session can never fall through to an ACCEPTED verdict.  In
        ``epoch_workers`` mode this performs the in-order merge of
        every fed epoch."""
        if self._crash is not None:
            raise self._crash
        try:
            self._drain_inner()
        except Exception as crash:
            self._crash = crash
            raise
        # KeyboardInterrupt/SystemExit raised in the *waiting* thread
        # propagate un-latched: no epoch audit crashed, and a later
        # drain can still deliver the real verdict.

    def _drain_inner(self) -> None:
        if self._closed:
            return
        if self._epoch_pool is not None:
            while True:
                with self._merge_lock:
                    total = len(self._entries)
                    if self._merged_upto >= total:
                        return
                self._resolve(total - 1)
        if self._pool is None:
            return
        pending, self._pending = self._pending, []
        for future in pending:
            future.result()

    def close(self) -> AuditResult:
        """Finish the session and return the merged result.

        The merged result has the same shape as one-shot
        ``ssco_audit(..., epoch_cuts=...)`` over the concatenated
        stream: summed phase timers and stats, per-epoch summaries under
        ``stats["shards"]``, the union of produced bodies, and — when
        the config asks for ``migrate`` — the final chained state in
        ``next_initial``.  ``phases["total"]`` is the summed per-epoch
        audit time, *not* wall-clock since the session opened (a follow
        session spends most of its life waiting for epochs).
        Idempotent.
        """
        if self._final is not None:
            return self._final
        try:
            self._drain()
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            if self._epoch_pool is not None:
                self._epoch_pool.shutdown(wait=True)
            if self._process_pool is not None:
                self._process_pool.close()
            self._closed = True
        merged = self._merged
        if self._process_pool is not None:
            # The workers re-time their own phases, so the parent-side
            # prepass is extra work the per-epoch results do not carry;
            # surface it like the one-shot driver does.  (The thread
            # driver's prepass timers already live inside each epoch's
            # result — no separate entry there.)
            merged.phases["state_precompute"] = self._precompute_seconds
        merged.accepted = self._failure is None
        if self._failure is not None:
            merged.reason = self._failure.reason
            merged.detail = self._failure.detail
        elif self._auditor.config.migrate:
            merged.next_initial = self._state
        merged.stats["shard_count"] = self._fed
        merged.stats["shards"] = self._summaries
        merged.phases["total"] = self._audit_seconds
        self._final = merged
        return merged

    #: ``result()`` is the reading most callers expect at the end.
    result = close

    def __enter__(self) -> AuditSession:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Auditor:
    """A long-lived audit service for one application.

    ``Auditor(app, config)`` binds the trusted program to a validated
    :class:`~repro.core.config.AuditConfig` (keyword knobs build one:
    ``Auditor(app, workers=4, backend="accinterp")``).

    * :meth:`audit` — one-shot, exactly ``ssco_audit``;
    * :meth:`session` — incremental epoch-by-epoch auditing;
    * :meth:`audit_epochs` — drive a session over any iterable of epoch
      slices (e.g. ``BundleReader.epochs(follow=True)``).

    A custom :class:`~repro.core.pipeline.AuditPipeline` may replace the
    stock phase sequence; sessions require it to keep a ``MigratePhase``
    (state must chain).
    """

    def __init__(
        self,
        app: Application,
        config: AuditConfig | None = None,
        pipeline: AuditPipeline | None = None,
        **knobs,
    ):
        if config is not None and knobs:
            raise ValueError(
                "pass either a config object or keyword knobs, not both"
            )
        self.app = app
        self.config = config or AuditConfig(**knobs)
        self.pipeline = pipeline

    def audit(
        self,
        trace: Trace,
        reports: Reports,
        initial_state: InitialState,
    ) -> AuditResult:
        """Audit one complete bundle under this auditor's config."""
        self.config.validate_for_trace(trace)
        return run_audit(self.app, trace, reports, initial_state,
                         self.config.to_options(), pipeline=self.pipeline)

    def session(
        self,
        initial_state: InitialState,
        pipelined: bool = False,
    ) -> AuditSession:
        """Open an incremental epoch session starting from
        ``initial_state`` (the verifier's trusted state at stream start,
        §4.1)."""
        return AuditSession(self, initial_state, pipelined=pipelined)

    def audit_epochs(
        self,
        epochs: Iterable,
        initial_state: InitialState,
        pipelined: bool = False,
    ) -> AuditResult:
        """Feed every epoch slice of ``epochs`` through a session.

        Items may be ``(trace, reports)`` pairs or objects with
        ``.trace`` / ``.reports`` attributes (``BundleReader``'s
        :class:`~repro.io.EpochSlice`, the partitioner's
        :class:`~repro.core.partition.Shard`).  The whole iterable is
        consumed — epochs after a rejection come back as cheap *skipped*
        results, so the merged outcome (verdict, stats, shard count) is
        identical to the one-shot sharded audit over the same cuts.
        With ``config.epoch_workers > 1`` the epochs audit concurrently
        (only the redo-only state prepass runs between submissions) and
        are merged back in feed order; the session itself bounds
        in-flight primed epochs to ``config.prepass_depth`` (default
        ``2 * epoch_workers``), so a long stream never holds more than
        a bounded number of speculative work units in memory.  Returns
        the merged result.
        """
        with self.session(initial_state, pipelined=pipelined) as session:
            for item in epochs:
                if isinstance(item, tuple):
                    trace, reports = item
                else:
                    trace, reports = item.trace, item.reports
                # Enqueues on pipelined/epoch_workers sessions (the
                # iterable keeps ingesting while earlier epochs audit,
                # subject to the session's prepass-depth backpressure);
                # inline on synchronous ones.
                session.submit_epoch(trace, reports)
            return session.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Auditor app={self.app.name!r} "
                f"{self.config.describe()}>")
