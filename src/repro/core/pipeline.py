"""The phased audit engine: SSCO_AUDIT2 as an explicit pipeline.

The paper's verifier (Figure 12) is a sequence of independent phases —
trace checks, ProcessOpReports, versioned-store redo, grouped
re-execution, output comparison — and this module makes that structure
explicit instead of hard-coding it in one monolithic function:

* :class:`AuditContext` carries everything the phases share: the four
  inputs (app, trace, reports, initial state), the :class:`AuditOptions`
  knobs, and the artifacts phases produce for each other (graph, OpMap,
  :class:`~repro.core.simulate.SimContext`, produced bodies) plus the
  :class:`AuditResult` under construction.
* :class:`AuditPhase` is one composable step; the stock phases
  (:class:`TraceCheckPhase` ... :class:`MigratePhase`) reproduce Figure
  12 exactly, and callers can insert, remove, or replace phases to build
  custom auditors (ablations, extra validators, incremental audits).
* :class:`AuditPipeline` runs the phases in order, times each one into
  ``AuditResult.phases`` (the Figure 9 decomposition), converts
  :class:`AuditReject` into a rejected result, and harvests
  instrumentation in a ``finally`` block so rejected audits still carry
  their stats.

Scaling entry points layered on the pipeline:

* ``AuditOptions.workers > 1`` makes :class:`ReExecPhase` fan group
  chunks out over a process pool (see :mod:`repro.core.reexec`);
* :func:`sharded_audit` splits the inputs into epoch shards along
  quiescent trace cuts (see :mod:`repro.core.partition`) and audits them
  as a chain, each shard's migrated state seeding the next — the paper's
  contiguous-epoch scheme (§4.1, §4.5) applied *within* one recorded
  bundle;
* ``AuditOptions.epoch_workers > 1`` audits the epoch shards
  *concurrently*: a redo-only **state precompute** pass
  (:func:`state_precompute_pipeline` — trace check, ProcessOpReports,
  kv.Build/db.Build, §4.5 migration; no re-execution, no output
  comparison) walks the chain once to materialize every epoch's initial
  state, then a thread pool finishes each epoch's audit (grouped
  re-execution + output comparison) independently.  Results merge in
  epoch order, so verdicts, produced bodies, and per-shard stats are
  bit-identical to the serial chain.  Soundness: epoch *k*'s prepass
  state is derived from epochs ``0..k-1``'s logs by the same verifier
  code the full audit runs, and the merged verdict only ACCEPTS once
  every earlier epoch's *full* audit certified those logs; the first
  rejection discards everything after it, exactly like the chain.

:func:`repro.core.verifier.ssco_audit` remains the compatibility
wrapper: same signature, same :class:`AuditResult` shape, implemented as
``default_pipeline().run(...)``.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from collections.abc import Sequence

from repro.common.errors import AuditReject, RejectReason
from repro.core.nondet import validate_nondet_reports
from repro.core.ooo import _compare_externals, _compare_outputs
from repro.core.partition import (
    Shard,
    make_shard_summary,
    partition_audit_inputs,
)
from repro.core.process_reports import process_op_reports
from repro.core.reexec import (
    DEFAULT_MAX_GROUP,
    available_cpus,
    default_backend,
    fork_inherits_context,
    get_reexec_backend,
    reexec_groups,
)
from repro.core.simulate import SimContext
from repro.objects.base import OpType
from repro.server.app import Application, InitialState
from repro.server.reports import Reports
from repro.trace.trace import Trace, check_balanced


@dataclass
class AuditOptions:
    """The audit's knob set (every ``ssco_audit`` keyword in one place)."""

    strict: bool = True
    dedup: bool = True
    collapse: bool = True
    strict_registers: bool = False
    max_group_size: int = DEFAULT_MAX_GROUP
    migrate: bool = False
    #: Worker processes for group re-execution; <= 1 means serial.
    workers: int = 1
    #: Shard the audit at quiescent cuts every ~N requests; 0 disables.
    epoch_size: int = 0
    #: Explicit cut positions (event indexes, e.g. the executor's epoch
    #: marks); overrides ``epoch_size`` when set.
    epoch_cuts: Sequence[int] | None = None
    #: Registered re-execution backend that runs each group chunk (see
    #: :func:`repro.core.reexec.register_reexec_backend`).  Resolved
    #: from ``REPRO_BACKEND`` at construction time, not import time.
    backend: str = field(default_factory=default_backend)
    #: Consult the static analyzer's divergence-hazard report when
    #: planning re-exec chunks: groups whose script is a known hazard
    #: are pre-demoted to singletons instead of being grouped, demoted
    #: at run time, and replayed.  Non-strict audits only (in strict
    #: mode divergence is a verdict, not a perf problem); produced
    #: bodies and verdicts are unchanged either way.
    plan_hints: bool = False
    #: Audit epoch shards concurrently in a thread pool of this size,
    #: after a redo-only state precompute unlocks the chain; <= 1 keeps
    #: the serial epoch chain.  Only consulted by :func:`sharded_audit`.
    epoch_workers: int = 1
    #: Route re-execution through the worker pool even when ``workers ==
    #: 1`` (same chunk plan, one worker process): the thread-based epoch
    #: driver sets this to move each epoch's re-exec CPU off the GIL.
    #: Never changes produced bodies, verdicts, or deterministic stats.
    offload_reexec: bool = False
    #: Run whole epochs in worker *processes* on one persistent pool
    #: shared across the run (see :mod:`repro.core.epochpool`); False
    #: keeps the thread-based epoch driver (per-epoch re-exec offload).
    #: Only consulted when ``epoch_workers > 1``.  Either way the
    #: results are bit-identical to the serial chain.
    epoch_processes: bool = True
    #: Bound on in-flight *primed* epochs — how far the speculative
    #: redo-only prepass may run ahead of the slowest unfinished epoch
    #: audit (backpressure in follow/connect sessions and the one-shot
    #: driver alike).  0 means the default ``2 * epoch_workers``.
    prepass_depth: int = 0
    #: Execute the ``workers``-shaped chunk plan serially in-process,
    #: never creating a re-exec pool.  Set inside process-level epoch
    #: workers; chunk plans (and therefore all results) are unchanged.
    inline_reexec: bool = False
    #: Fleet: listen for remote workers on ``HOST:PORT`` and fan epoch
    #: work units out to them (see :mod:`repro.fleet`); ``None`` keeps
    #: every epoch on this host.  Only consulted by the epoch drivers;
    #: results are bit-identical to the single-host run either way.
    fleet_listen: str | None = None
    #: Fleet: wait for this many registered workers before the first
    #: dispatch (0 dispatches to whoever has joined).
    fleet_min_workers: int = 0
    #: Fleet: overall per-epoch deadline on one worker; a straggler is
    #: dropped and its epoch re-dispatched.  ``None`` relies on
    #: heartbeat-miss detection alone.
    fleet_task_timeout: float | None = None
    #: Fleet: dispatch each epoch to this many workers and cross-check
    #: the verdicts (1 disables).
    fleet_redundancy: int = 1


@dataclass
class AuditResult:
    """Outcome of an SSCO audit, with instrumentation."""

    accepted: bool
    reason: RejectReason | None = None
    detail: str = ""
    #: Phase wall-clock seconds: proc_op_reports, db_redo, reexec,
    #: db_query (subset of reexec), output_compare, total.
    phases: dict[str, float] = field(default_factory=dict)
    #: groups, grouped_requests, fallback_requests, dedup hits/misses,
    #: steps, multi_steps, db_queries_issued, versioned sizes ...
    stats: dict[str, object] = field(default_factory=dict)
    produced: dict[str, str] = field(default_factory=dict)
    #: Post-audit compacted state (the next epoch's initial state), only
    #: populated on accept when ``migrate=True``.
    next_initial: InitialState | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.accepted


class AuditContext:
    """Shared state threaded through the pipeline's phases."""

    def __init__(
        self,
        app: Application,
        trace: Trace,
        reports: Reports,
        initial_state: InitialState,
        options: AuditOptions | None = None,
    ):
        self.app = app
        self.trace = trace
        self.reports = reports
        self.initial_state = initial_state
        self.options = options or AuditOptions()
        # Fail at the boundary, not five frames deep in reexec_groups:
        # AuditOptions is deliberately lenient (internal plumbing), so a
        # bad backend name entering via ssco_audit kwargs or a
        # hand-built options object is caught here, with the registered
        # names in the message.
        get_reexec_backend(self.options.backend)
        # Artifacts the phases hand to each other.
        self.graph = None
        self.opmap = None
        self.sim: SimContext | None = None
        self.produced: dict[str, str] = {}
        self.result = AuditResult(accepted=False)


class AuditPhase:
    """One composable audit step.

    Subclasses set :attr:`name` (the ``AuditResult.phases`` timer key)
    and implement :meth:`run`, which reads and writes the shared
    :class:`AuditContext` and raises :class:`AuditReject` on a failed
    check.
    """

    name = "phase"

    def run(self, actx: AuditContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class TraceCheckPhase(AuditPhase):
    """Balanced-trace and non-determinism plausibility checks (§3, §4.6)."""

    name = "trace_check"

    def run(self, actx: AuditContext) -> None:
        check_balanced(actx.trace)
        validate_nondet_reports(actx.reports)


class ProcessReportsPhase(AuditPhase):
    """ProcessOpReports (Figure 5): ordering verification + OpMap."""

    name = "proc_op_reports"

    def run(self, actx: AuditContext) -> None:
        graph, opmap = process_op_reports(actx.trace, actx.reports)
        actx.graph = graph
        actx.opmap = opmap
        actx.result.stats["graph_nodes"] = graph.node_count()
        actx.result.stats["graph_edges"] = graph.edge_count()


class BuildStoresPhase(AuditPhase):
    """kv.Build / db.Build (Figure 12 lines 5-6): the versioned redo."""

    name = "db_redo"

    def run(self, actx: AuditContext) -> None:
        actx.sim = SimContext(
            actx.app, actx.reports, actx.opmap, actx.initial_state,
            actx.options.strict_registers,
        )
        actx.sim.build_versioned_stores()


class ReExecPhase(AuditPhase):
    """ReExec2 (Figure 12 lines 29-53): grouped SIMD-on-demand
    re-execution, optionally fanned out over worker processes."""

    name = "reexec"

    def run(self, actx: AuditContext) -> None:
        options = actx.options
        actx.produced = reexec_groups(
            actx.app, actx.trace, actx.reports, actx.sim,
            strict=options.strict, dedup=options.dedup,
            collapse=options.collapse,
            max_group_size=options.max_group_size,
            workers=options.workers,
            backend=options.backend,
            offload=options.offload_reexec,
            inline=options.inline_reexec,
            plan_hints=options.plan_hints,
        )
        actx.result.phases["db_query"] = actx.sim.db_query_seconds


class OutputComparePhase(AuditPhase):
    """Figure 12 lines 55-57 plus the §5.5 external-request comparison."""

    name = "output_compare"

    def run(self, actx: AuditContext) -> None:
        _compare_outputs(actx.trace, actx.produced)
        _compare_externals(actx.trace, actx.sim)
        actx.result.produced = actx.produced


class MigratePhase(AuditPhase):
    """§4.5 migration: compact the versioned stores into the next
    epoch's trusted initial state.  No-op unless ``migrate`` is set."""

    name = "migrate"

    def run(self, actx: AuditContext) -> None:
        if not actx.options.migrate:
            return
        ctx = actx.sim
        app = actx.app
        vdb = ctx.vdb[app.db_name]
        vkv = ctx.vkv[app.kv_name]
        registers = dict(actx.initial_state.registers)
        registers.update(_final_registers(actx.reports))
        kv_state = dict(actx.initial_state.kv)
        kv_state.update(vkv.latest_state())
        actx.result.next_initial = InitialState(
            vdb.latest_engine(), kv_state, registers
        )


class AuditPipeline:
    """Runs :class:`AuditPhase` objects in order over one context."""

    def __init__(self, phases: Sequence[AuditPhase]):
        self.phases: list[AuditPhase] = list(phases)

    def run(self, actx: AuditContext) -> AuditResult:
        """Run every phase; never raises :class:`AuditReject`."""
        result = actx.result
        total_start = _time.perf_counter()
        try:
            for phase in self.phases:
                phase_start = _time.perf_counter()
                try:
                    phase.run(actx)
                finally:
                    result.phases[phase.name] = (
                        result.phases.get(phase.name, 0.0)
                        + _time.perf_counter() - phase_start
                    )
            result.accepted = True
        except AuditReject as reject:
            result.accepted = False
            result.reason = reject.reason
            result.detail = reject.detail
        finally:
            result.phases["total"] = _time.perf_counter() - total_start
            _collect_stats(actx)
        return result


def default_pipeline(options: AuditOptions | None = None) -> AuditPipeline:
    """The stock Figure 12 phase sequence."""
    return AuditPipeline([
        TraceCheckPhase(),
        ProcessReportsPhase(),
        BuildStoresPhase(),
        ReExecPhase(),
        OutputComparePhase(),
        MigratePhase(),
    ])


def state_precompute_pipeline() -> AuditPipeline:
    """The redo-only prepass: trace check → ProcessOpReports →
    BuildStores → Migrate — no re-execution, no output comparison.

    With ``migrate=True`` this computes exactly the §4.5 migrated state
    the full audit would emit: kv.Build/db.Build (Figure 12 lines 5-6)
    replay the logged writes without re-executing any request, and
    re-execution itself never mutates the versioned stores.  Walking a
    shard chain with it therefore materializes every epoch's initial
    state up front (:func:`precompute_epoch_states`), which is what
    unlocks auditing the epochs concurrently.
    """
    return AuditPipeline([
        TraceCheckPhase(),
        ProcessReportsPhase(),
        BuildStoresPhase(),
        MigratePhase(),
    ])


def run_state_precompute(
    app: Application,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    options: AuditOptions | None = None,
) -> AuditContext:
    """Run the redo-only prepass over one epoch slice.

    Returns the *primed* :class:`AuditContext`: graph, OpMap, and
    versioned stores built, ``result.next_initial`` populated when the
    options migrate.  :func:`finish_precomputed_audit` completes the
    audit of a primed context later (possibly on another thread).
    """
    actx = AuditContext(app, trace, reports, initial_state, options)
    state_precompute_pipeline().run(actx)
    return actx


def iter_epoch_prepass(
    app: Application,
    shards: Sequence[Shard],
    initial_state: InitialState,
    options: AuditOptions | None = None,
):
    """Walk the shard chain with the redo-only prepass, one shard at a
    time, yielding ``(shard, primed AuditContext)`` pairs.

    This is the reuse seam shared by :func:`precompute_epoch_states`
    and the forensic timeline (:mod:`repro.forensics.timeline`): each
    yielded context holds its shard's graph, OpMap, and built versioned
    stores, with ``result.next_initial`` chaining the §4.5 migrated
    state into the next shard.  Unlike the list-returning wrapper, a
    rejecting shard is still *yielded* (so callers can inspect the
    partial chain and the rejecting epoch's verdict) and iteration
    stops after it.  Non-final shards always migrate; the final shard
    migrates only when the caller's options ask for it.
    """
    options = options or AuditOptions()
    state = initial_state
    for shard in shards:
        is_last = shard.index == len(shards) - 1
        shard_options = replace(
            options, epoch_size=0, epoch_cuts=None, epoch_workers=1,
            migrate=options.migrate or not is_last,
        )
        actx = run_state_precompute(app, shard.trace, shard.reports,
                                    state, shard_options)
        yield shard, actx
        if not actx.result.accepted:
            return
        if not is_last:
            state = actx.result.next_initial


def precompute_epoch_states(
    app: Application,
    shards: Sequence[Shard],
    initial_state: InitialState,
    options: AuditOptions | None = None,
) -> list[AuditContext] | None:
    """Walk the shard chain once with the redo-only prepass.

    Returns one primed context per shard — shard *k*'s context holds
    the chain state migrated out of shards ``0..k-1`` — or ``None`` if
    any prepass rejects, in which case the caller falls back to the
    serial chain (whose full per-epoch audit reproduces the same
    verdict: the prepass phases are a prefix of the full pipeline).
    Non-final shards always migrate; the final shard migrates only when
    the caller's options ask for it.

    Note every returned context holds its shard's built versioned
    stores, so this materializes O(bundle) state at once; the internal
    concurrent drivers prime lazily with a bounded window instead —
    prefer them for large bundles.
    """
    contexts: list[AuditContext] = []
    for _shard, actx in iter_epoch_prepass(app, shards, initial_state,
                                           options):
        if not actx.result.accepted:
            return None
        contexts.append(actx)
    return contexts


def finish_precomputed_audit(actx: AuditContext) -> AuditResult:
    """Complete a prepassed epoch's audit: grouped re-execution and
    output comparison over the already-built stores.

    Phase timers and stats accumulate on top of the prepass's (the
    pipeline adds into existing timer keys, and ``phases["total"]`` is
    restored to cover both passes), so the result is shaped exactly
    like one full pipeline pass over the same slice.
    """
    prepass_total = actx.result.phases.get("total", 0.0)
    result = AuditPipeline([ReExecPhase(), OutputComparePhase()]).run(actx)
    result.phases["total"] += prepass_total
    return result


def run_audit(
    app: Application,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    options: AuditOptions | None = None,
    pipeline: AuditPipeline | None = None,
) -> AuditResult:
    """Audit one bundle: sharded when the options ask for it, otherwise
    a single pass of the (default or caller-supplied) pipeline."""
    options = options or AuditOptions()
    if options.epoch_size > 0 or options.epoch_cuts:
        return sharded_audit(app, trace, reports, initial_state, options,
                             pipeline=pipeline)
    actx = AuditContext(app, trace, reports, initial_state, options)
    return (pipeline or default_pipeline(options)).run(actx)


# -- instrumentation harvest ---------------------------------------------------


def _collect_stats(actx: AuditContext) -> None:
    """Fold the simulation context's counters into the result (runs in
    the pipeline's ``finally``, so rejected audits keep their stats)."""
    result = actx.result
    ctx = actx.sim
    if ctx is None:
        return
    result.stats.update(
        {
            "db_queries_issued": ctx.db_queries_issued,
            "dedup_hits": ctx.dedup_hits,
            "dedup_misses": ctx.dedup_misses,
        }
    )
    vdb = ctx.vdb.get(actx.app.db_name)
    if vdb is not None:
        result.stats["versioned_db_bytes"] = vdb.size_bytes()
        result.stats["versioned_db_versions"] = vdb.version_count()
        result.stats["redo_statements"] = vdb.redo_statements
    stats = getattr(ctx, "reexec_stats", None)
    if stats is not None:
        result.stats.update(
            {
                "groups": stats.groups,
                "grouped_requests": stats.grouped_requests,
                "fallback_requests": stats.fallback_requests,
                "divergences": stats.divergences,
                "steps": stats.steps,
                "multi_steps": stats.multi_steps,
                "group_alphas": stats.group_alphas,
            }
        )


def _final_registers(reports: Reports) -> dict[str, object]:
    """Last written value of every register appearing in the logs."""
    final: dict[str, object] = {}
    for obj_name, log in reports.op_logs.items():
        if not obj_name.startswith("reg:"):
            continue
        for record in log:
            if record.optype is OpType.REGISTER_WRITE:
                final[obj_name] = record.opcontents[0]
    return final


# -- epoch-sharded audit -------------------------------------------------------

#: Numeric stats that sum across shards; list-valued ones concatenate.
_SUMMED_STATS = (
    "graph_nodes", "graph_edges", "db_queries_issued", "dedup_hits",
    "dedup_misses", "versioned_db_bytes", "versioned_db_versions",
    "redo_statements", "groups", "grouped_requests", "fallback_requests",
    "divergences", "steps", "multi_steps",
)


def resolve_prepass_depth(options: AuditOptions) -> int:
    """The effective bound on in-flight primed epochs: the explicit
    ``prepass_depth`` knob, or ``2 * epoch_workers`` when unset — a
    window deep enough to keep every worker busy while the next epochs
    prime, shallow enough that a stream cannot hold more than a bounded
    number of speculative work units (follow sessions: the prepass must
    not run unboundedly ahead of the auditor)."""
    if options.prepass_depth > 0:
        return options.prepass_depth
    return 2 * max(1, options.epoch_workers)


def sharded_audit(
    app: Application,
    trace: Trace,
    reports: Reports,
    initial_state: InitialState,
    options: AuditOptions | None = None,
    pipeline: AuditPipeline | None = None,
) -> AuditResult:
    """Audit the bundle as a chain of epoch shards (§4.1, §4.5).

    The trace is cut at quiescent points (every ``epoch_size`` requests,
    or at the explicit ``epoch_cuts``); each shard is audited by its own
    pipeline pass with ``migrate=True``, and the migrated state seeds
    the next shard — so accepting shard *k* certifies exactly the state
    shard *k+1* starts from.  The merged result carries the union of
    produced bodies, summed phase timers and stats, and per-shard
    summaries under ``stats["shards"]``.

    When no usable cut exists this degrades to the ordinary single-pass
    audit.  Partitioning itself never rejects; only the phase checks do.

    With ``options.epoch_workers > 1`` (and the stock pipeline) the
    chain is unrolled: a redo-only prepass precomputes every shard's
    initial state, then the shards' audits finish concurrently in a
    thread pool (each shard's re-execution may itself use worker
    processes).  Results merge in epoch order, stopping at the first
    rejection, so the outcome is bit-identical to the serial chain.

    A caller-supplied ``pipeline`` is run for every shard; it must
    include a :class:`MigratePhase` (the stock pipelines do), because
    shard chaining consumes each non-final shard's migrated state.
    Custom pipelines always use the serial chain — the concurrent
    driver would have to guess which of their phases the prepass may
    stand in for.
    """
    options = options or AuditOptions()
    merged = AuditResult(accepted=False)
    total_start = _time.perf_counter()
    try:
        # Global pre-checks: balance is per-definition global, and the
        # §4.6 plausibility checks include cross-request invariants
        # (uniqid uniqueness) a per-shard pass would miss.
        check_balanced(trace)
        validate_nondet_reports(reports)
        shards = partition_audit_inputs(
            trace, reports, options.epoch_size, options.epoch_cuts
        )
    except AuditReject as reject:
        merged.reason = reject.reason
        merged.detail = reject.detail
        merged.phases["total"] = _time.perf_counter() - total_start
        return merged

    merged.stats["shard_count"] = len(shards)
    shard_summaries: list[dict[str, object]] = []
    if ((options.epoch_workers > 1 or options.fleet_listen)
            and len(shards) > 1 and pipeline is None):
        _sharded_audit_concurrent(app, shards, initial_state, options,
                                  merged, shard_summaries)
    else:
        ok, state = _audit_shard_chain(app, shards, len(shards),
                                       initial_state, options, pipeline,
                                       merged, shard_summaries)
        if ok:
            merged.accepted = True
            merged.next_initial = state if options.migrate else None
    merged.stats["shards"] = shard_summaries
    merged.phases["total"] = _time.perf_counter() - total_start
    return merged


def _audit_shard_chain(
    app: Application,
    shards: Sequence[Shard],
    total_shards: int,
    state: InitialState,
    options: AuditOptions,
    pipeline: AuditPipeline | None,
    merged: AuditResult,
    shard_summaries: list[dict[str, object]],
):
    """The serial chain over (a tail of) the shard list.

    Audits each shard fully against ``state``, chaining migrated state,
    merging results and appending summaries.  Returns ``(True,
    final_state)`` when every shard accepted, ``(False, None)`` after
    recording the first rejection.  Non-final shards (relative to
    ``total_shards``) must migrate: their compacted state is the next
    shard's trusted initial state; the final shard migrates only when
    the caller asked for it.
    """
    for shard in shards:
        is_last = shard.index == total_shards - 1
        shard_options = replace(
            options, epoch_size=0, epoch_cuts=None, epoch_workers=1,
            migrate=options.migrate or not is_last,
        )
        actx = AuditContext(app, shard.trace, shard.reports, state,
                            shard_options)
        result = (pipeline or default_pipeline(shard_options)).run(actx)
        _merge_shard_result(merged, result)
        shard_summaries.append(make_shard_summary(
            shard.index, shard.request_count, len(shard.trace), result
        ))
        if not result.accepted:
            merged.accepted = False
            merged.reason = result.reason
            merged.detail = result.detail
            merged.produced = {}
            return False, None
        if not is_last and result.next_initial is None:
            raise ValueError(
                "sharded_audit needs a MigratePhase in the pipeline to "
                "chain shard state"
            )
        state = result.next_initial
    return True, state


def _sharded_audit_concurrent(
    app: Application,
    shards: Sequence[Shard],
    initial_state: InitialState,
    options: AuditOptions,
    merged: AuditResult,
    shard_summaries: list[dict[str, object]],
) -> None:
    """Audit the shards concurrently against precomputed initial states.

    The redo-only prepass walks the chain in order; each primed shard
    becomes a whole-epoch work unit on **one persistent process pool**
    shared across the run (:class:`~repro.core.epochpool.EpochPool` —
    the driver threads only submit payloads and merge results), and
    completed audits are merged back in epoch order.  With
    ``epoch_processes=False`` the thread-based driver is kept: the
    primed context finishes on a thread, its re-exec offloaded to a
    per-epoch worker process where fork makes that free.  In-flight
    primed shards are windowed to ``prepass_depth`` (default ``2 *
    epoch_workers``) so peak memory stays bounded by the window, not
    the bundle (the serial chain holds one shard's versioned stores at
    a time; this holds at most a window's worth).

    Soundness: shard *k*'s initial state comes from the prepass over
    shards ``0..k-1``'s logs — the same deterministic kv.Build/db.Build
    + §4.5 migration the chained audit performs — and the merge only
    ever reaches shard *k*'s outcome after every earlier shard's *full*
    audit accepted, i.e. after the logs the prepass replayed were
    themselves certified.  The first rejection stops priming and
    discards every later shard's outcome, exactly like the serial
    chain.  If the prepass itself rejects a shard, the remaining tail
    is audited by the serial chain (the prepass phases are a prefix of
    the full pipeline, so the verdict is identical).
    """
    prepass_options = options
    epoch_pool = None
    driver_width = options.epoch_workers
    if options.fleet_listen:
        # Fleet mode: the "pool" is a coordinator fanning work units
        # out to remote workers over repro.net; it implements the same
        # run_epoch/close/serial_fallbacks contract as EpochPool, so
        # the merge/backpressure/REJECT-drain discipline below is
        # shared verbatim.  The driver is widened so every remote
        # worker can hold an epoch even when epoch_workers was left 1.
        from repro.core.epochpool import epoch_worker_options
        from repro.fleet.coordinator import FleetCoordinator

        driver_width = max(options.epoch_workers,
                           options.fleet_min_workers, 2)
        epoch_pool = FleetCoordinator(
            options.fleet_listen,
            min_workers=options.fleet_min_workers,
            task_timeout=options.fleet_task_timeout,
            redundancy=options.fleet_redundancy,
        )
    elif options.epoch_processes:
        from repro.core.epochpool import EpochPool, epoch_worker_options

        epoch_pool = EpochPool(options.epoch_workers)
    elif (options.workers == 1 and available_cpus() > 1
            and fork_inherits_context()):
        # Thread driver: each epoch's re-exec runs serially inside its
        # thread; move it into a worker process so epochs overlap on
        # real cores.  The chunk plan is unchanged, so results stay
        # bit-identical.  Only worthwhile on fork platforms, where the
        # worker inherits the built stores instead of re-running redo.
        prepass_options = replace(options, offload_reexec=True)
    pool = ThreadPoolExecutor(
        max_workers=min(driver_width, len(shards)),
        thread_name_prefix="epoch-audit",
    )
    window = resolve_prepass_depth(
        options if driver_width == options.epoch_workers
        else replace(options, epoch_workers=driver_width))
    inflight: list = []  # (shard, future) in epoch order
    precompute_seconds = 0.0
    state = initial_state  # the prepass chain
    final_state = None
    failed = False

    def merge_oldest() -> None:
        nonlocal failed
        shard, future = inflight.pop(0)
        result = future.result()
        _merge_shard_result(merged, result)
        shard_summaries.append(make_shard_summary(
            shard.index, shard.request_count, len(shard.trace), result
        ))
        if not result.accepted:
            merged.accepted = False
            merged.reason = result.reason
            merged.detail = result.detail
            merged.produced = {}
            failed = True

    try:
        for position, shard in enumerate(shards):
            is_last = shard.index == len(shards) - 1
            shard_options = replace(
                prepass_options, epoch_size=0, epoch_cuts=None,
                epoch_workers=1, migrate=options.migrate or not is_last,
            )
            epoch_state = state  # the state this epoch audits against
            prepass_start = _time.perf_counter()
            actx = run_state_precompute(app, shard.trace, shard.reports,
                                        state, shard_options)
            precompute_seconds += _time.perf_counter() - prepass_start
            if not actx.result.accepted:
                # Settle what's in flight, then let the serial chain
                # finish the tail from this shard (it reproduces the
                # prepass's verdict on it).
                while inflight and not failed:
                    merge_oldest()
                if not failed:
                    ok, tail_state = _audit_shard_chain(
                        app, shards[position:], len(shards), state,
                        options, None, merged, shard_summaries,
                    )
                    if ok:  # pragma: no cover - a prepass reject means
                        # the tail's first full audit rejects too; kept
                        # for robustness.
                        merged.accepted = True
                        merged.next_initial = (
                            tail_state if options.migrate else None
                        )
                return
            if is_last:
                final_state = (
                    actx.result.next_initial if options.migrate else None
                )
            else:
                state = actx.result.next_initial
            if epoch_pool is not None:
                # The primed context's stores are only needed for the
                # chain state extracted above; the worker rebuilds its
                # own from the (much smaller) pickled slice payload.
                worker_options = epoch_worker_options(options)
                future = pool.submit(
                    epoch_pool.run_epoch, app, shard.trace,
                    shard.reports, epoch_state, worker_options)
            else:
                future = pool.submit(finish_precomputed_audit, actx)
            inflight.append((shard, future))
            if len(inflight) >= window:
                merge_oldest()  # backpressure: bound primed contexts
                if failed:
                    return
        while inflight and not failed:
            merge_oldest()
        if not failed:
            merged.accepted = True
            merged.next_initial = final_state
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
        if epoch_pool is not None:
            epoch_pool.close()
        merged.phases["state_precompute"] = precompute_seconds


def _merge_shard_result(merged: AuditResult, result: AuditResult) -> None:
    for key, seconds in result.phases.items():
        if key != "total":
            merged.phases[key] = merged.phases.get(key, 0.0) + seconds
    for key in _SUMMED_STATS:
        if key in result.stats:
            merged.stats[key] = (
                merged.stats.get(key, 0) + result.stats[key]
            )
    if "group_alphas" in result.stats:
        merged.stats.setdefault("group_alphas", []).extend(
            result.stats["group_alphas"]
        )
    merged.produced.update(result.produced)
