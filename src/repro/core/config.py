"""The unified, validated audit configuration.

Before this module, the audit's knobs were threaded three separate ways:
``ssco_audit``'s twelve keyword arguments, the internal
:class:`~repro.core.pipeline.AuditOptions` dataclass, and the CLI's flag
set — with no validation anywhere (a negative worker count silently
meant "serial", an out-of-range epoch cut was silently dropped deep in
the partitioner).  :class:`AuditConfig` is the one place all of them
meet:

* every knob, documented, with the same defaults as ``ssco_audit``;
* **hard validation** at construction: nonsensical values (negative
  ``workers``/``epoch_size``, unsorted ``epoch_cuts``, an unregistered
  ``backend``) raise :class:`ValueError` with a message naming the field
  — at the API boundary, not five frames deep in the pipeline;
* **serialization**: :meth:`to_json` / :meth:`from_json` (plain dicts)
  and :meth:`save` / :meth:`load` (files), so a deployment's audit
  configuration is a reviewable artifact (the CLI's ``--config
  audit.json``);
* **CLI binding**: :meth:`from_args` builds a config from an argparse
  namespace, layering explicit flags over an optional ``--config`` file.

:class:`AuditConfig` is the public face; the pipeline keeps consuming
the lenient :class:`~repro.core.pipeline.AuditOptions` internally
(:meth:`to_options` converts).  ``ssco_audit`` remains the
signature-compatible kwargs wrapper for one-shot use;
:class:`~repro.core.auditor.Auditor` takes an :class:`AuditConfig`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro.core.pipeline import AuditOptions
from repro.core.reexec import (
    DEFAULT_MAX_GROUP,
    default_backend,
    get_reexec_backend,
)


@dataclass(frozen=True)
class AuditConfig:
    """Every audit knob, validated at construction.

    Invalid values raise :class:`ValueError` immediately; an
    :class:`AuditConfig` that exists is safe to run.
    """

    #: Reject on in-group control-flow divergence (Figure 12 line 39)
    #: instead of demoting the group to per-request re-execution.
    strict: bool = True
    #: Read-query deduplication (§4.5).
    dedup: bool = True
    #: Multivalue collapse (§4.3) — ablation hook.
    collapse: bool = True
    #: Reject register reads with no logged write and no initial value.
    strict_registers: bool = False
    #: Chunk re-execution groups beyond this size (§4.7).
    max_group_size: int = DEFAULT_MAX_GROUP
    #: On accept, compact the versioned stores into the next epoch's
    #: trusted initial state (§4.5 migration).
    migrate: bool = False
    #: Worker processes for group re-execution; 1 means serial.
    workers: int = 1
    #: Audit epoch shards concurrently in a pool of this size (a
    #: redo-only state precompute materializes every epoch's initial
    #: state first); 1 keeps the serial epoch chain.  Results are
    #: bit-identical to the serial chain either way.
    epoch_workers: int = 1
    #: Run whole epochs in worker *processes* on one persistent pool
    #: shared across the run (the default); False keeps the older
    #: thread-based epoch driver.  Only consulted when
    #: ``epoch_workers > 1``; results are bit-identical either way.
    epoch_processes: bool = True
    #: Bound on in-flight *primed* epochs: how far the speculative
    #: redo-only prepass may run ahead of the slowest unfinished epoch
    #: audit (backpressure for follow/connect sessions).  0 means the
    #: default ``2 * epoch_workers``.
    prepass_depth: int = 0
    #: Shard the audit at quiescent cuts every ~N requests; 0 disables.
    epoch_size: int = 0
    #: Explicit cut positions (event indexes, e.g. the executor's epoch
    #: marks); overrides ``epoch_size`` when set.  Must be positive and
    #: strictly increasing.
    epoch_cuts: tuple[int, ...] | None = None
    #: Registered re-execution backend (``"accinterp"``, ``"interp"``,
    #: or anything added via ``register_reexec_backend``).  The default
    #: reads ``REPRO_BACKEND`` when the config is *constructed*, not
    #: when the module was imported.
    backend: str = dataclasses.field(default_factory=default_backend)
    #: Consult the static analyzer's divergence-hazard report
    #: (:func:`repro.lang.analysis.divergence_hazards`) during chunk
    #: planning: multi-request groups whose script is a known hazard are
    #: pre-demoted to singleton chunks instead of diverging at run time
    #: and being replayed one by one.  Only consulted by non-strict
    #: audits (strict treats divergence as a verdict); never changes
    #: produced bodies or verdicts.
    plan_hints: bool = False
    #: Audit a live stream from a remote publisher at ``HOST:PORT``
    #: (``repro audit --connect``) instead of a bundle file.
    connect: str | None = None
    #: Publish the recorded stream on ``HOST:PORT`` (``repro serve
    #: --listen``); port 0 binds an ephemeral port.
    listen: str | None = None
    #: Transport: bound on connecting + handshaking with the publisher
    #: (connection-refused is retried until it expires — the auditor
    #: may start before the recorder).  ``None`` waits forever.
    net_connect_timeout: float | None = 5.0
    #: Transport: on the audit side, give up after this long without a
    #: frame (the same role as the file reader's follow
    #: ``idle_timeout``); on the serve side, drop a subscriber that
    #: lags this long (it reconnects and resumes from the spool).
    #: ``None`` waits / blocks indefinitely.
    net_idle_timeout: float | None = 30.0
    #: Transport: resume attempts after a mid-stream disconnect before
    #: the audit fails (0 disables resume).
    net_retries: int = 3
    #: Transport (serve side): records per ``RECORD_BATCH`` wire frame;
    #: 1 reproduces the unbatched (one RECORD per frame) wire exactly.
    batch_records: int = 64
    #: Transport (serve side): flush the pending batch once its JSON
    #: payload reaches this many bytes, whatever the record count.
    batch_bytes: int = 256 * 1024
    #: Fleet: listen for ``repro worker`` daemons on ``HOST:PORT`` and
    #: fan epoch work units out to them (``repro audit
    #: --fleet-listen``); port 0 binds an ephemeral port.  ``None``
    #: keeps every epoch on this host.  Composes with ``connect``: one
    #: auditor can drive N worker hosts against one recorder.
    fleet_listen: str | None = None
    #: Fleet: wait for this many registered workers before dispatching
    #: the first epoch (0 dispatches to whoever has joined; with no
    #: workers at all, epochs run locally).
    fleet_min_workers: int = 0
    #: Fleet: overall per-epoch deadline on a worker; a straggler past
    #: it is dropped and its epoch re-dispatched.  ``None`` relies on
    #: heartbeat-miss detection alone.
    fleet_task_timeout: float | None = None
    #: Fleet: dispatch each epoch to this many workers and cross-check
    #: their verdicts (1 disables; a disagreement re-runs the epoch
    #: locally — the local chain arbitrates).
    fleet_redundancy: int = 1

    def __post_init__(self):
        if self.epoch_cuts is not None and not isinstance(
            self.epoch_cuts, tuple
        ):
            object.__setattr__(self, "epoch_cuts",
                               tuple(self.epoch_cuts))
        self.validate()

    # -- validation -------------------------------------------------------

    def validate(self) -> AuditConfig:
        """Raise :class:`ValueError` on any nonsensical knob value."""
        for flag in ("strict", "dedup", "collapse", "strict_registers",
                     "migrate", "epoch_processes", "plan_hints"):
            if not isinstance(getattr(self, flag), bool):
                raise ValueError(
                    f"{flag} must be a bool, got "
                    f"{getattr(self, flag)!r}"
                )
        if not _is_int(self.workers) or self.workers < 1:
            raise ValueError(
                f"workers must be an integer >= 1, got {self.workers!r}"
            )
        if not _is_int(self.epoch_workers) or self.epoch_workers < 1:
            raise ValueError(
                f"epoch_workers must be an integer >= 1, got "
                f"{self.epoch_workers!r}"
            )
        if not _is_int(self.prepass_depth) or self.prepass_depth < 0:
            raise ValueError(
                f"prepass_depth must be an integer >= 0 (0 means "
                f"2 * epoch_workers), got {self.prepass_depth!r}"
            )
        if not _is_int(self.epoch_size) or self.epoch_size < 0:
            raise ValueError(
                f"epoch_size must be an integer >= 0 (0 disables "
                f"sharding), got {self.epoch_size!r}"
            )
        if not _is_int(self.max_group_size) or self.max_group_size < 1:
            raise ValueError(
                f"max_group_size must be an integer >= 1, got "
                f"{self.max_group_size!r}"
            )
        if self.epoch_cuts is not None:
            previous = 0
            for cut in self.epoch_cuts:
                if not _is_int(cut) or cut <= 0:
                    raise ValueError(
                        f"epoch_cuts entries must be positive event "
                        f"indexes, got {cut!r}"
                    )
                if cut <= previous:
                    raise ValueError(
                        f"epoch_cuts must be strictly increasing, got "
                        f"{list(self.epoch_cuts)}"
                    )
                previous = cut
        get_reexec_backend(self.backend)  # unknown name -> ValueError
        # Imported lazily: the core layer has no hard dependency on the
        # transport package unless a net knob is actually used.
        for field, endpoint in (("connect", self.connect),
                                ("listen", self.listen),
                                ("fleet_listen", self.fleet_listen)):
            if endpoint is None:
                continue
            from repro.net.protocol import parse_endpoint

            try:
                _, port = parse_endpoint(endpoint)
            except ValueError as exc:
                raise ValueError(f"{field}: {exc}") from None
            if field == "connect" and port < 1:
                raise ValueError(
                    f"connect needs a real port (1-65535), got "
                    f"{endpoint!r}"
                )
        for field in ("net_connect_timeout", "net_idle_timeout",
                      "fleet_task_timeout"):
            value = getattr(self, field)
            if value is None:
                continue
            if (isinstance(value, bool)
                    or not isinstance(value, (int, float))
                    or value <= 0):
                raise ValueError(
                    f"{field} must be a positive number of seconds "
                    f"(or None to wait forever), got {value!r}"
                )
        if not _is_int(self.net_retries) or self.net_retries < 0:
            raise ValueError(
                f"net_retries must be an integer >= 0, got "
                f"{self.net_retries!r}"
            )
        for field in ("batch_records", "batch_bytes"):
            value = getattr(self, field)
            if not _is_int(value) or value < 1:
                raise ValueError(
                    f"{field} must be an integer >= 1, got {value!r}"
                )
        if not _is_int(self.fleet_min_workers) or self.fleet_min_workers < 0:
            raise ValueError(
                f"fleet_min_workers must be an integer >= 0, got "
                f"{self.fleet_min_workers!r}"
            )
        if not _is_int(self.fleet_redundancy) or self.fleet_redundancy < 1:
            raise ValueError(
                f"fleet_redundancy must be an integer >= 1 (1 disables "
                f"cross-checking), got {self.fleet_redundancy!r}"
            )
        return self

    def validate_for_trace(self, trace) -> AuditConfig:
        """Also check trace-dependent bounds: every explicit cut must
        fall inside the trace (cut ``i`` splits after event ``i-1``)."""
        if self.epoch_cuts:
            limit = len(trace)
            for cut in self.epoch_cuts:
                if cut >= limit:
                    raise ValueError(
                        f"epoch cut {cut} is out of range for a trace "
                        f"of {limit} events"
                    )
        return self

    # -- conversions ------------------------------------------------------

    def to_options(self) -> AuditOptions:
        """The pipeline-internal knob set this config denotes."""
        return AuditOptions(
            strict=self.strict,
            dedup=self.dedup,
            collapse=self.collapse,
            strict_registers=self.strict_registers,
            max_group_size=self.max_group_size,
            migrate=self.migrate,
            workers=self.workers,
            epoch_workers=self.epoch_workers,
            epoch_processes=self.epoch_processes,
            prepass_depth=self.prepass_depth,
            epoch_size=self.epoch_size,
            epoch_cuts=self.epoch_cuts,
            backend=self.backend,
            plan_hints=self.plan_hints,
            fleet_listen=self.fleet_listen,
            fleet_min_workers=self.fleet_min_workers,
            fleet_task_timeout=self.fleet_task_timeout,
            fleet_redundancy=self.fleet_redundancy,
        )

    @classmethod
    def from_options(cls, options: AuditOptions) -> AuditConfig:
        """Validated config from a (lenient) options object."""
        cuts = options.epoch_cuts
        return cls(
            strict=options.strict,
            dedup=options.dedup,
            collapse=options.collapse,
            strict_registers=options.strict_registers,
            max_group_size=options.max_group_size,
            migrate=options.migrate,
            workers=max(1, options.workers),
            epoch_workers=max(1, options.epoch_workers),
            epoch_processes=options.epoch_processes,
            prepass_depth=max(0, options.prepass_depth),
            epoch_size=options.epoch_size,
            epoch_cuts=tuple(cuts) if cuts is not None else None,
            backend=options.backend,
            plan_hints=options.plan_hints,
            fleet_listen=options.fleet_listen,
            fleet_min_workers=max(0, options.fleet_min_workers),
            fleet_task_timeout=options.fleet_task_timeout,
            fleet_redundancy=max(1, options.fleet_redundancy),
        )

    def replace(self, **changes) -> AuditConfig:
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- serialization ----------------------------------------------------

    def to_json(self) -> dict[str, object]:
        """A plain-JSON dict (epoch_cuts as a list)."""
        data = dataclasses.asdict(self)
        if data["epoch_cuts"] is not None:
            data["epoch_cuts"] = list(data["epoch_cuts"])
        return data

    @classmethod
    def from_json(cls, data: dict[str, object]) -> AuditConfig:
        """Validated config from :meth:`to_json` output; unknown keys
        raise :class:`ValueError` (typos must not silently no-op)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"audit config must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown audit config keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        kwargs = dict(data)
        if kwargs.get("epoch_cuts") is not None:
            kwargs["epoch_cuts"] = tuple(kwargs["epoch_cuts"])
        return cls(**kwargs)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> AuditConfig:
        with open(path) as fh:
            return cls.from_json(json.load(fh))

    # -- CLI binding ------------------------------------------------------

    @classmethod
    def from_args(cls, args) -> AuditConfig:
        """Config from an argparse namespace.

        Layering: defaults, then the ``--config`` file (when given),
        then every flag the user supplied explicitly (the CLI registers
        the knobs with ``default=None`` so "not given" is detectable).
        ``args.workers`` must already be alias-resolved by the CLI
        (``--parallel`` / audit's ``--concurrency`` fold into it).
        """
        config = cls()
        if getattr(args, "config", None):
            config = cls.load(args.config)
        changes: dict[str, object] = {}
        for field in ("strict", "strict_registers", "max_group_size",
                      "workers", "epoch_workers", "prepass_depth",
                      "epoch_size", "backend", "migrate", "connect",
                      "listen", "net_connect_timeout",
                      "net_idle_timeout", "net_retries",
                      "batch_records", "batch_bytes",
                      "fleet_listen", "fleet_min_workers",
                      "fleet_task_timeout", "fleet_redundancy"):
            value = getattr(args, field, None)
            if value is not None:
                changes[field] = value
        if getattr(args, "no_dedup", None):
            changes["dedup"] = False
        if getattr(args, "plan_hints", None):
            changes["plan_hints"] = True
        if getattr(args, "epoch_threads", None):
            changes["epoch_processes"] = False
        if getattr(args, "no_collapse", None):
            changes["collapse"] = False
        cuts = getattr(args, "epoch_cuts", None)
        if cuts is not None:
            changes["epoch_cuts"] = tuple(cuts)
        return config.replace(**changes) if changes else config

    def describe(self) -> str:
        """One-line human summary (CLI banners)."""
        parts = [f"backend={self.backend}", f"workers={self.workers}"]
        if self.epoch_workers > 1:
            parts.append(f"epoch_workers={self.epoch_workers}")
            if not self.epoch_processes:
                parts.append("epoch-threads")
        if self.prepass_depth:
            parts.append(f"prepass_depth={self.prepass_depth}")
        if self.epoch_cuts:
            parts.append(f"epoch_cuts={list(self.epoch_cuts)}")
        elif self.epoch_size:
            parts.append(f"epoch_size={self.epoch_size}")
        if not self.strict:
            parts.append("no-strict")
        if not self.dedup:
            parts.append("no-dedup")
        if not self.collapse:
            parts.append("no-collapse")
        if self.strict_registers:
            parts.append("strict-registers")
        if self.plan_hints:
            parts.append("plan-hints")
        if self.max_group_size != DEFAULT_MAX_GROUP:
            parts.append(f"max_group={self.max_group_size}")
        if self.connect:
            parts.append(f"connect={self.connect}")
        if self.fleet_listen:
            parts.append(f"fleet_listen={self.fleet_listen}")
            if self.fleet_min_workers:
                parts.append(f"fleet_min_workers={self.fleet_min_workers}")
            if self.fleet_task_timeout is not None:
                parts.append(
                    f"fleet_task_timeout={self.fleet_task_timeout}")
            if self.fleet_redundancy > 1:
                parts.append(f"fleet_redundancy={self.fleet_redundancy}")
        if self.listen:
            parts.append(f"listen={self.listen}")
            if self.batch_records != 64:
                parts.append(f"batch_records={self.batch_records}")
            if self.batch_bytes != 256 * 1024:
                parts.append(f"batch_bytes={self.batch_bytes}")
        return " ".join(parts)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def parse_epoch_cuts(text: str) -> tuple[int, ...]:
    """Parse the CLI's ``--epoch-cuts "100,200,350"`` into a tuple.

    Raises :class:`ValueError` on non-integers; ordering and positivity
    are checked by :class:`AuditConfig` itself.
    """
    parts = [part.strip() for part in text.split(",") if part.strip()]
    try:
        return tuple(int(part) for part in parts)
    except ValueError:
        raise ValueError(
            f"--epoch-cuts expects comma-separated event indexes, got "
            f"{text!r}"
        ) from None
