#!/usr/bin/env python3
"""Concurrency and executor discretion (Sections 2, 3.2, 3.4).

Two requests race on the forum's view counter.  Different schedules give
different — equally valid — outputs, and the audit accepts each one,
because Soundness only requires *some* consistent schedule (the executor
has discretion over interleaving).

Then we replay the paper's Figure 4: a misbehaving executor whose
operation logs and responses are mutually consistent but incompatible
with the observed request/response timing.  Simulate-and-check alone
would accept it; consistent ordering verification rejects it.

Run:  python examples/concurrency_schedules.py
"""

from repro import Application, Executor, Request, ssco_audit
from repro.objects.base import OpRecord, OpType
from repro.server import InitialState, Reports, ScriptedScheduler
from repro.sql.engine import Engine
from repro.trace.events import Event, Response
from repro.trace.trace import Trace

# -- Part 1: schedules are executor discretion ------------------------------

app = Application.from_sources("race", {
    "bump.php": """
$n = kv_get('counter');
if (is_null($n)) { $n = 0; }
kv_set('counter', $n + 1);
echo 'I saw ', $n, ' and wrote ', $n + 1;
""",
})

requests = [Request("r1", "bump.php"), Request("r2", "bump.php")]

print("=== part 1: different schedules, all auditable ===")
for label, script in [
    ("r1 fully first", ["r1", "r1", "r1", "r2", "r2", "r2"]),
    ("interleaved (lost update)", ["r1", "r2", "r1", "r2", "r1", "r2"]),
]:
    executor = Executor(app, scheduler=ScriptedScheduler(script),
                        max_concurrency=2)
    result = executor.serve(requests)
    bodies = {rid: resp.body
              for rid, resp in result.trace.responses().items()}
    audit = ssco_audit(app, result.trace, result.reports,
                       result.initial_state)
    print(f"  {label}:")
    print(f"    r1: {bodies['r1']!r}")
    print(f"    r2: {bodies['r2']!r}")
    print(f"    audit accepted: {audit.accepted}")
    assert audit.accepted

# -- Part 2: Figure 4's example (a) ------------------------------------------

print("\n=== part 2: Figure 4(a) — ordering violation ===")
fg_app = Application.from_sources("fig4", {
    "f.php": "reg_write('A', 1); $x = reg_read('B'); echo $x;",
    "g.php": "reg_write('B', 1); $y = reg_read('A'); echo $y;",
})

# The trace shows r1 finished before r2 arrived, yet the executor claims
# (via its logs) that r2's operations happened first — the only way its
# delivered responses (1, 0) could make sense.
trace = Trace([
    Event.request(Request("r1", "f.php"), 1),
    Event.response(Response("r1", "1"), 2),
    Event.request(Request("r2", "g.php"), 3),
    Event.response(Response("r2", "0"), 4),
])
reports = Reports(
    groups={"tf": ["r1"], "tg": ["r2"]},
    op_logs={
        "reg:g:A": [
            OpRecord("r2", 2, OpType.REGISTER_READ, ()),
            OpRecord("r1", 1, OpType.REGISTER_WRITE, (1,)),
        ],
        "reg:g:B": [
            OpRecord("r2", 1, OpType.REGISTER_WRITE, (1,)),
            OpRecord("r1", 2, OpType.REGISTER_READ, ()),
        ],
    },
    op_counts={"r1": 2, "r2": 2},
)
initial = InitialState(Engine(), {}, {"reg:g:A": 0, "reg:g:B": 0})

audit = ssco_audit(fg_app, trace, reports, initial)
print(f"  responses: r1='1', r2='0' with r1 <Tr r2")
print(f"  audit accepted: {audit.accepted}")
print(f"  reason: {audit.reason.value}")
assert not audit.accepted
print("\nOK: valid schedules accepted; the Figure 4(a) executor is"
      " caught by the ordering cycle.")
