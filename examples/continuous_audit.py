#!/usr/bin/env python3
"""Continuous auditing: tail a live bundle, audit epoch by epoch.

The paper's deployment model (§4.1) is continuous — the verifier audits
epoch N while the server records epoch N+1, and only migrated state
crosses epoch boundaries.  This example plays both roles:

1. a *server* thread serves a wiki workload, draining every 25 requests
   so the trace has quiescent epoch cuts, and appends the execution to a
   segmented JSONL bundle as it goes (``BundleWriter``);
2. the *verifier* tails the growing bundle (``BundleReader`` with
   ``follow=True``) and feeds each finished epoch into a long-lived
   ``Auditor`` session, printing a per-epoch verdict while the server is
   still writing;
3. at the end, the merged session result is checked against the one-shot
   ``ssco_audit`` over the same cuts — identical verdict, identical
   produced bodies.

Run:  python examples/continuous_audit.py
"""

import os
import tempfile
import threading
import time

from repro import AuditConfig, Auditor, ssco_audit
from repro.bench.harness import run_online_phase
from repro.core.partition import partition_audit_inputs
from repro.io import BundleReader, BundleWriter
from repro.workloads import wiki_workload

# 1. Record: serve the workload, then replay it into the bundle epoch by
# epoch with a small delay — standing in for a live server mid-stream.
workload = wiki_workload(scale=0.01)
execution = run_online_phase(workload, seed=1, epoch_size=25)
shards = partition_audit_inputs(execution.trace, execution.reports,
                                cuts=execution.epoch_marks)
print(f"served {len(workload.requests)} {workload.label} requests "
      f"in {len(shards)} epochs")

bundle_path = tempfile.mktemp(suffix=".jsonl", prefix="repro_live_")
state_written = threading.Event()


def server_thread():
    with BundleWriter(bundle_path, segmented=True) as writer:
        writer.write_state(execution.initial_state)
        state_written.set()
        for shard in shards:
            time.sleep(0.05)  # the "next epoch" is still being served
            writer.write_epoch(shard.trace, shard.reports)
        writer.write_end()


server = threading.Thread(target=server_thread)
server.start()
state_written.wait()

# 2. Audit the stream as it grows: one long-lived session, one verdict
# per epoch, migrated state chained internally.
auditor = Auditor(workload.app, AuditConfig(backend="accinterp"))
with BundleReader(bundle_path) as reader:
    initial = reader.read_initial_state(follow=True)
    with auditor.session(initial) as session:
        for epoch in reader.epochs(follow=True, idle_timeout=30):
            result = session.feed_epoch(epoch.trace, epoch.reports)
            verdict = "ACCEPTED" if result.accepted else "REJECTED"
            print(f"  epoch {result.index}: {verdict} "
                  f"({result.requests} requests, "
                  f"{result.phases['total'] * 1e3:.1f} ms)")
    merged = session.close()
server.join()

# 3. The streamed session is bit-identical to the one-shot audit.
one_shot = ssco_audit(workload.app, execution.trace, execution.reports,
                      execution.initial_state,
                      epoch_cuts=execution.epoch_marks)
assert merged.accepted and one_shot.accepted
assert merged.produced == one_shot.produced
assert merged.stats["shard_count"] == one_shot.stats["shard_count"]
print(f"session total: {merged.phases['total'] * 1e3:.1f} ms over "
      f"{merged.stats['shard_count']} epochs — verdict and produced "
      f"bodies identical to the one-shot audit")
os.unlink(bundle_path)
print("OK")
