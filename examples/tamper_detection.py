#!/usr/bin/env python3
"""A gallery of misbehaving executors, all caught (Section 2: Soundness).

Serves the conference-review app honestly, then applies each tamper
operator in turn — response forgery, log surgery, op-count lies,
grouping lies, non-determinism lies — and shows the audit's verdict and
which check caught it.

Run:  python examples/tamper_detection.py
"""

from repro import ssco_audit
from repro.apps import build_minicrp
from repro.server import Executor, RandomScheduler, faulty
from repro.trace.events import Request

app = build_minicrp()

requests = [
    Request("login-a", "crp_login.php",
            post={"email": "author@x.edu", "role": "author"},
            cookies={"sess": "author@x.edu"}),
    Request("login-r", "crp_login.php",
            post={"email": "pc@conf.org", "role": "reviewer"},
            cookies={"sess": "pc@conf.org"}),
    Request("submit", "crp_submit.php",
            post={"title": "Auditing the Auditors",
                  "abstract": "We watch the watchmen."},
            cookies={"sess": "author@x.edu"}),
    Request("review", "crp_review.php", get={"p": "1"},
            post={"body": "Strong accept.", "score": "5"},
            cookies={"sess": "pc@conf.org"}),
    Request("view", "crp_paper.php", get={"p": "1"},
            cookies={"sess": "pc@conf.org"}),
]

run = Executor(app, scheduler=RandomScheduler(1)).serve(requests)

honest = ssco_audit(app, run.trace, run.reports, run.initial_state)
assert honest.accepted
print(f"honest execution: ACCEPTED "
      f"(total {honest.phases['total'] * 1e3:.1f} ms)\n")

attacks = [
    (
        "forge the reviewer's page (hide a review)",
        lambda: (faulty.tamper_response(
            run.trace, "view", "<html>0 reviews</html>"), run.reports),
    ),
    (
        "change the review score in the DB log",
        lambda: (run.trace, _rewrite_score()),
    ),
    (
        "drop the submission transaction from the log",
        lambda: (run.trace,
                 faulty.drop_log_entry(run.reports, "db:main", 0)),
    ),
    (
        "understate the review request's op count",
        lambda: (run.trace,
                 faulty.tamper_op_count(run.reports, "review", -1)),
    ),
    (
        "claim the view request ran different code",
        lambda: (run.trace,
                 faulty.move_to_group(run.reports, "view",
                                      _other_tag("view"))),
    ),
    (
        "omit the submit request from the groupings",
        lambda: (run.trace, faulty.drop_from_groups(run.reports,
                                                    "submit")),
    ),
    (
        "fake the submission receipt (uniqid report)",
        lambda: (run.trace, _fake_receipt()),
    ),
]


def _rewrite_score():
    log = run.reports.op_logs["db:main"]
    position = next(
        i for i, record in enumerate(log)
        if any("INSERT INTO reviews" in q for q in record.opcontents[0])
    )
    old = log[position]
    queries = tuple(
        q.replace(", 5, 1)", ", 1, 1)") for q in old.opcontents[0]
    )
    return faulty.rewrite_log_entry(run.reports, "db:main", position,
                                    opcontents=(queries, True))


def _other_tag(rid):
    for tag, rids in run.reports.groups.items():
        if rid not in rids:
            return tag
    raise AssertionError("need at least two groups")


def _fake_receipt():
    records = run.reports.nondet["submit"]
    index = next(i for i, r in enumerate(records) if r.func == "uniqid")
    return faulty.tamper_nondet_value(run.reports, "submit", index,
                                      "uid99999999")


for description, build in attacks:
    trace, reports = build()
    verdict = ssco_audit(app, trace, reports, run.initial_state)
    status = "ACCEPTED" if verdict.accepted else "REJECTED"
    reason = verdict.reason.value if verdict.reason else "-"
    print(f"{status:8s} <- {description}")
    print(f"          check: {reason}")
    assert not verdict.accepted, description

print("\nOK: every attack detected.")
