#!/usr/bin/env python3
"""Patch-based auditing (§7): which past requests did a bug affect?

Scenario: the wiki's renderer had an XSS bug — page titles were echoed
into search results without escaping.  After patching, the operator wants
to know *which of last week's requests* would have rendered differently —
those are the users who saw the vulnerable output.

`patch_audit` replays the recorded epoch against the patched code, feeding
reads from the same operation logs, and reports exactly the affected
requests (the Poirot use case, which OROCHI generalizes to "the effect of
a patch at any layer").

Run:  python examples/patch_audit_demo.py
"""

from repro.core.patch import patch_audit
from repro.server import Application, Executor, RandomScheduler
from repro.trace.events import Request

SCHEMA = (
    "CREATE TABLE pages (id INT PRIMARY KEY AUTOINCREMENT, title TEXT);"
    "INSERT INTO pages (title) VALUES ('Plain page'),"
    " ('<script>alert(1)</script>'), ('Another page')"
)

VULNERABLE = {
    "search.php": """
$q = param('q', '');
$rows = db_query("SELECT title FROM pages WHERE title LIKE "
                 . sql_quote('%' . $q . '%') . " ORDER BY id");
echo "<ol>";
foreach ($rows as $row) {
  echo "<li>", $row['title'], "</li>";   // BUG: unescaped title
}
echo "</ol>";
""",
}

PATCHED = {
    "search.php": VULNERABLE["search.php"].replace(
        "echo \"<li>\", $row['title'], \"</li>\";   // BUG: unescaped title",
        "echo \"<li>\", htmlspecialchars($row['title']), \"</li>\";",
    ),
}

original = Application.from_sources("wiki-vuln", VULNERABLE,
                                    db_setup=SCHEMA)
patched = Application.from_sources("wiki-fixed", PATCHED,
                                   db_setup=SCHEMA)

# Last week's recorded epoch (the vulnerable code served it).
requests = [
    Request("q1", "search.php", get={"q": "page"}),    # no payload match
    Request("q2", "search.php", get={"q": "script"}),  # hits the payload
    Request("q3", "search.php", get={"q": ""}),        # lists everything
    Request("q4", "search.php", get={"q": "zzz"}),     # empty result
]
run = Executor(original, scheduler=RandomScheduler(4)).serve(requests)

print("replaying the epoch against the patched renderer ...\n")
result = patch_audit(original, patched, run.trace, run.reports,
                     run.initial_state)
assert result.accepted_original

print(f"unchanged:    {sorted(result.unchanged)}")
print(f"changed:      {sorted(result.changed)}")
print(f"incomparable: {sorted(result.incomparable)}\n")

for rid in sorted(result.changed):
    old, new = result.changed[rid]
    print(f"--- {rid} served (vulnerable):")
    print(f"    {old}")
    print(f"+++ {rid} would serve (patched):")
    print(f"    {new}\n")

assert set(result.changed) == {"q2", "q3"}
assert sorted(result.unchanged) == ["q1", "q4"]
print("OK: exactly the requests that rendered the malicious title are"
      " flagged.")
