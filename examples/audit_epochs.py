#!/usr/bin/env python3
"""Contiguous audit epochs with state migration (Sections 4.1, 4.5).

The verifier must hold the shared objects' state at the start of each
audited period.  For contiguous epochs, the previous audit *produces* it:
after accepting epoch N, the verifier migrates the versioned store down
to its latest state, which becomes epoch N+1's trusted initial state.

The server here runs "continuously": each epoch's executor starts from
the previous epoch's final object state.  The verifier never sees that
state directly — it derives its own copy by auditing and migrating — and
the example checks the two converge byte-for-byte every epoch.

Run:  python examples/audit_epochs.py
"""

from repro import Executor, ssco_audit
from repro.apps import build_miniforum
from repro.server import RandomScheduler
from repro.server.nondet import NondetSource
from repro.trace.events import Request


def epoch_requests(epoch, count=12):
    out = [
        Request(f"e{epoch}-login", "forum_login.php",
                post={"name": f"user{epoch}"},
                cookies={"sess": f"user{epoch}"})
    ]
    for index in range(count):
        rid = f"e{epoch}-r{index}"
        if index % 5 == 4:
            out.append(Request(rid, "forum_reply.php", get={"t": "1"},
                               post={"body": f"epoch {epoch} post {index}"},
                               cookies={"sess": f"user{epoch}"}))
        else:
            out.append(Request(rid, "forum_view.php",
                               get={"t": str(1 + index % 2)}))
    return out


app = build_miniforum(topics=2)

server_state = None      # what the (continuous) server holds
verifier_state = None    # what the verifier holds between audits
last_run = None

for epoch in range(1, 4):
    executor = Executor(
        app,
        scheduler=RandomScheduler(epoch),
        max_concurrency=4,
        nondet=NondetSource(seed=epoch,
                            start_time=1_500_000_000 + epoch * 10_000),
        initial_state=server_state,
    )
    run = executor.serve(epoch_requests(epoch))
    server_state = run.final_state
    last_run = run

    # Epoch 1: the verifier trusts the deployment-time state.  Later
    # epochs: it trusts only its own migrated copy.
    trusted_initial = (
        verifier_state if verifier_state is not None
        else run.initial_state
    )
    audit = ssco_audit(app, run.trace, run.reports, trusted_initial,
                       migrate=True)
    assert audit.accepted, (epoch, audit.reason, audit.detail)
    verifier_state = audit.next_initial

    topics = verifier_state.db_engine.tables["topics"].rows
    posts = len(verifier_state.db_engine.tables["posts"].rows)
    print(f"epoch {epoch}: audit ACCEPTED "
          f"({audit.phases['total'] * 1e3:.1f} ms); verifier holds "
          f"{posts} posts, topic-1 replies={topics[0]['replies']}")

    # The verifier's migrated copy must equal the server's true state.
    for name, table in verifier_state.db_engine.tables.items():
        assert table.rows == server_state.db_engine.tables[name].rows, name
    assert verifier_state.kv == server_state.kv
    assert verifier_state.registers == server_state.registers

print("\n=== migration dump after the last epoch (§4.5) ===")
from repro.core.process_reports import process_op_reports  # noqa: E402
from repro.core.simulate import SimContext  # noqa: E402

graph, opmap = process_op_reports(last_run.trace, last_run.reports)
ctx = SimContext(app, last_run.reports, opmap, trusted_initial)
ctx.build_versioned_stores()
for statement in ctx.vdb[app.db_name].migration_statements():
    shown = statement if len(statement) < 100 else statement[:97] + "..."
    print(" ", shown)

print("\nOK: three contiguous epochs audited; the verifier's migrated"
      " state tracks the server's exactly.")
