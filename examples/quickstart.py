#!/usr/bin/env python3
"""Quickstart: deploy a program, serve requests, audit the execution.

This is the paper's whole story in fifty lines:

1. the *principal* writes a program (a weblang script);
2. the *executor* serves requests concurrently, recording reports;
3. the *collector* captures the trace of requests and responses;
4. the *verifier* audits: it accepts the honest execution, and rejects
   the same execution with a single tampered response byte.

Run:  python examples/quickstart.py
"""

from repro import (
    Application,
    AuditConfig,
    Auditor,
    Executor,
    Request,
    ssco_audit,
)
from repro.server.faulty import tamper_response

# 1. The program: a tiny greeting counter using the KV store.
app = Application.from_sources("hello", {
    "hello.php": """
$name = param('name', 'world');
$count = kv_get('greetings');
if (is_null($count)) { $count = 0; }
$count = $count + 1;
kv_set('greetings', $count);
echo 'Hello, ', $name, '! You are visitor #', $count, '.';
""",
})

# 2-3. The executor serves (and records); the collector traces.
requests = [
    Request(f"r{i}", "hello.php", get={"name": name})
    for i, name in enumerate(["Dana", "Pat", "Adrian", "Dana"])
]
result = Executor(app).serve(requests)

print("=== trace ===")
for event in result.trace:
    if event.is_response:
        print(f"  {event.rid}: {event.payload.body}")

print("\n=== reports ===")
print(f"  control-flow groups: {len(result.reports.groups)}")
print(f"  op-log entries:      {result.reports.op_count_total()}")
print(f"  op counts M:         {dict(result.reports.op_counts)}")

# 4. The audit.  ssco_audit is the one-shot call; the equivalent
# service API binds the program to a validated AuditConfig once and
# audits any number of bundles (see examples/continuous_audit.py for
# the incremental, epoch-by-epoch session it also offers).
audit = ssco_audit(app, result.trace, result.reports,
                   result.initial_state)
auditor = Auditor(app, AuditConfig(backend="accinterp"))
service_audit = auditor.audit(result.trace, result.reports,
                              result.initial_state)
assert service_audit.accepted == audit.accepted
print("\n=== audit (honest execution) ===")
print(f"  accepted: {audit.accepted}")
print(f"  phases:   "
      + ", ".join(f"{k}={v * 1e3:.2f}ms"
                  for k, v in sorted(audit.phases.items())))

# A misbehaving executor tampers with one response...
tampered = tamper_response(result.trace, "r2",
                           "Hello, Adrian! You are visitor #1.")
audit2 = ssco_audit(app, tampered, result.reports, result.initial_state)
print("\n=== audit (tampered response for r2) ===")
print(f"  accepted: {audit2.accepted}")
print(f"  reason:   {audit2.reason.value}")
print(f"  detail:   {audit2.detail}")

assert audit.accepted and not audit2.accepted
print("\nOK: honest execution accepted, tampered execution rejected.")
