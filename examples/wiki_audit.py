#!/usr/bin/env python3
"""Audit a MediaWiki-style workload and show where the acceleration
comes from (Sections 3.1, 4.5, 5.2 of the paper).

Serves a Zipf-distributed wiki workload (views, edits, searches), audits
it with the full SSCO pipeline, audits it again with the simple
per-request re-execution baseline, and prints the speedup plus the
deduplication statistics: control-flow group sizes, the univalent
instruction fraction α, and the read-query dedup hit rate.

Run:  python examples/wiki_audit.py [scale]
      (default scale 0.05 = 1,000 requests over 10 pages)
"""

import sys

from repro.bench import (
    figure9_decomposition,
    render_table,
    run_workload_pipeline,
)
from repro.workloads import wiki_workload

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05

print(f"building wiki workload at scale {scale} ...")
workload = wiki_workload(scale=scale)
print(f"  {len(workload.requests)} requests")

print("serving (legacy + recorded) and auditing ...")
run = run_workload_pipeline(workload, seed=42, concurrency=8)

audit = run.audit
assert audit.accepted, (audit.reason, audit.detail)

stats = audit.stats
alpha = 1 - stats["multi_steps"] / max(1, stats["steps"])
dedup_total = stats["dedup_hits"] + stats["dedup_misses"]

print("\n=== audit accepted ===")
print(f"  SSCO audit:            {audit.phases['total'] * 1e3:8.1f} ms")
print(f"  simple re-execution:   "
      f"{run.baseline_audit.seconds * 1e3:8.1f} ms")
print(f"  speedup:               "
      f"{run.baseline_audit.seconds / audit.phases['total']:8.2f} x")
print(f"  legacy serving time:   {run.legacy_seconds * 1e3:8.1f} ms")

print("\n=== sources of acceleration ===")
print(f"  control-flow groups:   {stats['groups']}")
print(f"  grouped requests:      {stats['grouped_requests']}")
print(f"  univalent fraction α:  {alpha:.4f}")
print(f"  SELECT dedup hits:     {stats['dedup_hits']}/{dedup_total} "
      f"({100 * stats['dedup_hits'] / max(1, dedup_total):.1f}%)")
print(f"  versioned DB versions: {stats['versioned_db_versions']}")

print("\n=== audit CPU decomposition (Figure 9) ===")
decomposition = figure9_decomposition(run)
rows = [{"phase": key, "seconds": value}
        for key, value in decomposition.items()]
print(render_table(rows, ["phase", "seconds"]))

print("\n=== largest control-flow groups (Figure 11) ===")
triples = sorted(stats["group_alphas"], key=lambda t: -t[0])[:8]
print(render_table(
    [{"requests_n": n, "alpha": a, "instructions_l": steps}
     for n, a, steps in triples],
    ["requests_n", "alpha", "instructions_l"],
))
