#!/usr/bin/env python3
"""Remote live auditing: recorder and auditor as two OS processes.

The paper's deployment model has the verifier audit a *live* service —
the recorder ships the trace and op reports to an auditor that runs
elsewhere, across a network boundary, not a shared disk.  This example
plays it out with real processes and a real TCP socket:

1. a *recorder* process (``python -m repro serve``) serves a wiki
   workload, then publishes the audit stream epoch by epoch on an
   ephemeral localhost port via ``BundlePublisher`` (``--epoch-delay``
   stands in for a live server mid-stream);
2. this process is the *auditor*: a ``RemoteBundleReader`` attaches to
   the publisher and exposes the exact ``epochs()`` iterator contract
   of the file-based ``BundleReader``, so the same long-lived
   ``Auditor`` session audits each epoch the moment it arrives —
   printing a per-epoch verdict while the recorder is still publishing;
3. the merged session verdict must be ACCEPTED, with one shard per
   published epoch.

Run:  python examples/remote_audit.py
"""

import os
import re
import subprocess
import sys

from repro import AuditConfig, Auditor
from repro.net import RemoteBundleReader
from repro.workloads import wiki_workload

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# 1. The recorder: a separate OS process publishing on an ephemeral
# port (it prints the bound endpoint; we scrape it).
env = dict(os.environ)
env["PYTHONPATH"] = (os.path.join(ROOT, "src")
                     + os.pathsep + env.get("PYTHONPATH", ""))
recorder = subprocess.Popen(
    [sys.executable, "-m", "repro", "serve",
     "--workload", "wiki", "--scale", "0.01", "--epoch-size", "25",
     "--listen", "127.0.0.1:0", "--epoch-delay", "0.05",
     "--linger", "60"],
    stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    env=env, cwd=ROOT,
)
endpoint = None
for line in recorder.stdout:
    print(f"[recorder] {line.rstrip()}")
    match = re.search(r"on (\d+\.\d+\.\d+\.\d+:\d+)", line)
    if match:
        endpoint = match.group(1)
        break
assert endpoint, "recorder never printed its endpoint"

# 2. The auditor: same trusted program, state + epochs from the socket.
workload = wiki_workload(scale=0.01)
auditor = Auditor(workload.app, AuditConfig())
with RemoteBundleReader(endpoint, idle_timeout=30) as reader:
    with auditor.session(reader.initial_state) as session:
        for epoch in reader.epochs():
            result = session.feed_epoch(epoch.trace, epoch.reports)
            verdict = "ACCEPTED" if result.accepted else "REJECTED"
            print(f"[auditor]  epoch {result.index}: {verdict} "
                  f"({result.requests} requests, "
                  f"{result.phases['total'] * 1e3:.1f} ms)")
    merged = session.close()

for line in recorder.stdout:
    print(f"[recorder] {line.rstrip()}")
assert recorder.wait(timeout=60) == 0

# 3. The merged live-stream verdict.
assert merged.accepted, (merged.reason, merged.detail)
print(f"session total: {merged.phases['total'] * 1e3:.1f} ms over "
      f"{merged.stats['shard_count']} epochs, streamed from "
      f"{endpoint} — no shared filesystem involved")
print("OK")
